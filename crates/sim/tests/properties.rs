//! Property-based tests for the simulator: chip physics invariants,
//! fault-placement guarantees, and execution-engine conservation laws.

use meda_bioassay::{benchmarks, RjHelper};
use meda_grid::{Cell, ChipDims, Grid, Rect};
use meda_sim::{BaselineRouter, BioassayRunner, Biochip, DegradationConfig, FaultMode, RunConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Degradation is monotone under any actuation sequence: more wear can
    /// never raise any cell's degradation level.
    #[test]
    fn chip_degradation_is_monotone_under_wear(
        seed in 0u64..500,
        rects in proptest::collection::vec((1i32..8, 1i32..8, 0i32..4, 0i32..4), 1..8)
    ) {
        let dims = ChipDims::new(12, 12);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
        let mut last: Vec<f64> = dims.cells().map(|c| chip.degradation_at(c)).collect();
        for (xa, ya, w, h) in rects {
            let mut pattern = Grid::new(dims, false);
            pattern.fill_rect(Rect::new(xa, ya, xa + w, ya + h), true);
            for _ in 0..50 {
                chip.apply_actuation(&pattern);
            }
            let now: Vec<f64> = dims.cells().map(|c| chip.degradation_at(c)).collect();
            for (before, after) in last.iter().zip(&now) {
                prop_assert!(after <= &(before + 1e-12));
            }
            last = now;
        }
    }

    /// The health read-out is always the exact quantization of the hidden
    /// degradation, for any wear state.
    #[test]
    fn health_readout_is_exact_quantization(seed in 0u64..500, wear in 0u32..2000) {
        let dims = ChipDims::new(10, 6);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
        let all = Grid::new(dims, true);
        for _ in 0..wear {
            chip.apply_actuation(&all);
        }
        let health = chip.health_field();
        for cell in dims.cells() {
            let d = chip.degradation_at(cell);
            prop_assert_eq!(
                health.health()[cell],
                meda_degradation::quantize_health(d, 2),
                "at {}", cell
            );
        }
    }

    /// Fault placement honours the requested fraction (uniform exactly;
    /// clustered within one cluster of slack) and chip bounds.
    #[test]
    fn fault_placement_counts_and_bounds(seed in 0u64..500, pct in 1u32..20) {
        let dims = ChipDims::new(30, 20);
        let fraction = f64::from(pct) / 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let uniform = FaultMode::Uniform.place(dims, fraction, &mut rng);
        let target = (dims.cell_count() as f64 * fraction).round() as usize;
        prop_assert_eq!(uniform.len(), target);
        prop_assert!(uniform.iter().all(|&c| dims.contains(c)));

        let clustered = FaultMode::Clustered.place(dims, fraction, &mut rng);
        prop_assert!(clustered.len() >= target);
        prop_assert!(clustered.len() < target + 4);
        prop_assert!(clustered.iter().all(|&c| dims.contains(c)));
    }

    /// Execution is a pure function of (plan, chip seed, rng seed): same
    /// seeds, same cycles and same final wear.
    #[test]
    fn runs_are_seed_deterministic(seed in 0u64..200) {
        let dims = ChipDims::PAPER;
        let plan = RjHelper::new(dims).plan(&benchmarks::master_mix()).unwrap();
        let runner = BioassayRunner::new(RunConfig::default());
        let go = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
            let mut router = BaselineRouter::new();
            let outcome = runner.run(&plan, &mut chip, &mut router, &mut rng);
            (outcome.cycles, outcome.is_success(), chip.total_actuations())
        };
        prop_assert_eq!(go(seed), go(seed));
    }

    /// Cycle/wear conservation: every cycle actuates at least one MC, so
    /// total actuations ≥ cycles; and the recorded trace length equals the
    /// cycle count exactly.
    #[test]
    fn cycles_and_wear_are_conserved(seed in 0u64..100) {
        let dims = ChipDims::PAPER;
        let plan = RjHelper::new(dims).plan(&benchmarks::covid_rat()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
        let mut router = BaselineRouter::new();
        let outcome = BioassayRunner::new(RunConfig {
            k_max: 5_000,
            record_actuation: true,
        })
        .run(&plan, &mut chip, &mut router, &mut rng);
        prop_assert!(outcome.is_success());
        let trace = outcome.trace.as_ref().unwrap();
        prop_assert_eq!(trace.len() as u64, outcome.cycles);
        let from_trace: u64 = trace.iter().map(|p| p.count_set() as u64).sum();
        prop_assert_eq!(from_trace, chip.total_actuations());
        prop_assert!(chip.total_actuations() >= outcome.cycles);
    }
}

/// Non-proptest sanity: a dead cell stays dead (degradation is absorbing
/// at zero for faulted MCs).
#[test]
fn sudden_faults_are_absorbing() {
    let dims = ChipDims::new(8, 8);
    let config = DegradationConfig {
        fault_mode: FaultMode::Uniform,
        fault_fraction: 0.5,
        fault_threshold: (1, 3),
        ..DegradationConfig::paper()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let mut chip = Biochip::generate(dims, &config, &mut rng);
    let all = Grid::new(dims, true);
    for _ in 0..3 {
        chip.apply_actuation(&all);
    }
    let dead: Vec<Cell> = dims
        .cells()
        .filter(|&c| chip.degradation_at(c) == 0.0)
        .collect();
    assert!(!dead.is_empty());
    for _ in 0..100 {
        chip.apply_actuation(&all);
    }
    for c in dead {
        assert_eq!(chip.degradation_at(c), 0.0, "{c} resurrected");
    }
}
