use std::fmt;

use meda_grid::{ChipDims, Rect};

use crate::{fit_droplet_size, zone, MoId, MoType, RoutingJob, SequencingGraph, ValidateError};

/// One planned microfluidic operation: its routing jobs and the droplet
/// rectangles it leaves on the chip for successor operations.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedMo {
    /// The operation id in the sequencing graph.
    pub id: MoId,
    /// The operation type.
    pub op: MoType,
    /// Predecessor operation ids (`pre`) — the dependencies Algorithm 3
    /// checks before activating an operation.
    pub pre: Vec<MoId>,
    /// The droplet rectangles consumed from predecessor operations, in
    /// input order (empty for `dis`).
    pub inputs: Vec<Rect>,
    /// The single-droplet routing jobs, in execution order (for `dlt`, the
    /// two mix-phase jobs precede the two split-phase jobs).
    pub jobs: Vec<RoutingJob>,
    /// The droplet rectangles produced, in output order (empty for
    /// `out`/`dsc`).
    pub outputs: Vec<Rect>,
}

/// The RJ helper's decomposition of a whole bioassay: every operation with
/// its routing jobs (Algorithm 1 applied over the sequencing graph).
#[derive(Debug, Clone, PartialEq)]
pub struct BioassayPlan {
    name: String,
    planned: Vec<PlannedMo>,
}

impl BioassayPlan {
    /// Assembles a plan directly from pre-planned operations, bypassing the
    /// RJ helper. Intended for tests that need plans the helper would never
    /// emit (malformed dependency graphs, hand-placed jobs); no validation
    /// is performed.
    #[must_use]
    pub fn from_parts(name: impl Into<String>, planned: Vec<PlannedMo>) -> Self {
        Self {
            name: name.into(),
            planned,
        }
    }

    /// The bioassay name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The planned operations in topological order.
    #[must_use]
    pub fn operations(&self) -> &[PlannedMo] {
        &self.planned
    }

    /// Mutable access to the planned operations, in topological order.
    ///
    /// Like [`BioassayPlan::from_parts`] this bypasses validation — the
    /// caller owns coherence. The supervisor's reconfiguration rung uses it
    /// to rewrite a relocated operation's restart jobs from the droplets'
    /// actual positions (see [`RjHelper::relocate`]).
    #[must_use]
    pub fn operations_mut(&mut self) -> &mut [PlannedMo] {
        &mut self.planned
    }

    /// The routing jobs of one operation.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn jobs_for(&self, id: MoId) -> &[RoutingJob] {
        &self.planned[id].jobs
    }

    /// Total routing jobs across the bioassay.
    #[must_use]
    pub fn total_jobs(&self) -> usize {
        self.planned.iter().map(|p| p.jobs.len()).sum()
    }

    /// Sum of center-to-center Manhattan distances over all jobs — a lower
    /// bound on total droplet transport.
    #[must_use]
    pub fn total_transport(&self) -> f64 {
        self.planned
            .iter()
            .flat_map(|p| p.jobs.iter())
            .map(RoutingJob::center_distance)
            .sum()
    }

    /// The plan's dependency levels: level 0 holds the operations with no
    /// predecessors, level `k` the operations whose deepest predecessor
    /// sits at level `k − 1`. Operations within a level share no data
    /// dependency, so a concurrent engine may dispatch them together; ids
    /// within each level ascend (topological order is by id).
    ///
    /// This is a *schedulability* structure, not a schedule — fluidic
    /// separation can still serialize two level-mates at runtime.
    #[must_use]
    pub fn dependency_levels(&self) -> Vec<Vec<MoId>> {
        let mut level_of = vec![0usize; self.planned.len()];
        let mut levels: Vec<Vec<MoId>> = Vec::new();
        for mo in &self.planned {
            let level = mo.pre.iter().map(|&p| level_of[p] + 1).max().unwrap_or(0);
            level_of[mo.id] = level;
            if levels.len() <= level {
                levels.resize_with(level + 1, Vec::new);
            }
            levels[level].push(mo.id);
        }
        levels
    }

    /// The widest dependency level — an upper bound on how many operations
    /// the fleet engine can ever usefully run at once for this plan.
    #[must_use]
    pub fn max_parallelism(&self) -> usize {
        self.dependency_levels()
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }
}

/// Error planning a bioassay.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The sequencing graph failed validation.
    Invalid(ValidateError),
    /// An operation's droplet rectangle does not fit on the chip.
    OffChip {
        /// The offending operation.
        id: MoId,
        /// The rectangle that left the chip.
        rect: Rect,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Invalid(e) => write!(f, "invalid sequencing graph: {e}"),
            Self::OffChip { id, rect } => {
                write!(f, "operation M{id} places droplet {rect} off the chip")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl From<ValidateError> for PlanError {
    fn from(e: ValidateError) -> Self {
        Self::Invalid(e)
    }
}

/// The MO-to-RJ helper of Algorithm 1, applied over a whole sequencing
/// graph in topological order.
///
/// Droplet sizes flow through the graph: dispenses fix their own size;
/// mixes add areas and refit (`|w − h| ≤ 1`, minimal area error); splits
/// and dilutions halve; magnetic/output operations preserve size. Hazard
/// bounds come from [`zone`] (3-MC margin, clipped to the chip).
///
/// # Examples
///
/// See the crate-level example, which reproduces Table IV.
#[derive(Debug, Clone, Copy)]
pub struct RjHelper {
    dims: ChipDims,
}

impl RjHelper {
    /// Creates a helper for a `W × H` biochip.
    #[must_use]
    pub fn new(dims: ChipDims) -> Self {
        Self { dims }
    }

    /// Plans a bioassay: validates the graph and decomposes every MO into
    /// routing jobs.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::Invalid`] for a malformed graph and
    /// [`PlanError::OffChip`] when a droplet rectangle leaves the chip.
    pub fn plan(&self, sg: &SequencingGraph) -> Result<BioassayPlan, PlanError> {
        sg.validate()?;
        let mut planned: Vec<PlannedMo> = Vec::with_capacity(sg.len());
        // Next unconsumed output slot per operation.
        let mut next_slot = vec![0usize; sg.len()];

        for (id, mo) in sg.iter() {
            // Resolve this operation's input rectangles.
            let inputs: Vec<Rect> = mo
                .pre
                .iter()
                .map(|&pre| {
                    let slot = next_slot[pre];
                    next_slot[pre] += 1;
                    planned[pre].outputs[slot]
                })
                .collect();

            let (jobs, outputs) = match mo.op {
                MoType::Dispense => {
                    let (w, h) = mo.dispense_size.expect("dispense carries a size");
                    let goal = self.on_chip(id, Rect::centered_at(mo.loc().0, mo.loc().1, w, h))?;
                    let job = RoutingJob::new(Rect::off_chip_origin(), goal, self.zone1(goal));
                    (vec![job], vec![goal])
                }
                MoType::Output | MoType::Discard => {
                    let start = inputs[0];
                    let goal = self.sized_at(id, mo.loc(), start)?;
                    let job = RoutingJob::new(start, goal, zone(start, goal, self.dims));
                    (vec![job], vec![])
                }
                MoType::Magnetic => {
                    let start = inputs[0];
                    let goal = self.sized_at(id, mo.loc(), start)?;
                    let job = RoutingJob::new(start, goal, zone(start, goal, self.dims));
                    (vec![job], vec![goal])
                }
                MoType::Mix => {
                    let (r0, r1) = (inputs[0], inputs[1]);
                    // Each input routes (at its own size) to a goal region
                    // centered on the mixing location (Table IV, M3).
                    let g0 = self.sized_at(id, mo.loc(), r0)?;
                    let g1 = self.sized_at(id, mo.loc(), r1)?;
                    let jobs = vec![
                        RoutingJob::new(r0, g0, zone(r0, g0, self.dims)),
                        RoutingJob::new(r1, g1, zone(r1, g1, self.dims)),
                    ];
                    // The merged droplet refits the summed area (M4's start).
                    let (w, h, _) = fit_droplet_size(r0.area() + r1.area());
                    let merged =
                        self.on_chip(id, Rect::centered_at(mo.loc().0, mo.loc().1, w, h))?;
                    (jobs, vec![merged])
                }
                MoType::Split => {
                    let r = inputs[0];
                    let (w, h, _) = fit_droplet_size((r.area() / 2).max(1));
                    let (cx, cy) = r.center();
                    let half_at_src = self.on_chip(id, Rect::centered_at(cx, cy, w, h))?;
                    let g0 =
                        self.on_chip(id, Rect::centered_at(mo.locs[0].0, mo.locs[0].1, w, h))?;
                    let g1 =
                        self.on_chip(id, Rect::centered_at(mo.locs[1].0, mo.locs[1].1, w, h))?;
                    let jobs = vec![
                        RoutingJob::new(half_at_src, g0, zone(half_at_src, g0, self.dims)),
                        RoutingJob::new(half_at_src, g1, zone(half_at_src, g1, self.dims)),
                    ];
                    (jobs, vec![g0, g1])
                }
                MoType::Dilute => {
                    // Mix phase: both inputs to loc[0] (Algorithm 1, RJ0/RJ1).
                    let (r0, r1) = (inputs[0], inputs[1]);
                    let g0 = self.sized_at(id, mo.locs[0], r0)?;
                    let g1 = self.sized_at(id, mo.locs[0], r1)?;
                    let mut jobs = vec![
                        RoutingJob::new(r0, g0, zone(r0, g0, self.dims)),
                        RoutingJob::new(r1, g1, zone(r1, g1, self.dims)),
                    ];
                    // Split phase (RJ2/RJ3): halves of the mixture; one
                    // settles at loc[0], the other routes to loc[1].
                    let total = r0.area() + r1.area();
                    let (hw, hh, _) = fit_droplet_size((total / 2).max(1));
                    let keep =
                        self.on_chip(id, Rect::centered_at(mo.locs[0].0, mo.locs[0].1, hw, hh))?;
                    let away =
                        self.on_chip(id, Rect::centered_at(mo.locs[1].0, mo.locs[1].1, hw, hh))?;
                    jobs.push(RoutingJob::new(keep, keep, self.zone1(keep)));
                    jobs.push(RoutingJob::new(keep, away, zone(keep, away, self.dims)));
                    (jobs, vec![keep, away])
                }
            };

            planned.push(PlannedMo {
                id,
                op: mo.op,
                pre: mo.pre.clone(),
                inputs,
                jobs,
                outputs,
            });
        }

        Ok(BioassayPlan {
            name: sg.name().to_string(),
            planned,
        })
    }

    /// Relocates one planned operation's target zone by `(dx, dy)` —
    /// the Algorithm-1 re-entry used by the supervisor's reconfiguration
    /// rung when an operation's original region has been swallowed by
    /// faults and a healthy spare region exists elsewhere.
    ///
    /// The operation's goals and outputs translate wholesale; a job start
    /// translates only if it *is* one of the moved rectangles (intra-MO
    /// continuations like the dilute keep-phase), so droplets already
    /// parked elsewhere — external inputs, split sources — stay put and
    /// simply route further. Hazard bounds are recomputed with [`zone`].
    /// Direct successors are re-derived one level deep: their patched
    /// inputs replace the old ones, jobs starting at an old input re-base
    /// onto the new one, and a successor split recenters its half-droplet
    /// source on the relocated input.
    ///
    /// The update is all-or-nothing: every new rectangle is validated
    /// against the chip first, and on [`PlanError::OffChip`] the plan is
    /// left untouched.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::OffChip`] when any translated or re-derived
    /// rectangle leaves the chip.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the plan.
    pub fn relocate(
        &self,
        plan: &mut BioassayPlan,
        id: MoId,
        dx: i32,
        dy: i32,
    ) -> Result<(), PlanError> {
        // Stage every change on a clone; commit only if all checks pass.
        let mut planned = plan.planned.clone();
        let moved: Vec<Rect> = planned[id]
            .jobs
            .iter()
            .map(|j| j.goal)
            .chain(planned[id].outputs.iter().copied())
            .collect();
        let shifted = |r: Rect| r.translate(dx, dy);

        // The relocated operation itself.
        {
            let mo = &mut planned[id];
            for job in &mut mo.jobs {
                let goal = self.on_chip(id, shifted(job.goal))?;
                let start = if !job.is_dispense() && moved.contains(&job.start) {
                    self.on_chip(id, shifted(job.start))?
                } else {
                    job.start
                };
                let bounds = if start.is_off_chip_origin() {
                    self.zone1(goal)
                } else {
                    zone(start, goal, self.dims)
                };
                *job = RoutingJob::new(start, goal, bounds);
            }
            for out in &mut mo.outputs {
                *out = self.on_chip(id, shifted(*out))?;
            }
        }

        // Direct successors: replay the consumption-order input resolution
        // to find which of their input slots came from the relocated MO,
        // then re-base the affected jobs.
        let mut next_slot = vec![0usize; planned.len()];
        for consumer in 0..planned.len() {
            let pre = planned[consumer].pre.clone();
            for (k, &p) in pre.iter().enumerate() {
                let slot = next_slot[p];
                next_slot[p] += 1;
                if p != id || consumer == id {
                    continue;
                }
                let old_input = planned[consumer].inputs[k];
                let new_input = planned[id].outputs[slot];
                if old_input == new_input {
                    continue;
                }
                let mo = &mut planned[consumer];
                mo.inputs[k] = new_input;
                if mo.op == MoType::Split {
                    // The half-droplet source recenters on the moved input.
                    let (cx, cy) = new_input.center();
                    let (w, h) = mo.jobs[0].droplet_size();
                    let half = self.on_chip(consumer, Rect::centered_at(cx, cy, w, h))?;
                    for job in &mut mo.jobs {
                        *job = RoutingJob::new(half, job.goal, zone(half, job.goal, self.dims));
                    }
                } else {
                    for job in &mut mo.jobs {
                        if job.start == old_input {
                            *job = RoutingJob::new(
                                new_input,
                                job.goal,
                                zone(new_input, job.goal, self.dims),
                            );
                        }
                    }
                }
            }
        }

        plan.planned = planned;
        Ok(())
    }

    /// Goal rectangle of the same size as `like`, centered at `loc`.
    fn sized_at(&self, id: MoId, loc: (f64, f64), like: Rect) -> Result<Rect, PlanError> {
        self.on_chip(
            id,
            Rect::centered_at(loc.0, loc.1, like.width(), like.height()),
        )
    }

    fn zone1(&self, r: Rect) -> Rect {
        zone(r, r, self.dims)
    }

    fn on_chip(&self, id: MoId, rect: Rect) -> Result<Rect, PlanError> {
        if self.dims.contains_rect(rect) {
            Ok(rect)
        } else {
            Err(PlanError::OffChip { id, rect })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: ChipDims = ChipDims {
        width: 60,
        height: 30,
    };

    fn table_iv_graph() -> SequencingGraph {
        let mut sg = SequencingGraph::new("table4");
        let m1 = sg.dispense((17.5, 2.5), (4, 4));
        let m2 = sg.dispense((17.5, 28.5), (4, 4));
        let m3 = sg.mix(&[m1, m2], (10.5, 15.5));
        sg.magnetic(m3, (40.5, 15.5));
        sg
    }

    #[test]
    fn table_iv_dispense_rows() {
        let plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        let rj1 = plan.jobs_for(0)[0];
        assert_eq!(rj1.start, Rect::off_chip_origin());
        assert_eq!(rj1.goal, Rect::new(16, 1, 19, 4));
        assert_eq!(rj1.bounds, Rect::new(13, 1, 22, 7));
        let rj2 = plan.jobs_for(1)[0];
        assert_eq!(rj2.goal, Rect::new(16, 27, 19, 30));
        assert_eq!(rj2.bounds, Rect::new(13, 24, 22, 30));
    }

    #[test]
    fn table_iv_mix_rows() {
        let plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        let jobs = plan.jobs_for(2);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].start, Rect::new(16, 1, 19, 4));
        assert_eq!(jobs[0].goal, Rect::new(9, 14, 12, 17));
        assert_eq!(jobs[0].bounds, Rect::new(6, 1, 22, 20));
        assert_eq!(jobs[1].start, Rect::new(16, 27, 19, 30));
        assert_eq!(jobs[1].goal, Rect::new(9, 14, 12, 17));
        assert_eq!(jobs[1].bounds, Rect::new(6, 11, 22, 30));
        // The merged droplet is 6×5 (area 32, 6.3% error).
        assert_eq!(plan.operations()[2].outputs[0], Rect::new(8, 14, 13, 18));
    }

    #[test]
    fn table_iv_mag_row() {
        let plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        let rj = plan.jobs_for(3)[0];
        assert_eq!(rj.start, Rect::new(8, 14, 13, 18));
        assert_eq!(rj.goal, Rect::new(38, 14, 43, 18));
        assert_eq!(rj.bounds, Rect::new(5, 11, 46, 21));
    }

    #[test]
    fn split_produces_two_half_jobs() {
        let mut sg = SequencingGraph::new("split");
        let a = sg.dispense((10.5, 10.5), (4, 4));
        let s = sg.split(a, (20.5, 10.5), (10.5, 20.5));
        sg.output(s, (30.5, 10.5));
        sg.output(s, (10.5, 28.5));
        let plan = RjHelper::new(DIMS).plan(&sg).unwrap();
        let jobs = plan.jobs_for(s);
        assert_eq!(jobs.len(), 2);
        // Halves of area 16 are 3×3 (area 9 error 1) vs 3×2=6 err 2 vs 2x3...
        // fit_droplet_size(8) → 3×3 (|9−8| = 1).
        assert_eq!(jobs[0].droplet_size(), (3, 3));
        assert_eq!(jobs[0].start, jobs[1].start);
        assert_ne!(jobs[0].goal, jobs[1].goal);
    }

    #[test]
    fn dilute_produces_four_jobs() {
        let mut sg = SequencingGraph::new("dlt");
        let a = sg.dispense((10.5, 10.5), (4, 4));
        let b = sg.dispense((30.5, 10.5), (4, 4));
        let d = sg.dilute(&[a, b], (20.5, 10.5), (20.5, 20.5));
        sg.output(d, (3.5, 10.5));
        sg.discard(d, (3.5, 20.5));
        let plan = RjHelper::new(DIMS).plan(&sg).unwrap();
        let jobs = plan.jobs_for(d);
        assert_eq!(jobs.len(), 4);
        // The split-phase halves carry half the mixed area (32/2 = 16 → 4×4).
        assert_eq!(jobs[3].droplet_size(), (4, 4));
        assert_eq!(plan.operations()[d].outputs.len(), 2);
    }

    #[test]
    fn consumption_order_matches_reference_order() {
        // Two consumers of a split take its outputs in declaration order.
        let mut sg = SequencingGraph::new("order");
        let a = sg.dispense((10.5, 10.5), (6, 6));
        let s = sg.split(a, (20.5, 8.5), (20.5, 16.5));
        let m1 = sg.magnetic(s, (30.5, 8.5));
        let m2 = sg.magnetic(s, (30.5, 16.5));
        let plan = RjHelper::new(DIMS).plan(&sg).unwrap();
        assert_eq!(plan.jobs_for(m1)[0].start, plan.operations()[s].outputs[0]);
        assert_eq!(plan.jobs_for(m2)[0].start, plan.operations()[s].outputs[1]);
    }

    #[test]
    fn off_chip_placement_rejected() {
        let mut sg = SequencingGraph::new("bad");
        sg.dispense((1.0, 1.0), (6, 6)); // centered at (1,1): hangs off chip
        match RjHelper::new(DIMS).plan(&sg) {
            Err(PlanError::OffChip { id: 0, .. }) => {}
            other => panic!("expected OffChip, got {other:?}"),
        }
    }

    #[test]
    fn relocate_translates_goals_and_rebases_consumers() {
        let mut plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        let before = plan.clone();
        RjHelper::new(DIMS).relocate(&mut plan, 2, 10, 5).unwrap();
        // The mix goals and merged output move by (10, 5); the external
        // input starts (dispense outputs) stay put.
        for (old, new) in before.jobs_for(2).iter().zip(plan.jobs_for(2)) {
            assert_eq!(new.goal, old.goal.translate(10, 5));
            assert_eq!(new.start, old.start);
            assert!(new.bounds.contains_rect(new.start) && new.bounds.contains_rect(new.goal));
        }
        assert_eq!(
            plan.operations()[2].outputs[0],
            before.operations()[2].outputs[0].translate(10, 5)
        );
        // The magnetic consumer re-bases onto the moved merged droplet.
        assert_eq!(
            plan.operations()[3].inputs[0],
            plan.operations()[2].outputs[0]
        );
        assert_eq!(plan.jobs_for(3)[0].start, plan.operations()[2].outputs[0]);
        assert_eq!(plan.jobs_for(3)[0].goal, before.jobs_for(3)[0].goal);
    }

    #[test]
    fn relocate_moves_dilute_keep_phase_with_the_zone() {
        let mut sg = SequencingGraph::new("dlt");
        let a = sg.dispense((10.5, 10.5), (4, 4));
        let b = sg.dispense((30.5, 10.5), (4, 4));
        let d = sg.dilute(&[a, b], (20.5, 10.5), (20.5, 20.5));
        sg.output(d, (3.5, 10.5));
        sg.discard(d, (3.5, 20.5));
        let mut plan = RjHelper::new(DIMS).plan(&sg).unwrap();
        let before = plan.clone();
        RjHelper::new(DIMS).relocate(&mut plan, d, 8, 4).unwrap();
        let jobs = plan.jobs_for(d);
        // The split-phase jobs start from the *moved* keep rectangle — it
        // was one of the operation's own goals, so it travels with it.
        assert_eq!(jobs[2].start, before.jobs_for(d)[2].start.translate(8, 4));
        assert_eq!(jobs[3].start, before.jobs_for(d)[3].start.translate(8, 4));
        // Both downstream consumers were re-based onto the moved outputs.
        assert_eq!(
            plan.jobs_for(d + 1)[0].start,
            plan.operations()[d].outputs[0]
        );
        assert_eq!(
            plan.jobs_for(d + 2)[0].start,
            plan.operations()[d].outputs[1]
        );
    }

    #[test]
    fn relocate_recenters_a_successor_split_source() {
        let mut sg = SequencingGraph::new("split-after-mag");
        let a = sg.dispense((10.5, 10.5), (4, 4));
        let m = sg.magnetic(a, (20.5, 10.5));
        let s = sg.split(m, (30.5, 8.5), (30.5, 16.5));
        sg.output(s, (40.5, 8.5));
        sg.output(s, (40.5, 16.5));
        let mut plan = RjHelper::new(DIMS).plan(&sg).unwrap();
        let before = plan.clone();
        RjHelper::new(DIMS).relocate(&mut plan, m, 0, 10).unwrap();
        let (cx, cy) = plan.operations()[s].inputs[0].center();
        let (w, h) = before.jobs_for(s)[0].droplet_size();
        let expected = Rect::centered_at(cx, cy, w, h);
        assert_eq!(plan.jobs_for(s)[0].start, expected);
        assert_eq!(plan.jobs_for(s)[1].start, expected);
        assert_eq!(plan.jobs_for(s)[0].goal, before.jobs_for(s)[0].goal);
    }

    #[test]
    fn relocate_off_chip_is_rejected_and_leaves_the_plan_untouched() {
        let mut plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        let before = plan.clone();
        let err = RjHelper::new(DIMS).relocate(&mut plan, 2, 55, 0);
        assert!(matches!(err, Err(PlanError::OffChip { id: 2, .. })));
        assert_eq!(plan, before, "failed relocation must not mutate the plan");
    }

    #[test]
    fn dependency_levels_stratify_the_table_iv_graph() {
        let plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        // Two dispenses → one mix → one magnetic.
        assert_eq!(plan.dependency_levels(), vec![vec![0, 1], vec![2], vec![3]]);
        assert_eq!(plan.max_parallelism(), 2);
    }

    #[test]
    fn plan_totals_are_consistent() {
        let plan = RjHelper::new(DIMS).plan(&table_iv_graph()).unwrap();
        assert_eq!(plan.total_jobs(), 5);
        assert!(plan.total_transport() > 0.0);
        assert_eq!(plan.name(), "table4");
    }
}
