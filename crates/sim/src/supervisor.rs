//! Supervised bioassay execution with graceful degradation.
//!
//! The plain [`BioassayRunner`](crate::BioassayRunner) is all-or-nothing:
//! the first failed routing job aborts the whole bioassay. Cyberphysical
//! DMFB practice instead detects errors through the sensing loop and
//! re-executes bounded portions of the assay. The [`Supervisor`] implements
//! that discipline on top of the shared execution core: every failed
//! routing job climbs an escalation ladder — re-sense the droplet and
//! retry, re-synthesize with a widened corridor from the refreshed health
//! matrix, detour via the reactive [`RecoveryRouter`] — and only when the
//! retry budget is exhausted is the operation aborted, its dependents
//! skipped, and the rest of the plan continued. The result is a structured
//! [`FailureReport`] with a per-operation completion fraction instead of a
//! single terminal status.

use meda_rng::Rng;

use meda_bioassay::{BioassayPlan, RoutingJob};
use meda_grid::Rect;

use crate::engine::{Exec, JobError};
use crate::{Biochip, FaultPlan, RecoveryRouter, Router, RunConfig, RunStatus};

/// Configuration of supervised execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// The underlying run configuration (cycle budget, sensed feedback).
    pub run: RunConfig,
    /// Retries allowed per routing job beyond its first attempt. Each
    /// retry climbs one rung of the escalation ladder; retry 3 and beyond
    /// stay on the detour rung.
    pub retry_budget: u32,
    /// Stall patience of the [`RecoveryRouter`] used on the detour rung.
    pub detour_patience: u32,
    /// Watchdog: cycles one routing attempt may burn before it is declared
    /// [`RunStatus::Stalled`] and retried. Without it, a wedged position
    /// estimate (e.g. stuck sensors swallowing the goal region) silently
    /// eats the whole global `k_max` — terminal for supervised and
    /// unsupervised runs alike.
    pub attempt_cycles: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            run: RunConfig::default(),
            retry_budget: 3,
            detour_patience: 4,
            attempt_cycles: 256,
        }
    }
}

/// One aborted microfluidic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoFailure {
    /// The operation's id in the plan.
    pub mo: usize,
    /// Index of the routing job that exhausted its retries.
    pub job: usize,
    /// The failure class of the final attempt.
    pub status: RunStatus,
    /// Where the droplet was last believed to be.
    pub last_position: Rect,
    /// Retries consumed before giving up.
    pub retries: u32,
}

/// How often each rung of the escalation ladder fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RungCounts {
    /// Rung 1: global re-sense, retry with the same router.
    pub resense: u64,
    /// Rung 2: re-synthesis from the refreshed health matrix with a
    /// widened routing corridor.
    pub resynth: u64,
    /// Rung 3: detour via a fresh reactive [`RecoveryRouter`].
    pub detour: u64,
    /// Rung 4: operations aborted after the budget ran out.
    pub aborted_ops: u64,
}

/// The structured outcome of a supervised run: what completed, what was
/// aborted and why, and how hard the supervisor had to work.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Total operational cycles consumed.
    pub cycles: u64,
    /// [`RunStatus::Success`] when every operation completed; otherwise
    /// the root cause — the status of the earliest failure,
    /// [`RunStatus::CycleLimit`] when the budget died, or
    /// [`RunStatus::Deadlock`] for a malformed plan.
    pub status: RunStatus,
    /// Operations that completed.
    pub completed_ops: usize,
    /// Total operations in the plan.
    pub total_ops: usize,
    /// Every aborted operation, in failure order.
    pub failures: Vec<MoFailure>,
    /// Operations skipped because a (transitive) predecessor was aborted.
    pub skipped: Vec<usize>,
    /// Escalation-ladder statistics.
    pub rungs: RungCounts,
}

impl FailureReport {
    /// Whether every operation completed.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.completed_ops == self.total_ops
    }

    /// Fraction of the plan's operations that completed (1 for an empty
    /// plan).
    #[must_use]
    pub fn completion_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            1.0
        } else {
            self.completed_ops as f64 / self.total_ops as f64
        }
    }
}

/// Supervised execution: [`BioassayRunner`](crate::BioassayRunner)
/// semantics plus a per-job retry ladder and partial completion.
///
/// # Examples
///
/// ```
/// use meda_bioassay::{benchmarks, RjHelper};
/// use meda_grid::ChipDims;
/// use meda_rng::SeedableRng;
/// use meda_sim::{
///     BaselineRouter, Biochip, DegradationConfig, FaultPlan, Supervisor, SupervisorConfig,
/// };
///
/// let mut rng = meda_rng::StdRng::seed_from_u64(7);
/// let plan = RjHelper::new(ChipDims::PAPER).plan(&benchmarks::master_mix())?;
/// let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
/// let mut router = BaselineRouter::new();
/// let report = Supervisor::new(SupervisorConfig::default())
///     .run(&plan, &mut chip, &mut router, &FaultPlan::none(), &mut rng);
/// assert!(report.is_success());
/// assert_eq!(report.completion_fraction(), 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
}

impl Supervisor {
    /// Creates a supervisor.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        Self { config }
    }

    /// Runs `plan` on `chip` under `chaos`, retrying failed jobs up the
    /// escalation ladder and skipping the dependents of aborted
    /// operations. With [`FaultPlan::none`] and sensed feedback off, the
    /// execution is bit-identical to
    /// [`BioassayRunner::run`](crate::BioassayRunner::run) — the ladder
    /// only exists on the failure path.
    pub fn run(
        &self,
        plan: &BioassayPlan,
        chip: &mut Biochip,
        router: &mut dyn Router,
        chaos: &FaultPlan,
        rng: &mut impl Rng,
    ) -> FailureReport {
        let total = plan.operations().len();
        let mut exec = Exec::new(self.config.run, chip, rng, chaos);
        let mut done = vec![false; total];
        let mut failed = vec![false; total];
        let mut completed = 0usize;
        let mut failures: Vec<MoFailure> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        let mut rungs = RungCounts::default();
        let mut out_of_budget = false;

        loop {
            // Transitively skip the dependents of aborted operations. Plan
            // ids are topological (predecessors have smaller ids), so one
            // increasing pass reaches a fixpoint.
            for id in 0..total {
                let mo = &plan.operations()[id];
                if !done[id] && !failed[id] && mo.pre.iter().any(|&p| failed[p]) {
                    failed[id] = true;
                    skipped.push(id);
                }
            }
            let ready: Vec<usize> = plan
                .operations()
                .iter()
                .filter(|mo| !done[mo.id] && !failed[mo.id] && mo.pre.iter().all(|&p| done[p]))
                .map(|mo| mo.id)
                .collect();
            let Some(&picked) = ready.first() else {
                break;
            };
            let mo = &plan.operations()[picked];

            let mut fail_job = 0usize;
            let mut fail_retries = 0u32;
            let result = exec.exec_mo(mo, &mut |e, job, held, job_idx| {
                fail_job = job_idx;
                fail_retries = 0;
                self.run_job_with_ladder(e, job, router, held, &mut rungs, &mut fail_retries)
            });
            match result {
                Ok(()) => {
                    done[picked] = true;
                    completed += 1;
                }
                Err(err) => {
                    failures.push(MoFailure {
                        mo: picked,
                        job: fail_job,
                        status: err.status,
                        last_position: err.at,
                        retries: fail_retries,
                    });
                    // The aborted operation's droplets go to waste; make
                    // sure the next job does not inherit a stale physical
                    // position.
                    exec.pending = None;
                    if err.status == RunStatus::CycleLimit {
                        // The shared cycle budget is gone: nothing further
                        // can execute, matching the plain runner's
                        // accounting cycle for cycle.
                        out_of_budget = true;
                        break;
                    }
                    failed[picked] = true;
                    rungs.aborted_ops += 1;
                }
            }
        }

        let status = if completed == total {
            RunStatus::Success
        } else if out_of_budget {
            RunStatus::CycleLimit
        } else if let Some(first) = failures.first() {
            first.status
        } else {
            // Nothing failed, yet operations remain: the plan's dependency
            // graph can never release them.
            RunStatus::Deadlock
        };
        let telemetry = meda_telemetry::global();
        telemetry.add("sim.supervisor.runs", 1);
        telemetry.add("sim.supervisor.rung.resense", rungs.resense);
        telemetry.add("sim.supervisor.rung.resynth", rungs.resynth);
        telemetry.add("sim.supervisor.rung.detour", rungs.detour);
        telemetry.add("sim.supervisor.aborted_ops", rungs.aborted_ops);

        FailureReport {
            cycles: exec.cycles,
            status,
            completed_ops: completed,
            total_ops: total,
            failures,
            skipped,
            rungs,
        }
    }

    /// One routing job under the escalation ladder. Dispense jobs are not
    /// retried (their only failure mode is the shared cycle budget).
    fn run_job_with_ladder<R: Rng>(
        &self,
        exec: &mut Exec<'_, R>,
        job: &RoutingJob,
        router: &mut dyn Router,
        held: &[Rect],
        rungs: &mut RungCounts,
        retries_out: &mut u32,
    ) -> Result<Rect, JobError> {
        if job.is_dispense() {
            return exec.run_dispense(job, held);
        }
        let chip_bounds = exec.chip.dims().bounds();
        let mut attempt = *job;
        let mut retries = 0u32;
        exec.attempt_budget = Some(self.config.attempt_cycles);
        let result = loop {
            let result = if retries >= 3 {
                let mut detour = RecoveryRouter::new(self.config.detour_patience);
                exec.run_routed(&attempt, &mut detour, held)
            } else {
                exec.run_routed(&attempt, router, held)
            };
            match result {
                Ok(rect) => break Ok(rect),
                Err(err) => {
                    if err.status == RunStatus::Stalled {
                        meda_telemetry::global().add("sim.supervisor.watchdog_fires", 1);
                    }
                    *retries_out = retries;
                    if err.status == RunStatus::CycleLimit || retries >= self.config.retry_budget {
                        break Err(err);
                    }
                    retries += 1;
                    *retries_out = retries;
                    // Rung 1: a fresh global sensor read relocates the
                    // droplet. Without it there is nothing to retry from.
                    let Some(estimate) = exec.resense(err.at, held) else {
                        break Err(JobError {
                            status: RunStatus::DropletLost,
                            at: err.at,
                        });
                    };
                    let bounds = match retries {
                        1 => {
                            rungs.resense += 1;
                            attempt.bounds
                        }
                        2 => {
                            // Rung 2: widening the corridor changes the
                            // synthesis query, forcing strategy-backed
                            // routers to re-synthesize from the refreshed
                            // health matrix with more room to detour.
                            rungs.resynth += 1;
                            attempt
                                .bounds
                                .expand(2)
                                .intersection(chip_bounds)
                                // Never empty — attempt.bounds lies on the
                                // chip — and the whole chip is a sound
                                // fallback corridor regardless.
                                .unwrap_or(chip_bounds)
                        }
                        _ => {
                            rungs.detour += 1;
                            attempt
                                .bounds
                                .expand(2)
                                .intersection(chip_bounds)
                                .unwrap_or(chip_bounds)
                        }
                    };
                    attempt =
                        RoutingJob::new(estimate, job.goal, bounds.union(estimate).union(job.goal));
                }
            }
        };
        exec.attempt_budget = None;
        result
    }
}
