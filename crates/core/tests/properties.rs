//! Property-based tests for the droplet/actuation model: Table II frontier
//! invariants, Section V-B probability laws, guard soundness, and MDP
//! structure.

use meda_core::{
    frontier_set, transitions, Action, ActionConfig, Dir, ForceProvider, RawField, RoutingMdp,
    UniformField,
};
use meda_grid::{ChipDims, Grid, Rect};
use proptest::prelude::*;

fn arb_droplet() -> impl Strategy<Value = Rect> {
    (5i32..30, 5i32..30, 0i32..8, 0i32..8)
        .prop_map(|(xa, ya, w, h)| Rect::new(xa, ya, xa + w, ya + h))
}

fn arb_force() -> impl Strategy<Value = f64> {
    0.0f64..=1.0
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop::sample::select(Action::ALL.to_vec())
}

proptest! {
    /// Table II size formulas: cardinal frontiers span the full facing
    /// edge; ordinal frontiers the shifted edge; morphing frontiers one
    /// cell less.
    #[test]
    fn frontier_sizes_match_table_ii(delta in arb_droplet()) {
        let w = delta.width();
        let h = delta.height();
        for action in Action::ALL {
            for dir in Dir::ALL {
                let Some(fr) = frontier_set(delta, action, dir) else { continue };
                let expected = match action {
                    Action::Move(_) | Action::MoveDouble(_) | Action::MoveOrdinal(_) => {
                        if dir.is_vertical() { w } else { h }
                    }
                    Action::Widen(_) => h - 1,
                    Action::Heighten(_) => w - 1,
                };
                prop_assert_eq!(fr.area(), expected, "{} {}", action, dir);
                // Frontiers are always a single row or column.
                prop_assert!(fr.width() == 1 || fr.height() == 1);
                // And they never overlap the current droplet.
                prop_assert!(!fr.intersects(delta), "{} {}", action, dir);
            }
        }
    }

    /// The success outcome of an action always contains every frontier it
    /// pulls with (the pulling MCs end up under the droplet) — except the
    /// double step, whose first-step frontier lies under the intermediate.
    #[test]
    fn frontiers_end_up_under_the_droplet(delta in arb_droplet(), action in arb_action()) {
        prop_assume!(action.is_applicable(delta));
        let target = match action {
            Action::MoveDouble(_) => action.intermediate(delta).unwrap(),
            _ => action.apply(delta),
        };
        for dir in Dir::ALL {
            if let Some(fr) = frontier_set(delta, action, dir) {
                prop_assert!(target.contains_rect(fr), "{} {}", action, dir);
            }
        }
    }

    /// Probabilities over outcomes always form a distribution, for any
    /// force field value.
    #[test]
    fn outcome_probabilities_form_a_distribution(
        delta in arb_droplet(), force in arb_force(), action in arb_action()
    ) {
        let field = UniformField::new(force);
        let outcomes = transitions(delta, action, &field);
        let total: f64 = outcomes.iter().map(|o| o.probability).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for o in &outcomes {
            prop_assert!(o.probability >= -1e-12 && o.probability <= 1.0 + 1e-12);
            // Every outcome preserves droplet area except morphing.
            match action {
                Action::Widen(_) | Action::Heighten(_) => {}
                _ => prop_assert_eq!(o.droplet.area(), delta.area()),
            }
        }
    }

    /// Monotonicity: more force never decreases the success probability.
    #[test]
    fn success_probability_is_monotone_in_force(
        delta in arb_droplet(), action in arb_action(),
        f1 in arb_force(), f2 in arb_force()
    ) {
        prop_assume!(action.is_applicable(delta));
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let p = |f: f64| {
            transitions(delta, action, &UniformField::new(f))
                .iter()
                .find(|o| o.droplet == action.apply(delta))
                .map_or(0.0, |o| o.probability)
        };
        prop_assert!(p(lo) <= p(hi) + 1e-12);
    }

    /// Guard soundness: an enabled action's successful outcome stays within
    /// the bounds, and morphing preserves the half-perimeter and the aspect
    /// limit.
    #[test]
    fn enabled_actions_respect_bounds_and_aspect(
        delta in arb_droplet(), action in arb_action(), margin in 0i32..6
    ) {
        let bounds = delta.expand(margin + 2);
        let config = ActionConfig::default();
        if action.is_enabled(delta, bounds, &config) {
            let out = action.apply(delta);
            prop_assert!(bounds.contains_rect(out));
            match action {
                Action::Widen(_) | Action::Heighten(_) => {
                    prop_assert_eq!(
                        out.width() + out.height(),
                        delta.width() + delta.height()
                    );
                    // The paper's guard is one-directional: it bounds the
                    // ratio in the direction the morph grows (so a morph
                    // may still *correct* an already-extreme droplet).
                    let grown = match action {
                        Action::Widen(_) => out.aspect_ratio(),
                        _ => 1.0 / out.aspect_ratio(),
                    };
                    prop_assert!(grown <= config.aspect_ratio_max + 1e-9);
                }
                Action::MoveDouble(d) => {
                    let extent = if d.is_vertical() { delta.height() } else { delta.width() };
                    prop_assert!(extent >= 4);
                }
                _ => {}
            }
        }
    }

    /// The mean frontier force is the arithmetic mean of the per-cell
    /// forces, with off-chip cells contributing zero.
    #[test]
    fn mean_force_is_clipped_average(xa in 1i32..12, ya in 1i32..12, len in 1u32..6) {
        let dims = ChipDims::new(10, 10);
        let field = RawField::new(Grid::new(dims, 0.8));
        let fr = Rect::with_size(xa, ya, 1, len);
        let on_chip = fr.intersection(dims.bounds()).map_or(0, |c| c.area());
        let expected = 0.8 * f64::from(on_chip) / f64::from(fr.area());
        prop_assert!((field.mean_force(fr) - expected).abs() < 1e-12);
    }

    /// Routing MDPs are well-formed for arbitrary geometry: states within
    /// bounds, distributions normalized, goal states absorbing.
    #[test]
    fn routing_mdp_is_well_formed(
        w in 6u32..14, h in 6u32..14, droplet in 2u32..4, force in 0.05f64..1.0
    ) {
        let bounds = Rect::new(1, 1, w as i32, h as i32);
        let start = Rect::with_size(1, 1, droplet, droplet);
        let goal = Rect::with_size(
            w as i32 - droplet as i32 + 1,
            h as i32 - droplet as i32 + 1,
            droplet,
            droplet,
        );
        let mdp = RoutingMdp::build(
            start, goal, bounds, &UniformField::new(force), &ActionConfig::default(),
        ).unwrap();
        for i in mdp.state_indices() {
            prop_assert!(bounds.contains_rect(mdp.state(i)));
            if mdp.is_goal(i) {
                prop_assert!(mdp.choices(i).is_empty());
            }
            for (_, branch) in mdp.choices(i) {
                let total: f64 = branch.iter().map(|(_, p)| p).sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
        }
        let stats = mdp.stats();
        prop_assert!(stats.transitions >= stats.choices);
    }
}
