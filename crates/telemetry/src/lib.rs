#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # meda-telemetry — zero-dependency observability
//!
//! Span timers with nesting, `u64` counters, and fixed-bucket log2
//! histograms behind a thread-safe [`Registry`], plus two export sinks
//! (aggregated `telemetry.json` and a JSONL span-event stream).
//!
//! Design rules (DESIGN.md §11):
//!
//! - **Durations only.** No wall-clock value is ever recorded; every time
//!   is either a span duration or a nanosecond offset from the registry's
//!   run-relative epoch. `std::time` is confined to [`perf`], the one file
//!   meda-lint's wall-clock rule exempts.
//! - **Passive.** Instrumentation must never influence simulation or
//!   synthesis outputs — no RNG draws, no control flow on timings.
//! - **Deterministic exports.** Metric names are `BTreeMap`-ordered and the
//!   JSON writer is byte-stable, so two identical runs produce identical
//!   documents modulo the timing values themselves.
//!
//! Typical use:
//!
//! ```
//! let reg = meda_telemetry::global();
//! {
//!     let _build = reg.span("mdp.build");
//!     reg.add("core.mdp.states", 1024);
//! }
//! let summary = reg.summary();
//! assert_eq!(summary.counter("core.mdp.states"), Some(1024));
//! let _doc = meda_telemetry::export::summary_to_string(&summary);
//! ```

pub mod export;
pub mod histogram;
pub mod json;
pub mod perf;
pub mod registry;
pub mod span;

pub use histogram::{Histogram, HistogramSnapshot};
pub use json::Json;
pub use perf::{Clock, Stopwatch};
pub use registry::{Counter, CounterSummary, HistogramSummary, Registry, SpanSummary, Summary};
pub use span::{Span, SpanEvent};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry all built-in instrumentation records into.
/// Created lazily; its epoch is the first call.
#[must_use]
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}
