//! ASCII rendering of chip state — health maps, droplet overlays, and wear
//! maps — for examples, debugging, and experiment logs.

use meda_core::HealthField;
use meda_grid::{Cell, Grid, Rect};

use crate::Biochip;

/// Renders the health matrix as one digit per MC (`0..=2^b-1`), north row
/// first. Droplets in `droplets` are overlaid as `#`.
///
/// # Examples
///
/// ```
/// use meda_core::HealthField;
/// use meda_degradation::HealthLevel;
/// use meda_grid::{ChipDims, Grid, Rect};
/// use meda_sim::render;
///
/// let health = HealthField::new(
///     Grid::new(ChipDims::new(4, 2), HealthLevel::full(2)), 2);
/// let map = render::health_map(&health, &[Rect::new(1, 1, 2, 1)]);
/// assert_eq!(map, "3333\n##33");
/// ```
#[must_use]
pub fn health_map(health: &HealthField, droplets: &[Rect]) -> String {
    let grid = health.health();
    let dims = grid.dims();
    let mut lines = Vec::with_capacity(dims.height as usize);
    for y in (1..=dims.height as i32).rev() {
        let mut line = String::with_capacity(dims.width as usize);
        for x in 1..=dims.width as i32 {
            let cell = Cell::new(x, y);
            if droplets.iter().any(|d| d.contains_cell(cell)) {
                line.push('#');
            } else {
                line.push(level_char(grid[cell].level()));
            }
        }
        lines.push(line);
    }
    lines.join("\n")
}

/// Renders the chip's actuation-count matrix **N** as a log-scale heat map
/// (`.` untouched, then `1`–`9` per decade-ish bucket).
#[must_use]
pub fn wear_map(chip: &Biochip) -> String {
    let dims = chip.dims();
    let mut lines = Vec::with_capacity(dims.height as usize);
    for y in (1..=dims.height as i32).rev() {
        let mut line = String::with_capacity(dims.width as usize);
        for x in 1..=dims.width as i32 {
            line.push(wear_char(chip.actuation_count(Cell::new(x, y))));
        }
        lines.push(line);
    }
    lines.join("\n")
}

/// Renders a boolean actuation pattern (`#` actuated, `.` idle).
#[must_use]
pub fn pattern_map(pattern: &Grid<bool>) -> String {
    let dims = pattern.dims();
    let mut lines = Vec::with_capacity(dims.height as usize);
    for y in (1..=dims.height as i32).rev() {
        let mut line = String::with_capacity(dims.width as usize);
        for x in 1..=dims.width as i32 {
            line.push(if pattern[Cell::new(x, y)] { '#' } else { '.' });
        }
        lines.push(line);
    }
    lines.join("\n")
}

fn level_char(level: u8) -> char {
    char::from_digit(u32::from(level).min(9), 10).unwrap_or('?')
}

fn wear_char(n: u64) -> char {
    match n {
        0 => '.',
        1..=9 => '1',
        10..=31 => '2',
        32..=99 => '3',
        100..=315 => '4',
        316..=999 => '5',
        1_000..=3_161 => '6',
        3_162..=9_999 => '7',
        10_000..=31_622 => '8',
        _ => '9',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegradationConfig;
    use meda_degradation::HealthLevel;
    use meda_grid::ChipDims;
    use meda_rng::SeedableRng;
    use meda_rng::StdRng;

    #[test]
    fn health_map_orients_north_up() {
        let dims = ChipDims::new(3, 2);
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        grid[Cell::new(1, 2)] = HealthLevel::new(0, 2); // north-west corner
        let health = HealthField::new(grid, 2);
        let map = health_map(&health, &[]);
        assert_eq!(map, "033\n333");
    }

    #[test]
    fn droplet_overlay_wins_over_health() {
        let dims = ChipDims::new(3, 1);
        let health = HealthField::new(Grid::new(dims, HealthLevel::full(2)), 2);
        assert_eq!(health_map(&health, &[Rect::new(2, 1, 3, 1)]), "3##");
    }

    #[test]
    fn wear_map_buckets_are_monotone() {
        let mut prev = '.';
        for n in [0u64, 1, 10, 32, 100, 316, 1_000, 3_162, 10_000, 100_000] {
            let c = wear_char(n);
            assert!(c >= prev || prev == '.', "bucket regressed at n = {n}");
            prev = c;
        }
        assert_eq!(wear_char(0), '.');
        assert_eq!(wear_char(50_000), '9');
    }

    #[test]
    fn wear_map_reflects_actuation() {
        let dims = ChipDims::new(4, 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
        let mut pattern = Grid::new(dims, false);
        pattern[Cell::new(2, 1)] = true;
        for _ in 0..50 {
            chip.apply_actuation(&pattern);
        }
        assert_eq!(wear_map(&chip), ".3..");
    }

    #[test]
    fn pattern_map_roundtrips_shape() {
        let dims = ChipDims::new(4, 2);
        let mut p = Grid::new(dims, false);
        p.fill_rect(Rect::new(1, 1, 2, 2), true);
        assert_eq!(pattern_map(&p), "##..\n##..");
    }
}
