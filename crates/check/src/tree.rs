//! Lazy shrink trees — the data structure behind integrated shrinking.
//!
//! A [`Tree`] pairs a generated value with a *lazily computed* list of
//! shrink candidates, each of which is itself a tree. Generators return
//! whole trees, so every combinator ([`Tree::map`], [`bind`]) transports
//! the shrink structure along with the value: a shrunk candidate is always
//! produced by the same generator pipeline as the original, and therefore
//! satisfies the same invariants. This is Hedgehog-style *integrated*
//! shrinking, as opposed to QuickCheck-style post-hoc `shrink(value)`
//! functions that know nothing about how the value was constructed.
//!
//! Children are behind `Rc<dyn Fn() -> …>` thunks so that building a tree
//! is O(1): the (potentially exponential) candidate space is only explored
//! along the single greedy path the shrinker actually walks.

use std::rc::Rc;

/// Thunk producing a node's shrink candidates on demand.
type Children<T> = Rc<dyn Fn() -> Vec<Tree<T>>>;

/// A generated value plus its lazily-expanded shrink candidates.
///
/// Candidates are ordered most-aggressive-first (e.g. an integer offers
/// its origin before nearby values); the greedy shrinker in the runner
/// takes the first candidate that still fails the property and recurses.
pub struct Tree<T> {
    value: T,
    children: Children<T>,
}

impl<T: Clone> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Self {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Self {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree whose candidates are produced by `children` when (and only
    /// when) the shrinker asks for them.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Self {
            value,
            children: Rc::new(children),
        }
    }

    /// The value at this node.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Forces this node's immediate shrink candidates.
    #[must_use]
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps `f` over the value and, lazily, over every shrink candidate —
    /// the functor law that lets generator invariants survive shrinking.
    #[must_use]
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let children = Rc::clone(&self.children);
        Tree {
            value,
            children: Rc::new(move || children().iter().map(|c| c.map(Rc::clone(&f))).collect()),
        }
    }

    /// Drops shrink candidates (recursively) whose value fails `keep`.
    /// The root is kept unconditionally — the caller vouches for it.
    #[must_use]
    pub fn prune(&self, keep: Rc<dyn Fn(&T) -> bool>) -> Tree<T> {
        let children = Rc::clone(&self.children);
        Tree {
            value: self.value.clone(),
            children: Rc::new(move || {
                children()
                    .iter()
                    .filter(|c| keep(c.value()))
                    .map(|c| c.prune(Rc::clone(&keep)))
                    .collect()
            }),
        }
    }
}

/// A shared deterministic continuation from values to trees, as consumed
/// by [`bind`].
pub type Continuation<T, U> = Rc<dyn Fn(&T) -> Tree<U>>;

/// Monadic bind: substitutes a whole tree for each value, shrinking the
/// *outer* value first (rebuilding the inner tree from the shrunk outer
/// value via `k`) and only then the inner one. `k` must be deterministic —
/// the generator layer guarantees this by freezing the inner RNG seed.
#[must_use]
pub fn bind<T, U>(outer: &Tree<T>, k: Continuation<T, U>) -> Tree<U>
where
    T: Clone + 'static,
    U: Clone + 'static,
{
    let inner = k(outer.value());
    let outer_children = Rc::clone(&outer.children);
    let inner_children = Rc::clone(&inner.children);
    Tree {
        value: inner.value,
        children: Rc::new(move || {
            let mut out: Vec<Tree<U>> = outer_children()
                .iter()
                .map(|c| bind(c, Rc::clone(&k)))
                .collect();
            out.extend(inner_children());
            out
        }),
    }
}

/// Shrink candidates for an integer, moving toward `origin` by binary
/// halving: for distance `d` the candidates are `origin`, `v - d/2`,
/// `v - d/4`, …, `v - 1` — most aggressive first.
#[must_use]
pub fn halvings_toward(value: i64, origin: i64) -> Vec<i64> {
    let mut out = Vec::new();
    let mut step = value - origin;
    while step != 0 {
        let candidate = value - step;
        if out.last() != Some(&candidate) {
            out.push(candidate);
        }
        step /= 2;
    }
    out
}

/// The full integer shrink tree toward `origin`.
#[must_use]
pub fn int_tree(value: i64, origin: i64) -> Tree<i64> {
    Tree::with_children(value, move || {
        halvings_toward(value, origin)
            .into_iter()
            .map(|c| int_tree(c, origin))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halvings_reach_origin_first_and_neighbor_last() {
        assert_eq!(halvings_toward(10, 0), vec![0, 5, 8, 9]);
        assert_eq!(halvings_toward(-10, 0), vec![0, -5, -8, -9]);
        assert_eq!(halvings_toward(3, 3), Vec::<i64>::new());
    }

    #[test]
    fn map_transports_shrinks() {
        let t = int_tree(4, 0).map(Rc::new(|v| v * 10));
        assert_eq!(*t.value(), 40);
        let kids: Vec<i64> = t.children().iter().map(|c| *c.value()).collect();
        assert_eq!(kids, vec![0, 20, 30]);
    }

    #[test]
    fn bind_shrinks_outer_before_inner() {
        // Outer 2 (toward 0), inner = outer * 10 with its own shrinks.
        let t = bind(&int_tree(2, 0), Rc::new(|&v| int_tree(v * 10, v)));
        assert_eq!(*t.value(), 20);
        let kids: Vec<i64> = t.children().iter().map(|c| *c.value()).collect();
        // Outer candidates first (0 -> 0, 1 -> 10), then inner's own.
        assert_eq!(kids, vec![0, 10, 2, 11, 16, 18, 19]);
    }
}
