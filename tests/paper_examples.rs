//! The paper's worked Examples 1–5, verified end-to-end across crates.

use meda::bioassay::{RjHelper, SequencingGraph};
use meda::core::{frontier_set, transitions, Action, Dir, Ordinal, RawField};
use meda::grid::{Cell, ChipDims, Grid, Rect};

/// Example 1: droplet δ = (3, 2, 7, 5) geometry and actuation matrix.
#[test]
fn example_1_droplet_model() {
    let delta = Rect::new(3, 2, 7, 5);
    assert_eq!(delta.width(), 5);
    assert_eq!(delta.height(), 4);
    assert_eq!(delta.area(), 20);
    assert!((delta.aspect_ratio() - 1.25).abs() < 1e-12);

    // U_ij = 1 exactly on [[3,7]] × [[2,5]].
    let dims = ChipDims::new(10, 8);
    let mut u = Grid::new(dims, false);
    u.fill_rect(delta, true);
    for cell in dims.cells() {
        assert_eq!(u[cell], delta.contains_cell(cell), "at {cell}");
    }
    assert_eq!(u.count_set(), 20);
}

/// Example 2: frontier sets of a_NE on δ = (3, 2, 7, 5).
#[test]
fn example_2_frontier_sets() {
    let delta = Rect::new(3, 2, 7, 5);
    let a = Action::MoveOrdinal(Ordinal::NE);
    assert_eq!(
        frontier_set(delta, a, Dir::E),
        Some(Rect::new(8, 3, 8, 6)),
        "Fr(δ; a_NE, E) = [[8,8]] × [[3,6]]"
    );
    assert_eq!(
        frontier_set(delta, a, Dir::N),
        Some(Rect::new(4, 6, 8, 6)),
        "Fr(δ; a_NE, N) = [[4,8]] × [[6,6]]"
    );
}

/// Example 3: transition probabilities under the given degradation values.
#[test]
fn example_3_transition_probabilities() {
    let dims = ChipDims::new(12, 8);
    let mut f = Grid::new(dims, 1.0);
    for (i, v) in [0.6, 0.5, 0.8, 0.9].iter().enumerate() {
        f[Cell::new(8, 3 + i as i32)] = *v;
    }
    for (i, v) in [0.9, 0.4, 0.9, 0.7, 0.9].iter().enumerate() {
        f[Cell::new(4 + i as i32, 6)] = *v;
    }
    let field = RawField::new(f);
    let delta = Rect::new(3, 2, 7, 5);
    let out = transitions(delta, Action::MoveOrdinal(Ordinal::NE), &field);
    let p = |r: Rect| {
        out.iter()
            .find(|o| o.droplet == r)
            .map_or(0.0, |o| o.probability)
    };
    assert!((p(delta.translate(1, 1)) - 0.532).abs() < 1e-9, "p(NE)");
    // Example 3 reports the one-axis residuals {0.168, 0.228}.
    let mut residuals = [p(delta.translate(0, 1)), p(delta.translate(1, 0))];
    residuals.sort_by(f64::total_cmp);
    assert!((residuals[0] - 0.168).abs() < 1e-9);
    assert!((residuals[1] - 0.228).abs() < 1e-9);
}

/// Example 4: the Fig. 12 sequence graph and its center locations.
#[test]
fn example_4_sequence_graph() {
    let mut sg = SequencingGraph::new("fig12");
    let m1 = sg.dispense((17.5, 2.5), (4, 4));
    let m2 = sg.dispense((17.5, 28.5), (4, 4));
    let m3 = sg.mix(&[m1, m2], (10.5, 15.5));
    let m4 = sg.magnetic(m3, (40.5, 15.5));
    assert!(sg.validate().is_ok());

    // M1's 4×4 droplet (16, 1, 19, 4) has center (17.5, 2.5).
    let plan = RjHelper::new(ChipDims::PAPER).plan(&sg).unwrap();
    let d1 = plan.operations()[m1].outputs[0];
    assert_eq!(d1, Rect::new(16, 1, 19, 4));
    assert_eq!(d1.center(), (17.5, 2.5));
    assert_eq!(plan.operations()[m4].op.inputs(), 1);
}

/// Example 5 / Table IV: the complete RJ decomposition.
#[test]
fn example_5_rj_helper_table_iv() {
    let mut sg = SequencingGraph::new("table-iv");
    let m1 = sg.dispense((17.5, 2.5), (4, 4));
    let m2 = sg.dispense((17.5, 28.5), (4, 4));
    let m3 = sg.mix(&[m1, m2], (10.5, 15.5));
    let m4 = sg.magnetic(m3, (40.5, 15.5));
    let plan = RjHelper::new(ChipDims::PAPER).plan(&sg).unwrap();

    let expect = [
        (
            m1,
            0,
            Rect::off_chip_origin(),
            Rect::new(16, 1, 19, 4),
            Rect::new(13, 1, 22, 7),
        ),
        (
            m2,
            0,
            Rect::off_chip_origin(),
            Rect::new(16, 27, 19, 30),
            Rect::new(13, 24, 22, 30),
        ),
        (
            m3,
            0,
            Rect::new(16, 1, 19, 4),
            Rect::new(9, 14, 12, 17),
            Rect::new(6, 1, 22, 20),
        ),
        (
            m3,
            1,
            Rect::new(16, 27, 19, 30),
            Rect::new(9, 14, 12, 17),
            Rect::new(6, 11, 22, 30),
        ),
        (
            m4,
            0,
            Rect::new(8, 14, 13, 18),
            Rect::new(38, 14, 43, 18),
            Rect::new(5, 11, 46, 21),
        ),
    ];
    for (mo, j, start, goal, bounds) in expect {
        let job = plan.jobs_for(mo)[j];
        assert_eq!(job.start, start, "RJ{}.{j} start", mo + 1);
        assert_eq!(job.goal, goal, "RJ{}.{j} goal", mo + 1);
        assert_eq!(job.bounds, bounds, "RJ{}.{j} bounds", mo + 1);
    }
    // The mix output is the 6×5 (area 32, 6.3% error) pattern of Table IV.
    assert_eq!(plan.operations()[m3].outputs[0], Rect::new(8, 14, 13, 18));
}

/// The paper's guard example: r = 3/2 on δ = (3, 2, 7, 5) enables a_↑ and
/// disables a_↓.
#[test]
fn guard_example_from_section_v() {
    let delta = Rect::new(3, 2, 7, 5);
    let config = meda::core::ActionConfig {
        aspect_ratio_max: 1.5,
        ..meda::core::ActionConfig::default()
    };
    let roomy = Rect::new(-20, -20, 30, 30);
    for o in Ordinal::ALL {
        assert!(
            Action::Heighten(o).is_enabled(delta, roomy, &config),
            "g_↑ = 1"
        );
        assert!(
            !Action::Widen(o).is_enabled(delta, roomy, &config),
            "g_↓ = 0"
        );
    }
}
