//! Property-based tests for droplet sizing, hazard zones, and the RJ
//! helper's structural invariants.

use meda_bioassay::{fit_droplet_size, zone, MoType, RjHelper, SequencingGraph};
use meda_grid::{ChipDims, Rect};
use proptest::prelude::*;

fn arb_on_chip_rect(dims: ChipDims) -> impl Strategy<Value = Rect> {
    let (w, h) = (dims.width as i32, dims.height as i32);
    (1..=w, 1..=h, 0i32..6, 0i32..6).prop_filter_map(
        "rect fits on chip",
        move |(xa, ya, dw, dh)| {
            let r = Rect::new(xa, ya, xa + dw, ya + dh);
            dims.contains_rect(r).then_some(r)
        },
    )
}

proptest! {
    #[test]
    fn droplet_sizing_is_near_square_and_optimal(area in 1u32..500) {
        let (w, h, err) = fit_droplet_size(area);
        prop_assert!(w.abs_diff(h) <= 1);
        prop_assert!((err - f64::from((w * h).abs_diff(area)) / f64::from(area)).abs() < 1e-12);
        // No candidate of the same constraint class does better.
        let side = (area as f64).sqrt().ceil() as u32 + 1;
        for cw in 1..=side {
            for ch in cw.saturating_sub(1)..=cw + 1 {
                if ch == 0 || cw.abs_diff(ch) > 1 {
                    continue;
                }
                prop_assert!((cw * ch).abs_diff(area) >= (w * h).abs_diff(area));
            }
        }
    }

    #[test]
    fn zone_contains_margined_endpoints_clipped_to_chip(
        s in arb_on_chip_rect(ChipDims::PAPER), g in arb_on_chip_rect(ChipDims::PAPER)
    ) {
        let dims = ChipDims::PAPER;
        let z = zone(s, g, dims);
        prop_assert!(dims.contains_rect(z));
        prop_assert!(z.contains_rect(s));
        prop_assert!(z.contains_rect(g));
        // The 3-cell margin is honoured wherever the chip allows it.
        let ideal = s.union(g).expand(3);
        prop_assert_eq!(z, ideal.intersection(dims.bounds()).unwrap());
    }

    /// For any two-dispense-mix-route chain placed randomly (but legally),
    /// the plan obeys the structural rules of Algorithm 1.
    #[test]
    fn random_mix_chains_plan_consistently(
        x1 in 6.0f64..25.0, x2 in 30.0f64..54.0, y in 6.0f64..24.0, mix_x in 10.0f64..50.0
    ) {
        let dims = ChipDims::PAPER;
        let mut sg = SequencingGraph::new("prop");
        let a = sg.dispense((x1, 5.5), (4, 4));
        let b = sg.dispense((x2, 5.5), (4, 4));
        let m = sg.mix(&[a, b], (mix_x, y));
        sg.magnetic(m, (mix_x, y));

        let plan = RjHelper::new(dims).plan(&sg).unwrap();
        for planned in plan.operations() {
            // Table III arities.
            prop_assert_eq!(planned.inputs.len(), planned.op.inputs());
            prop_assert_eq!(planned.outputs.len(), planned.op.outputs());
            for job in &planned.jobs {
                prop_assert!(job.bounds.contains_rect(job.goal));
                prop_assert!(
                    job.start.is_off_chip_origin() || job.bounds.contains_rect(job.start)
                );
                prop_assert!(dims.contains_rect(job.goal));
            }
            for output in &planned.outputs {
                prop_assert!(dims.contains_rect(*output));
            }
        }
        // Mix conserves area up to the |w−h| ≤ 1 refit.
        let mix_out = plan.operations()[m].outputs[0];
        let (w, h, _) = fit_droplet_size(32);
        prop_assert_eq!((mix_out.width(), mix_out.height()), (w, h));
    }

    /// Splitting then re-mixing halves conserves the refit area.
    #[test]
    fn split_halves_cover_the_input_area(size in 4u32..8) {
        let dims = ChipDims::PAPER;
        let mut sg = SequencingGraph::new("prop-split");
        let a = sg.dispense((15.5, 15.5), (size, size));
        let s = sg.split(a, (30.5, 9.5), (30.5, 21.5));
        sg.discard(s, (55.5, 9.5));
        sg.discard(s, (55.5, 21.5));
        let plan = RjHelper::new(dims).plan(&sg).unwrap();
        let (hw, hh, _) = fit_droplet_size(size * size / 2);
        for out in &plan.operations()[s].outputs {
            prop_assert_eq!((out.width(), out.height()), (hw, hh));
        }
    }

    #[test]
    fn mo_arity_table_is_internally_consistent(op_idx in 0usize..7) {
        let op = [
            MoType::Dispense, MoType::Output, MoType::Discard, MoType::Mix,
            MoType::Split, MoType::Dilute, MoType::Magnetic,
        ][op_idx];
        // Droplet conservation: at most two droplets in or out, and
        // locations cover the outputs that need distinct placement.
        prop_assert!(op.inputs() <= 2 && op.outputs() <= 2);
        prop_assert!(op.locations() >= 1);
        prop_assert!(op.locations() <= op.outputs().max(1));
    }
}
