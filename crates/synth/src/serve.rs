//! The synthesis-service engine behind `meda serve` (DESIGN.md §16).
//!
//! Requests are newline-delimited JSON routing jobs; each is canonicalized
//! ([`crate::canonicalize`]), answered from the persistent
//! content-addressed cache when possible, and synthesized (in canonical
//! frame, then persisted) otherwise. Because the **cold path also solves
//! the canonical frame**, a cold response and a later warm response for
//! the same orbit carry bit-identical values — the two-run byte-identity
//! the `serve-smoke` CI stage asserts.
//!
//! Responses carry no hit/miss provenance; cache statistics go to the
//! caller via [`BatchOutcome::stats`] (the CLI prints them to stderr), so
//! stdout is a pure function of the request stream.
//!
//! [`run_batch`] is the deterministic replay path: requests are answered
//! in input order, sharded across a `std::thread::scope` worker pool by
//! canonical digest (so every repeat of an orbit lands on the worker that
//! already holds it in its memory tier). [`run_stream`] drives the same
//! engine over an interactive line stream; `drift` requests re-synthesize
//! asynchronously with respect to the submitting client — they are just
//! work items for the pool.

use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::mpsc;
use std::thread;

use meda_core::{ActionConfig, HazardBox, RawField};
use meda_grid::{ChipDims, Grid, Rect};
use meda_telemetry::Json;

use crate::cache::{CacheStats, PersistentCache};
use crate::canonical::{canonicalize, CanonicalJob, JobTransform};
use crate::Query;

/// Operation requested by one serve line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOp {
    /// Synthesize-or-fetch a strategy and return value + nominal path.
    Route,
    /// Health drift: pre-warm the cache for the new force patch. The
    /// response acknowledges; the synthesized strategy stays cached.
    Drift,
}

/// One parsed serve request.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The requested operation.
    pub op: ServeOp,
    /// Hazard bounds of the routing job.
    pub bounds: Rect,
    /// Start droplet.
    pub start: Rect,
    /// Goal region.
    pub goal: Rect,
    /// Effective force per bounds cell, row-major (length `w·h`).
    pub forces: Vec<f64>,
    /// Hazard boxes (absolute coordinates; may cross the bounds).
    pub hazards: Vec<HazardBox>,
    /// Action configuration.
    pub config: ActionConfig,
    /// Synthesis query.
    pub query: Query,
}

/// A request that already went through canonicalization — the unit of
/// work the pool shards by canonical digest.
struct Prepared {
    index: usize,
    request: ServeRequest,
    job: CanonicalJob,
    transform: JobTransform,
}

fn parse_rect_arr(j: &Json) -> Result<Rect, String> {
    let a = j.as_arr().ok_or("expected [xa,ya,xb,yb]")?;
    if a.len() != 4 {
        return Err(format!("rect needs 4 coords, got {}", a.len()));
    }
    let mut c = [0i32; 4];
    for (i, v) in a.iter().enumerate() {
        c[i] = v.as_f64().ok_or("rect coord not a number")? as i32;
    }
    Rect::try_new(c[0], c[1], c[2], c[3]).map_err(|e| format!("bad rect: {e:?}"))
}

/// Parses one newline-delimited request document.
///
/// Schema: `{"id": str, "op": "route"|"drift", "bounds": [xa,ya,xb,yb],
/// "start": [...], "goal": [...], "force": f | "cells": [f,...],
/// "hazards": [[xa,ya,xb,yb,factor],...], "query": "rmin"|"pmax",
/// "config": {"aspect_ratio_max": f, "double_step": b, "ordinal": b,
/// "morphing": b}}` — `hazards`, `query`, `config`, and `op` optional.
///
/// # Errors
///
/// Returns a human-readable reason for malformed requests.
pub fn parse_request(line: &str) -> Result<ServeRequest, String> {
    let doc = Json::parse(line)?;
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .ok_or("missing string field id")?
        .to_string();
    let op = match doc.get("op").and_then(Json::as_str) {
        None | Some("route") => ServeOp::Route,
        Some("drift") => ServeOp::Drift,
        Some(other) => return Err(format!("unknown op {other:?}")),
    };
    let bounds = parse_rect_arr(doc.get("bounds").ok_or("missing bounds")?)?;
    let start = parse_rect_arr(doc.get("start").ok_or("missing start")?)?;
    let goal = parse_rect_arr(doc.get("goal").ok_or("missing goal")?)?;
    if bounds.xa < 1 || bounds.ya < 1 {
        return Err("bounds must lie in chip coordinates (xa, ya ≥ 1)".into());
    }
    if !bounds.contains_rect(start) || !bounds.contains_rect(goal) {
        return Err("start and goal must lie within bounds".into());
    }
    let cell_count = bounds.width() as usize * bounds.height() as usize;
    let forces = if let Some(cells) = doc.get("cells") {
        let arr = cells.as_arr().ok_or("cells not an array")?;
        if arr.len() != cell_count {
            return Err(format!(
                "cells has {} entries, bounds {}x{} needs {}",
                arr.len(),
                bounds.width(),
                bounds.height(),
                cell_count
            ));
        }
        arr.iter()
            .map(|j| {
                let f = j.as_f64().ok_or("cell force not a number")?;
                if (0.0..=1.0).contains(&f) {
                    Ok(f)
                } else {
                    Err(format!("cell force {f} outside [0, 1]"))
                }
            })
            .collect::<Result<Vec<_>, String>>()?
    } else {
        let f = doc
            .get("force")
            .and_then(Json::as_f64)
            .ok_or("missing force (uniform) or cells (per-cell)")?;
        if !(0.0..=1.0).contains(&f) {
            return Err(format!("force {f} outside [0, 1]"));
        }
        vec![f; cell_count]
    };
    let hazards = match doc.get("hazards") {
        None => Vec::new(),
        Some(h) => h
            .as_arr()
            .ok_or("hazards not an array")?
            .iter()
            .map(|j| {
                let a = j.as_arr().ok_or("hazard not an array")?;
                if a.len() != 5 {
                    return Err(format!("hazard needs 5 fields, got {}", a.len()));
                }
                let mut c = [0i32; 4];
                for (i, v) in a.iter().take(4).enumerate() {
                    c[i] = v.as_f64().ok_or("hazard coord not a number")? as i32;
                }
                let factor = a[4].as_f64().ok_or("hazard factor not a number")?;
                if !(0.0..=1.0).contains(&factor) {
                    return Err(format!("hazard factor {factor} outside [0, 1]"));
                }
                Ok(HazardBox {
                    rect: Rect::try_new(c[0], c[1], c[2], c[3])
                        .map_err(|e| format!("bad hazard rect: {e:?}"))?,
                    factor,
                })
            })
            .collect::<Result<Vec<_>, String>>()?,
    };
    let query = match doc.get("query").and_then(Json::as_str) {
        None | Some("rmin") => Query::MinExpectedCycles,
        Some("pmax") => Query::MaxReachProbability,
        Some(other) => return Err(format!("unknown query {other:?}")),
    };
    let config = match doc.get("config") {
        None => ActionConfig::default(),
        Some(c) => ActionConfig {
            aspect_ratio_max: c
                .get("aspect_ratio_max")
                .and_then(Json::as_f64)
                .unwrap_or(ActionConfig::default().aspect_ratio_max),
            double_step: !matches!(c.get("double_step"), Some(Json::Bool(false))),
            ordinal: !matches!(c.get("ordinal"), Some(Json::Bool(false))),
            morphing: !matches!(c.get("morphing"), Some(Json::Bool(false))),
        },
    };
    Ok(ServeRequest {
        id,
        op,
        bounds,
        start,
        goal,
        forces,
        hazards,
        config,
        query,
    })
}

fn canonicalize_request(request: ServeRequest, index: usize) -> Prepared {
    // The request's forces are row-major over its bounds; lift them into a
    // chip-sized grid so the canonicalizer can read them as a field.
    let dims = ChipDims::new(request.bounds.xb as u32, request.bounds.yb as u32);
    let bounds = request.bounds;
    let w = bounds.width() as usize;
    let grid = Grid::from_fn(dims, |cell| {
        if bounds.contains_cell(cell) {
            let u = (cell.x - bounds.xa) as usize;
            let v = (cell.y - bounds.ya) as usize;
            request.forces.get(v * w + u).copied().unwrap_or(0.0)
        } else {
            0.0
        }
    });
    let field = RawField::new(grid);
    let (job, transform) = canonicalize(
        request.start,
        request.goal,
        request.bounds,
        &field,
        &request.hazards,
        &request.config,
        request.query,
    );
    Prepared {
        index,
        request,
        job,
        transform,
    }
}

fn error_response(id: &str, reason: &str) -> String {
    Json::Obj(vec![
        ("id".into(), Json::str(id)),
        ("status".into(), Json::str("error")),
        ("error".into(), Json::str(reason)),
    ])
    .to_string()
}

/// Resolves one prepared request against a cache: hit in O(lookup),
/// synthesis on miss (canonical frame, persisted for the next caller).
fn resolve(cache: &mut PersistentCache, p: &Prepared) -> String {
    let strategy = match cache.get(&p.job) {
        Some(s) => s,
        None => match p.job.synthesize() {
            Some(s) => match cache.insert(&p.job, s) {
                Ok(arc) => arc,
                Err(e) => return error_response(&p.request.id, &format!("cache write: {e}")),
            },
            None => {
                return Json::Obj(vec![
                    ("id".into(), Json::str(&p.request.id)),
                    ("status".into(), Json::str("infeasible")),
                ])
                .to_string()
            }
        },
    };
    if p.request.op == ServeOp::Drift {
        return Json::Obj(vec![
            ("id".into(), Json::str(&p.request.id)),
            ("status".into(), Json::str("ok")),
            ("op".into(), Json::str("drift")),
            ("prewarmed".into(), Json::Bool(true)),
        ])
        .to_string();
    }
    // Map the canonical-frame answer back to the request frame.
    let canon_path = strategy.nominal_path();
    let mut path = Vec::with_capacity(canon_path.len());
    let mut actions = Vec::new();
    for (i, rc) in canon_path.iter().enumerate() {
        let r = p.transform.from_canonical_rect(*rc);
        path.push(Json::Arr(vec![
            Json::num(r.xa),
            Json::num(r.ya),
            Json::num(r.xb),
            Json::num(r.yb),
        ]));
        if i + 1 < canon_path.len() {
            if let Some(a) = strategy.decide(*rc) {
                actions.push(Json::str(p.transform.from_canonical_action(a).to_string()));
            }
        }
    }
    let value = strategy.value_at_init();
    let query_tag = match strategy.query() {
        Query::MaxReachProbability => "pmax",
        Query::MinExpectedCycles => "rmin",
    };
    Json::Obj(vec![
        ("id".into(), Json::str(&p.request.id)),
        ("status".into(), Json::str("ok")),
        ("query".into(), Json::str(query_tag)),
        (
            "value_bits".into(),
            Json::str(format!("{:016x}", value.to_bits())),
        ),
        (
            "value".into(),
            if value.is_finite() {
                Json::Num(value)
            } else {
                Json::Null
            },
        ),
        ("path".into(), Json::Arr(path)),
        ("actions".into(), Json::Arr(actions)),
    ])
    .to_string()
}

/// A single-threaded serve engine over one persistent cache — the unit a
/// worker owns, and the driver `bench_serve` times.
pub struct ServeEngine {
    cache: PersistentCache,
}

impl ServeEngine {
    /// Opens the engine over a cache directory.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn open(cache_dir: impl Into<std::path::PathBuf>, capacity: usize) -> io::Result<Self> {
        Ok(Self {
            cache: PersistentCache::open(cache_dir, capacity)?,
        })
    }

    /// Handles one request line, returning one response line.
    pub fn handle(&mut self, line: &str) -> String {
        match parse_request(line) {
            Ok(request) => {
                let prepared = canonicalize_request(request, 0);
                resolve(&mut self.cache, &prepared)
            }
            Err(reason) => error_response("", &format!("parse: {reason}")),
        }
    }

    /// The cache counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Validates every on-disk entry; see
    /// [`PersistentCache::validate_all`].
    ///
    /// # Errors
    ///
    /// Returns the `(path, reason)` failure list.
    pub fn validate_cache(&self) -> Result<usize, Vec<(std::path::PathBuf, String)>> {
        self.cache.validate_all()
    }
}

/// The outcome of a batch run: responses in request order plus the merged
/// cache statistics of all workers.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One response line per request line, in input order.
    pub responses: Vec<String>,
    /// Merged worker cache statistics.
    pub stats: CacheStats,
}

fn merge(into: &mut CacheStats, s: CacheStats) {
    into.mem_hits += s.mem_hits;
    into.disk_hits += s.disk_hits;
    into.misses += s.misses;
    into.rejected += s.rejected;
    into.inserts += s.inserts;
}

/// Deterministic batch replay: every input line is answered, in order,
/// sharded by canonical digest across `workers` scoped threads (each with
/// its own view of the shared cache directory — shards are disjoint by
/// construction, so no two workers touch the same entry file).
///
/// # Errors
///
/// Propagates cache-directory creation failures; malformed requests
/// produce `status: "error"` responses instead of failing the batch.
pub fn run_batch(
    lines: &[String],
    cache_dir: &Path,
    capacity: usize,
    workers: usize,
) -> io::Result<BatchOutcome> {
    let mut responses: Vec<Option<String>> = vec![None; lines.len()];
    let mut prepared = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            responses[i] = Some(String::new());
            continue;
        }
        match parse_request(line) {
            Ok(req) => prepared.push(canonicalize_request(req, i)),
            Err(reason) => responses[i] = Some(error_response("", &format!("parse: {reason}"))),
        }
    }
    let workers = workers.max(1);
    let mut stats = CacheStats::default();
    if workers == 1 || prepared.len() <= 1 {
        let mut cache = PersistentCache::open(cache_dir, capacity)?;
        for p in &prepared {
            responses[p.index] = Some(resolve(&mut cache, p));
        }
        merge(&mut stats, cache.stats());
    } else {
        // Disjoint shards by canonical digest: an orbit always lands on
        // the same worker, so repeats hit that worker's memory tier.
        let mut shards: Vec<Vec<Prepared>> = Vec::new();
        shards.resize_with(workers, Vec::new);
        for p in prepared {
            let w = (p.job.digest() % workers as u64) as usize;
            shards[w].push(p);
        }
        let (tx, rx) = mpsc::channel::<(usize, String)>();
        let (stx, srx) = mpsc::channel::<io::Result<CacheStats>>();
        thread::scope(|scope| {
            for shard in &shards {
                let tx = tx.clone();
                let stx = stx.clone();
                scope.spawn(move || {
                    let mut cache = match PersistentCache::open(cache_dir, capacity) {
                        Ok(c) => c,
                        Err(e) => {
                            let _ = stx.send(Err(e));
                            return;
                        }
                    };
                    for p in shard {
                        let _ = tx.send((p.index, resolve(&mut cache, p)));
                    }
                    let _ = stx.send(Ok(cache.stats()));
                });
            }
        });
        drop(tx);
        drop(stx);
        for (index, response) in rx {
            responses[index] = Some(response);
        }
        for s in srx {
            merge(&mut stats, s?);
        }
    }
    Ok(BatchOutcome {
        responses: responses
            .into_iter()
            .map(|r| r.unwrap_or_default())
            .collect(),
        stats,
    })
}

/// Long-running line-stream front end: reads newline-delimited requests
/// from `input` until EOF, writes one response line per request to
/// `output` (flushed per line, so interactive clients see answers
/// immediately). Single engine, in-order — the worker pool applies to
/// [`run_batch`], where the full request set is known up front.
///
/// # Errors
///
/// Propagates I/O errors from the transport and cache-directory creation.
pub fn run_stream(
    input: impl BufRead,
    mut output: impl Write,
    cache_dir: &Path,
    capacity: usize,
) -> io::Result<CacheStats> {
    let mut engine = ServeEngine::open(cache_dir, capacity)?;
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = engine.handle(&line);
        writeln!(output, "{response}")?;
        output.flush()?;
    }
    Ok(engine.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::path::Path::new("target")
            .join("test-serve")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn request(id: &str, dx: i32, dy: i32) -> String {
        format!(
            r#"{{"id":"{id}","bounds":[{},{},{},{}],"start":[{},{},{},{}],"goal":[{},{},{},{}],"force":0.9}}"#,
            1 + dx,
            1 + dy,
            8 + dx,
            6 + dy,
            1 + dx,
            1 + dy,
            2 + dx,
            2 + dy,
            7 + dx,
            5 + dy,
            8 + dx,
            6 + dy,
        )
    }

    #[test]
    fn translated_requests_share_one_cache_entry() {
        let dir = temp_dir("translated");
        let lines = vec![request("a", 0, 0), request("b", 5, 3), request("c", 11, 2)];
        let out = run_batch(&lines, &dir, 8, 1).expect("batch");
        assert_eq!(out.stats.inserts, 1, "one canonical orbit, one entry");
        assert_eq!(out.stats.hits(), 2, "translations are cache hits");
        // All three answers carry the same optimal value bits.
        let bits: Vec<&str> = out
            .responses
            .iter()
            .map(|r| {
                Json::parse(r)
                    .ok()
                    .and_then(|d| {
                        d.get("value_bits")
                            .and_then(|v| v.as_str().map(String::from))
                    })
                    .map(|s| Box::leak(s.into_boxed_str()) as &str)
                    .expect("value_bits")
            })
            .collect();
        assert_eq!(bits[0], bits[1]);
        assert_eq!(bits[1], bits[2]);
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let dir = temp_dir("determinism");
        let lines = vec![request("a", 0, 0), request("b", 4, 1), request("a2", 0, 0)];
        let cold = run_batch(&lines, &dir, 8, 1).expect("cold");
        let warm = run_batch(&lines, &dir, 8, 1).expect("warm");
        assert_eq!(cold.responses, warm.responses);
        assert!(warm.stats.hits() >= 3, "second run fully warm");
        assert_eq!(warm.stats.inserts, 0);
    }

    #[test]
    fn worker_pool_matches_single_thread_responses() {
        let dir_a = temp_dir("pool-a");
        let dir_b = temp_dir("pool-b");
        let mut lines = Vec::new();
        for i in 0..6 {
            lines.push(request(&format!("r{i}"), i % 3, (i * 2) % 5));
        }
        let single = run_batch(&lines, &dir_a, 8, 1).expect("single");
        let pooled = run_batch(&lines, &dir_b, 8, 4).expect("pooled");
        assert_eq!(single.responses, pooled.responses);
    }

    #[test]
    fn malformed_and_infeasible_requests_are_reported() {
        let dir = temp_dir("errors");
        let lines = vec![
            "not json".to_string(),
            // Start walled off from the goal by zero-force cells.
            r#"{"id":"z","bounds":[1,1,3,1],"start":[1,1,1,1],"goal":[3,1,3,1],"cells":[0.9,0.0,0.9],"config":{"double_step":false,"ordinal":false,"morphing":false}}"#
                .to_string(),
        ];
        let out = run_batch(&lines, &dir, 8, 1).expect("batch");
        assert!(out.responses[0].contains("\"error\""));
        assert!(out.responses[1].contains("infeasible"));
    }

    #[test]
    fn drift_prewarms_the_cache_for_later_routes() {
        let dir = temp_dir("drift");
        let drift = request("d", 0, 0).replace("\"id\":\"d\"", "\"id\":\"d\",\"op\":\"drift\"");
        let out = run_batch(&[drift, request("r", 0, 0)], &dir, 8, 1).expect("batch");
        assert!(out.responses[0].contains("prewarmed"));
        assert_eq!(out.stats.hits(), 1, "route after drift is a hit");
    }

    #[test]
    fn stream_mode_answers_each_line() {
        let dir = temp_dir("stream");
        let input = format!("{}\n{}\n", request("s1", 0, 0), request("s2", 2, 2));
        let mut output = Vec::new();
        let stats = run_stream(input.as_bytes(), &mut output, &dir, 8).expect("stream");
        let text = String::from_utf8(output).expect("utf8");
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("\"status\":\"ok\"")));
        assert_eq!(stats.hits(), 1);
    }
}
