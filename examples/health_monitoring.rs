//! Health monitoring end to end: from the dual-DFF circuit reading of
//! Section III to the quantized health matrix the router consumes.
//!
//! Wears a small chip down, senses it through the operational-cycle model,
//! and prints the health map together with the underlying (hidden)
//! degradation levels.
//!
//! ```sh
//! cargo run --release --example health_monitoring
//! ```

use meda::cell::{CellParams, OperationalCycle};
use meda::degradation::DegradationParams;
use meda::grid::{Cell, ChipDims, Grid, Rect};
use meda::sim::{Biochip, DegradationConfig};
use meda_rng::SeedableRng;

fn main() {
    let dims = ChipDims::new(24, 10);
    let mut rng = meda_rng::StdRng::seed_from_u64(5);
    let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);

    // Stress a corridor the way a repeatedly-used droplet route would.
    let corridor = Rect::new(3, 4, 20, 7);
    let mut pattern = Grid::new(dims, false);
    pattern.fill_rect(corridor, true);
    for _ in 0..700 {
        chip.apply_actuation(&pattern);
    }

    // Per-MC circuit-level sensing (Fig. 2): map each MC's degradation to
    // a capacitance and read it through the dual-DFF circuit.
    let params = CellParams::paper();
    let cycle = OperationalCycle::new(dims, params);
    let caps = Grid::from_fn(dims, |c| {
        // Interpolate Table I: D = 1 → healthy capacitance, D = 0 → fully
        // degraded capacitance.
        let d = chip.degradation_at(c);
        params.cap_degraded - (params.cap_degraded - params.cap_healthy) * d
    });
    let report = cycle.run(&Grid::new(dims, false), &caps, &Grid::new(dims, false));

    println!("2-bit circuit readings (row 10 at top; corridor rows 4-7 are worn):");
    for y in (1..=dims.height as i32).rev() {
        let line: String = (1..=dims.width as i32)
            .map(|x| char::from_digit(u32::from(report.health[Cell::new(x, y)].bits()), 4).unwrap())
            .collect();
        println!("  {line}");
    }

    // The model-level health matrix the router sees (H = ⌊2^b·D⌋).
    let health = chip.health_field();
    println!("\nquantized health levels H (b = 2):");
    for y in (1..=dims.height as i32).rev() {
        let line: String = (1..=dims.width as i32)
            .map(|x| {
                char::from_digit(u32::from(health.health()[Cell::new(x, y)].level()), 4).unwrap()
            })
            .collect();
        println!("  {line}");
    }

    let sample = Cell::new(10, 5);
    println!(
        "\nMC {sample}: n = {} actuations, true D = {:.3}, observed H = {} \
         (estimate {:.2}), projected dead after {} total actuations",
        chip.actuation_count(sample),
        chip.degradation_at(sample),
        health.health()[sample].level(),
        health.health()[sample].as_degradation(2),
        DegradationParams::new(0.7, 350.0)
            .actuations_to_reach(0.25)
            .unwrap_or(u64::MAX),
    );
    println!(
        "\nscan-out stream per operational cycle: {} bits ({} location + {} health)",
        report.scan_bits,
        dims.cell_count(),
        2 * dims.cell_count()
    );
}
