//! Per-droplet corridor reservations for concurrent fleet routing.
//!
//! Each dispatched micro-operation reserves the corridor its droplets will
//! traverse — the hazard bounds `δ_h` of its routing jobs, expanded by the
//! fluidic interference ring. Peers see those reservations as
//! *time-expanded hazard boxes* ([`meda_core::HazardBox`]): the box covers
//! every cell the reserving droplet may occupy over its reservation
//! window, so synthesis steers around the whole corridor instead of
//! chasing the droplet's instantaneous position cycle by cycle. A shift in
//! the reservation set (dispatch, completion, stall escalation) changes
//! the hazard digest and re-patches affected strategies via the warm
//! prioritized re-solve.

use std::collections::BTreeMap;

use meda_core::{hazard_digest, HazardBox};
use meda_grid::Rect;

/// The fleet's live corridor-reservation table, keyed by micro-operation
/// id. Deterministic iteration (BTreeMap) keeps hazard-box order — and
/// therefore hazard digests — reproducible across runs.
#[derive(Debug, Clone, Default)]
pub struct CorridorReservations {
    entries: BTreeMap<usize, Vec<HazardBox>>,
}

impl CorridorReservations {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records (or replaces) the reservation of micro-operation `mo`.
    pub fn reserve(&mut self, mo: usize, boxes: Vec<HazardBox>) {
        self.entries.insert(mo, boxes);
    }

    /// Releases a completed or aborted micro-operation's corridor.
    pub fn release(&mut self, mo: usize) {
        self.entries.remove(&mo);
    }

    /// Drops every reservation.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of live reservations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no corridor is reserved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The hazard boxes a given micro-operation must route around: every
    /// reservation *except its own* (a droplet is not a hazard to itself
    /// or to its same-MO partners), in ascending MO-id order.
    #[must_use]
    pub fn boxes_excluding(&self, mo: usize) -> Vec<HazardBox> {
        self.entries
            .iter()
            .filter(|&(&id, _)| id != mo)
            .flat_map(|(_, boxes)| boxes.iter().copied())
            .collect()
    }

    /// Digest of the hazard boxes peers of `mo` present within `region` —
    /// zero when none intersect (see [`meda_core::hazard_digest`]).
    #[must_use]
    pub fn digest_excluding(&self, mo: usize, region: Rect) -> u64 {
        hazard_digest(&self.boxes_excluding(mo), region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soft(xa: i32, ya: i32, xb: i32, yb: i32) -> HazardBox {
        HazardBox::soft(Rect::new(xa, ya, xb, yb), 0.3)
    }

    #[test]
    fn reservations_exclude_the_owner() {
        let mut r = CorridorReservations::new();
        r.reserve(0, vec![soft(1, 1, 5, 5)]);
        r.reserve(2, vec![soft(10, 1, 15, 5), soft(10, 6, 15, 9)]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.boxes_excluding(0).len(), 2);
        assert_eq!(r.boxes_excluding(2).len(), 1);
        assert_eq!(r.boxes_excluding(7).len(), 3);
    }

    #[test]
    fn release_shifts_the_peer_digest() {
        let region = Rect::new(1, 1, 20, 10);
        let mut r = CorridorReservations::new();
        r.reserve(0, vec![soft(1, 1, 5, 5)]);
        r.reserve(1, vec![soft(8, 1, 12, 5)]);
        let before = r.digest_excluding(0, region);
        assert_ne!(before, 0);
        r.release(1);
        assert_eq!(r.digest_excluding(0, region), 0);
        assert!(r.boxes_excluding(0).is_empty());
    }

    #[test]
    fn iteration_order_is_mo_id_order() {
        let mut r = CorridorReservations::new();
        r.reserve(5, vec![soft(1, 1, 2, 2)]);
        r.reserve(1, vec![soft(3, 3, 4, 4)]);
        r.reserve(3, vec![soft(5, 5, 6, 6)]);
        let boxes = r.boxes_excluding(99);
        assert_eq!(boxes[0].rect, Rect::new(3, 3, 4, 4));
        assert_eq!(boxes[1].rect, Rect::new(5, 5, 6, 6));
        assert_eq!(boxes[2].rect, Rect::new(1, 1, 2, 2));
    }
}
