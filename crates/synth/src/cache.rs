//! Persistent, content-addressed strategy cache — the `meda-cache/1`
//! on-disk store behind `meda serve` and the adaptive router's warm path
//! (DESIGN.md §16).
//!
//! Each entry is one JSON file named by the canonical job's FNV digest
//! (`<16 hex>.json`), written with the in-tree [`meda_telemetry::Json`]
//! writer. The entry embeds the **full canonical job** (geometry, action
//! configuration, query, hazards, force patch) alongside the strategy, so
//! a load can re-derive the digest from first principles and rebuild the
//! exact MDP the strategy claims to solve.
//!
//! Floats are stored as 16-hex-digit IEEE-754 bit patterns, never as JSON
//! numbers: strategy values can be `∞` (`Json::num` degrades non-finite
//! values to `null`) and force/value bits must round-trip exactly for the
//! digest and the value-transparency oracle to hold.
//!
//! **Validation on load**: a cache entry is untrusted input. Before a
//! loaded strategy is used it must (1) re-encode to the digest it is filed
//! under and match the requesting job field-for-field, (2) rebuild its
//! MDP, and (3) pass the cheap `meda-audit` totality/closure pass
//! ([`meda_audit::audit_strategy`]) against that model. Corrupt or forged
//! entries are counted, rejected, and fall back to cold synthesis — a bad
//! cache can cost time, never correctness.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use meda_audit::{audit_strategy, ModelArtifact, ValueKind};
use meda_core::{Action, ActionConfig, HazardBox};
use meda_grid::Rect;
use meda_telemetry::{global, Json};

use crate::{CanonicalJob, Query, RoutingStrategy};

/// On-disk schema identifier of a cache entry.
pub const CACHE_SCHEMA: &str = "meda-cache/1";

/// Hit/miss/rejection counters of a [`PersistentCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Jobs answered from the in-memory LRU tier.
    pub mem_hits: u64,
    /// Jobs answered from disk (validated, then promoted to memory).
    pub disk_hits: u64,
    /// Jobs found in neither tier.
    pub misses: u64,
    /// Disk entries rejected by validation (corrupt, forged, or stale).
    pub rejected: u64,
    /// Strategies persisted via [`PersistentCache::insert`].
    pub inserts: u64,
}

impl CacheStats {
    /// Total hits across both tiers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

#[derive(Debug)]
struct MemEntry {
    strategy: Arc<RoutingStrategy>,
    tick: u64,
}

/// A persistent, content-addressed strategy cache with an LRU-bounded
/// in-memory tier over a `meda-cache/1` directory.
#[derive(Debug)]
pub struct PersistentCache {
    dir: PathBuf,
    capacity: usize,
    entries: BTreeMap<u64, MemEntry>,
    tick: u64,
    stats: CacheStats,
}

impl PersistentCache {
    /// Opens (creating if needed) a cache directory, keeping at most
    /// `capacity` strategies resident in memory.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, capacity: usize) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            capacity: capacity.max(1),
            entries: BTreeMap::new(),
            tick: 0,
            stats: CacheStats::default(),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of strategies resident in the memory tier.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// The counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn entry_path(&self, digest: u64) -> PathBuf {
        self.dir.join(format!("{digest:016x}.json"))
    }

    fn touch(&mut self, digest: u64) -> Option<Arc<RoutingStrategy>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&digest).map(|e| {
            e.tick = tick;
            Arc::clone(&e.strategy)
        })
    }

    fn admit(&mut self, digest: u64, strategy: Arc<RoutingStrategy>) {
        self.tick += 1;
        while self.entries.len() >= self.capacity && !self.entries.contains_key(&digest) {
            let coldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(d, _)| *d);
            match coldest {
                Some(d) => {
                    self.entries.remove(&d);
                }
                None => break,
            }
        }
        self.entries.insert(
            digest,
            MemEntry {
                strategy,
                tick: self.tick,
            },
        );
    }

    /// Looks up the strategy for a canonical job: memory tier first, then
    /// disk (validated before use and promoted on success). `None` is a
    /// miss — including the case where a disk entry existed but failed
    /// validation.
    pub fn get(&mut self, job: &CanonicalJob) -> Option<Arc<RoutingStrategy>> {
        let digest = job.digest();
        if let Some(hit) = self.touch(digest) {
            self.stats.mem_hits += 1;
            global().add("synth.cache.mem_hits", 1);
            return Some(hit);
        }
        let path = self.entry_path(digest);
        let start_ns = global().now_ns();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.stats.misses += 1;
                global().add("synth.cache.misses", 1);
                return None;
            }
        };
        global()
            .histogram("synth.cache.entry_bytes")
            .record(text.len() as u64);
        match rehydrate(&text, Some(job)) {
            Ok((strategy, _)) => {
                global()
                    .histogram("synth.cache.load_ns")
                    .record(global().now_ns().saturating_sub(start_ns));
                let arc = Arc::new(strategy);
                self.admit(digest, Arc::clone(&arc));
                self.stats.disk_hits += 1;
                global().add("synth.cache.disk_hits", 1);
                Some(arc)
            }
            Err(_) => {
                self.stats.rejected += 1;
                self.stats.misses += 1;
                global().add("synth.cache.rejected", 1);
                global().add("synth.cache.misses", 1);
                None
            }
        }
    }

    /// Persists a freshly synthesized strategy for `job` and admits it to
    /// the memory tier.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the entry write.
    pub fn insert(
        &mut self,
        job: &CanonicalJob,
        strategy: RoutingStrategy,
    ) -> io::Result<Arc<RoutingStrategy>> {
        let digest = job.digest();
        let text = serialize_entry(job, &strategy).to_string();
        let path = self.entry_path(digest);
        let tmp = self
            .dir
            .join(format!("{digest:016x}.tmp.{}", std::process::id()));
        fs::write(&tmp, &text)?;
        fs::rename(&tmp, &path)?;
        global()
            .histogram("synth.cache.entry_bytes")
            .record(text.len() as u64);
        self.stats.inserts += 1;
        global().add("synth.cache.inserts", 1);
        let arc = Arc::new(strategy);
        self.admit(digest, Arc::clone(&arc));
        Ok(arc)
    }

    /// Validates every entry file in the cache directory, returning the
    /// number of sound entries or the list of `(path, reason)` failures.
    /// Used by `meda serve --check-cache`.
    ///
    /// # Errors
    ///
    /// Returns the failure list if any entry is unreadable, unparsable,
    /// misfiled, or fails the audit pass.
    pub fn validate_all(&self) -> Result<usize, Vec<(PathBuf, String)>> {
        let mut ok = 0usize;
        let mut bad = Vec::new();
        let mut paths: Vec<PathBuf> = match fs::read_dir(&self.dir) {
            Ok(rd) => rd
                .filter_map(Result::ok)
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|x| x == "json"))
                .collect(),
            Err(e) => return Err(vec![(self.dir.clone(), format!("read_dir: {e}"))]),
        };
        paths.sort();
        for path in paths {
            let verdict = fs::read_to_string(&path)
                .map_err(|e| format!("read: {e}"))
                .and_then(|text| rehydrate(&text, None).map(|_| ()))
                .and_then(|()| {
                    // The file must be filed under its own digest.
                    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                    let text = fs::read_to_string(&path).map_err(|e| format!("read: {e}"))?;
                    let (_, job) = rehydrate(&text, None)?;
                    let actual = format!("{:016x}", job.digest());
                    if stem == actual {
                        Ok(())
                    } else {
                        Err(format!("misfiled: digest {actual} under name {stem}"))
                    }
                });
            match verdict {
                Ok(()) => ok += 1,
                Err(reason) => bad.push((path, reason)),
            }
        }
        if bad.is_empty() {
            Ok(ok)
        } else {
            Err(bad)
        }
    }
}

/// FNV-1a digest over the strategy body (choice indices and value bits) —
/// detects bit-rot and forged values, which the structural audit pass
/// cannot see (it validates choices against the model, not value bits).
fn strategy_digest(choice: &[Option<Action>], values: &[f64]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |word: u64| {
        hash ^= word;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for c in choice {
        mix(match c {
            None => u64::MAX,
            Some(a) => Action::ALL.iter().position(|b| b == a).unwrap_or(0) as u64,
        });
    }
    for v in values {
        mix(v.to_bits());
    }
    hash
}

fn hex_bits(f: f64) -> Json {
    Json::str(format!("{:016x}", f.to_bits()))
}

fn parse_hex_bits(j: &Json) -> Result<f64, String> {
    let s = j.as_str().ok_or("expected hex-bits string")?;
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad hex bits {s:?}: {e}"))
}

fn rect_json(r: Rect) -> Json {
    Json::Arr(vec![
        Json::num(r.xa),
        Json::num(r.ya),
        Json::num(r.xb),
        Json::num(r.yb),
    ])
}

fn parse_rect(j: &Json) -> Result<Rect, String> {
    let a = j.as_arr().ok_or("expected rect array")?;
    if a.len() != 4 {
        return Err(format!("rect needs 4 coords, got {}", a.len()));
    }
    let mut c = [0i32; 4];
    for (i, v) in a.iter().enumerate() {
        let f = v.as_f64().ok_or("rect coord not a number")?;
        c[i] = f as i32;
    }
    Rect::try_new(c[0], c[1], c[2], c[3]).map_err(|e| format!("bad rect: {e:?}"))
}

fn query_tag(q: Query) -> &'static str {
    match q {
        Query::MaxReachProbability => "pmax",
        Query::MinExpectedCycles => "rmin",
    }
}

fn parse_query(j: &Json) -> Result<Query, String> {
    match j.as_str() {
        Some("pmax") => Ok(Query::MaxReachProbability),
        Some("rmin") => Ok(Query::MinExpectedCycles),
        other => Err(format!("unknown query tag {other:?}")),
    }
}

/// Serializes a canonical job plus its synthesized strategy into one
/// `meda-cache/1` entry document.
fn serialize_entry(job: &CanonicalJob, strategy: &RoutingStrategy) -> Json {
    let body_choice: Vec<Option<Action>> = (0..strategy.mdp().len())
        .map(|i| strategy.decide(strategy.mdp().state(i)))
        .collect();
    let choice: Vec<Json> = body_choice
        .iter()
        .map(|c| match c {
            None => Json::Null,
            Some(a) => {
                let idx = Action::ALL.iter().position(|b| b == a).unwrap_or(0);
                Json::u64(idx as u64)
            }
        })
        .collect();
    let values: Vec<Json> = strategy.values().iter().map(|&v| hex_bits(v)).collect();
    Json::Obj(vec![
        ("schema".into(), Json::str(CACHE_SCHEMA)),
        ("digest".into(), Json::str(format!("{:016x}", job.digest()))),
        ("width".into(), Json::u64(u64::from(job.width))),
        ("height".into(), Json::u64(u64::from(job.height))),
        ("start".into(), rect_json(job.start)),
        ("goal".into(), rect_json(job.goal)),
        (
            "config".into(),
            Json::Obj(vec![
                (
                    "aspect_ratio_max".into(),
                    hex_bits(job.config.aspect_ratio_max),
                ),
                ("double_step".into(), Json::Bool(job.config.double_step)),
                ("ordinal".into(), Json::Bool(job.config.ordinal)),
                ("morphing".into(), Json::Bool(job.config.morphing)),
            ]),
        ),
        ("query".into(), Json::str(query_tag(job.query))),
        (
            "strategy_query".into(),
            Json::str(query_tag(strategy.query())),
        ),
        (
            "hazards".into(),
            Json::Arr(
                job.hazards
                    .iter()
                    .map(|b| {
                        Json::Arr(vec![
                            Json::num(b.rect.xa),
                            Json::num(b.rect.ya),
                            Json::num(b.rect.xb),
                            Json::num(b.rect.yb),
                            hex_bits(b.factor),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "forces".into(),
            Json::Arr(job.forces.iter().map(|&f| hex_bits(f)).collect()),
        ),
        ("choice".into(), Json::Arr(choice)),
        ("values".into(), Json::Arr(values)),
        (
            "strategy_digest".into(),
            Json::str(format!(
                "{:016x}",
                strategy_digest(&body_choice, strategy.values())
            )),
        ),
    ])
}

/// Parses and fully validates one entry document. When `expected` is given
/// (the requesting job), the embedded job must match it field-for-field;
/// either way the embedded job must re-encode to the digest the entry
/// claims, its MDP must rebuild, and the strategy must pass the
/// totality/closure audit against that model.
fn rehydrate(
    text: &str,
    expected: Option<&CanonicalJob>,
) -> Result<(RoutingStrategy, CanonicalJob), String> {
    let doc = Json::parse(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some(CACHE_SCHEMA) {
        return Err("bad or missing schema".into());
    }
    let field = |k: &str| doc.get(k).ok_or_else(|| format!("missing field {k}"));
    let width = field("width")?.as_f64().ok_or("width not a number")? as u32;
    let height = field("height")?.as_f64().ok_or("height not a number")? as u32;
    if width == 0 || height == 0 || width > 4096 || height > 4096 {
        return Err(format!("implausible dims {width}x{height}"));
    }
    let start = parse_rect(field("start")?)?;
    let goal = parse_rect(field("goal")?)?;
    let cfg = field("config")?;
    let config = ActionConfig {
        aspect_ratio_max: parse_hex_bits(cfg.get("aspect_ratio_max").ok_or("missing aspect")?)?,
        double_step: matches!(cfg.get("double_step"), Some(Json::Bool(true))),
        ordinal: matches!(cfg.get("ordinal"), Some(Json::Bool(true))),
        morphing: matches!(cfg.get("morphing"), Some(Json::Bool(true))),
    };
    let query = parse_query(field("query")?)?;
    let strategy_query = parse_query(field("strategy_query")?)?;
    let hazards = field("hazards")?
        .as_arr()
        .ok_or("hazards not an array")?
        .iter()
        .map(|j| {
            let a = j.as_arr().ok_or("hazard not an array")?;
            if a.len() != 5 {
                return Err(format!("hazard needs 5 fields, got {}", a.len()));
            }
            let mut c = [0i32; 4];
            for (i, v) in a.iter().take(4).enumerate() {
                c[i] = v.as_f64().ok_or("hazard coord not a number")? as i32;
            }
            Ok(HazardBox {
                rect: Rect::try_new(c[0], c[1], c[2], c[3])
                    .map_err(|e| format!("bad hazard rect: {e:?}"))?,
                factor: parse_hex_bits(&a[4])?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let forces = field("forces")?
        .as_arr()
        .ok_or("forces not an array")?
        .iter()
        .map(parse_hex_bits)
        .collect::<Result<Vec<_>, String>>()?;
    if forces.len() != width as usize * height as usize {
        return Err(format!(
            "force patch has {} cells, dims say {}",
            forces.len(),
            width as usize * height as usize
        ));
    }
    let job = CanonicalJob {
        width,
        height,
        start,
        goal,
        forces,
        hazards,
        config,
        query,
    };
    let claimed = doc.get("digest").and_then(Json::as_str).unwrap_or("");
    let actual = format!("{:016x}", job.digest());
    if claimed != actual {
        return Err(format!(
            "digest mismatch: claimed {claimed}, actual {actual}"
        ));
    }
    if let Some(want) = expected {
        if job != *want {
            return Err("entry does not match the requesting job".into());
        }
    }
    let mdp = job
        .build_mdp()
        .map_err(|e| format!("model rebuild failed: {e:?}"))?;
    let choice = field("choice")?
        .as_arr()
        .ok_or("choice not an array")?
        .iter()
        .map(|j| match j {
            Json::Null => Ok(None),
            _ => {
                let idx = j.as_f64().ok_or("choice not null or index")? as usize;
                Action::ALL
                    .get(idx)
                    .copied()
                    .map(Some)
                    .ok_or_else(|| format!("action index {idx} out of range"))
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let values = field("values")?
        .as_arr()
        .ok_or("values not an array")?
        .iter()
        .map(parse_hex_bits)
        .collect::<Result<Vec<_>, String>>()?;
    if choice.len() != mdp.len() || values.len() != mdp.len() {
        return Err(format!(
            "strategy length {}/{} vs {} states",
            choice.len(),
            values.len(),
            mdp.len()
        ));
    }
    let claimed_body = doc
        .get("strategy_digest")
        .and_then(Json::as_str)
        .unwrap_or("");
    let actual_body = format!("{:016x}", strategy_digest(&choice, &values));
    if claimed_body != actual_body {
        return Err(format!(
            "strategy digest mismatch: claimed {claimed_body}, actual {actual_body}"
        ));
    }
    let kind = match strategy_query {
        Query::MaxReachProbability => ValueKind::Reachability,
        Query::MinExpectedCycles => ValueKind::ExpectedCycles,
    };
    let violations = audit_strategy(&ModelArtifact::from(&mdp), &choice, &values, kind);
    if !violations.is_empty() {
        return Err(format!(
            "audit rejected entry: {} violation(s), first: {:?}",
            violations.len(),
            violations.first()
        ));
    }
    let strategy = RoutingStrategy::from_parts(mdp, choice, values, strategy_query)
        .ok_or("strategy reassembly failed")?;
    Ok((strategy, job))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canonicalize;
    use meda_core::UniformField;

    fn temp_cache(tag: &str) -> PersistentCache {
        let dir = std::path::Path::new("target")
            .join("test-cache")
            .join(format!("{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        PersistentCache::open(dir, 8).expect("open cache")
    }

    fn sample_job(force: f64) -> CanonicalJob {
        canonicalize(
            Rect::new(1, 1, 2, 2),
            Rect::new(6, 4, 7, 5),
            Rect::new(1, 1, 7, 5),
            &UniformField::new(force),
            &[],
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        )
        .0
    }

    #[test]
    fn round_trip_preserves_digest_values_and_choices() {
        let mut cache = temp_cache("round-trip");
        let job = sample_job(0.9);
        let strategy = job.synthesize().expect("synth");
        let values_before = strategy.values().to_vec();
        cache.insert(&job, strategy).expect("insert");

        // A fresh cache instance over the same directory must answer from
        // disk with bit-identical values.
        let mut warm = PersistentCache::open(cache.dir(), 8).expect("reopen");
        let loaded = warm.get(&job).expect("disk hit");
        assert_eq!(warm.stats().disk_hits, 1);
        assert_eq!(loaded.values().len(), values_before.len());
        for (a, b) in loaded.values().iter().zip(&values_before) {
            assert_eq!(a.to_bits(), b.to_bits(), "values must round-trip exactly");
        }
        // Second lookup hits the memory tier.
        let _ = warm.get(&job).expect("mem hit");
        assert_eq!(warm.stats().mem_hits, 1);
    }

    #[test]
    fn corrupt_entry_is_rejected_and_counted() {
        let mut cache = temp_cache("corrupt");
        let job = sample_job(0.9);
        let strategy = job.synthesize().expect("synth");
        cache.insert(&job, strategy).expect("insert");
        let path = cache.entry_path(job.digest());
        let mut text = fs::read_to_string(&path).expect("read");
        // Forge a value: flip one hex digit inside the values array.
        let idx = text.rfind("\"values\":").expect("values field");
        let tail = &text[idx..];
        let quote = idx + tail.find("\"3").unwrap_or(tail.find("\"4").unwrap_or(12)) + 1;
        let mut bytes = text.clone().into_bytes();
        bytes[quote] = if bytes[quote] == b'3' { b'4' } else { b'3' };
        text = String::from_utf8(bytes).expect("utf8");
        fs::write(&path, text).expect("rewrite");

        let mut warm = PersistentCache::open(cache.dir(), 8).expect("reopen");
        assert!(warm.get(&job).is_none(), "forged entry must not load");
        assert_eq!(warm.stats().rejected, 1);
        assert!(warm.validate_all().is_err(), "check-cache must flag it");
    }

    #[test]
    fn lru_bounds_the_memory_tier() {
        let dir = std::path::Path::new("target")
            .join("test-cache")
            .join(format!("lru-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut cache = PersistentCache::open(&dir, 2).expect("open");
        for force in [0.7, 0.8, 0.9] {
            let job = sample_job(force);
            let strategy = job.synthesize().expect("synth");
            cache.insert(&job, strategy).expect("insert");
        }
        assert_eq!(cache.resident(), 2, "LRU capacity respected");
        // Evicted entries are still on disk.
        let mut hits = 0;
        for force in [0.7, 0.8, 0.9] {
            if cache.get(&sample_job(force)).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 3, "all entries recoverable from disk");
    }

    #[test]
    fn validate_all_passes_on_sound_store() {
        let mut cache = temp_cache("validate");
        for force in [0.85, 0.95] {
            let job = sample_job(force);
            let strategy = job.synthesize().expect("synth");
            cache.insert(&job, strategy).expect("insert");
        }
        assert_eq!(cache.validate_all().expect("sound"), 2);
    }
}
