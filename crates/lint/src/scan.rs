//! Lexical preprocessing of Rust sources.
//!
//! The lint rules are deliberately lexical (DESIGN.md §6 rules out a real
//! parser dependency), but naive substring matching would trip over
//! comments, doc text, and string literals — including this crate's own
//! rule patterns. [`scan`] therefore *sanitizes* a source first: comment
//! and literal contents are blanked to spaces (newlines preserved, so line
//! numbers survive), and `#[cfg(test)]` / `#[test]` item spans are marked
//! so rules can exempt test code.

/// A sanitized source file: literal/comment-free text plus a per-line mask
/// of test-only code.
#[derive(Debug)]
pub struct ScannedFile {
    /// The source with comment and literal contents blanked to spaces.
    /// Same length in lines as the input.
    pub sanitized: String,
    /// `test_mask[line]` — whether 0-based `line` lies inside a
    /// `#[cfg(test)]` or `#[test]` item.
    pub test_mask: Vec<bool>,
}

impl ScannedFile {
    /// Iterates `(0-based line number, sanitized line, in_test)`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str, bool)> {
        self.sanitized
            .lines()
            .enumerate()
            .map(|(n, l)| (n, l, self.test_mask.get(n).copied().unwrap_or(false)))
    }
}

/// Sanitizes `source` and computes its test mask.
#[must_use]
pub fn scan(source: &str) -> ScannedFile {
    let sanitized = sanitize(source);
    let test_mask = mask_test_items(&sanitized);
    ScannedFile {
        sanitized,
        test_mask,
    }
}

/// Blanks comments, string/char literals, and raw strings to spaces while
/// preserving newlines (and therefore line/column positions).
fn sanitize(source: &str) -> String {
    let cs: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    let mut i = 0;
    while i < cs.len() {
        let c = cs[i];
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && cs.get(i + 1) == Some(&'/') {
            while i < cs.len() && cs[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == '/' && cs.get(i + 1) == Some(&'*') {
            let mut depth = 0;
            while i < cs.len() {
                if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(cs[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw-byte) string literal: r"…", r#"…"#, br#"…"#….
        if let Some(skip) = raw_string_len(&cs, i) {
            for k in 0..skip {
                out.push(blank(cs[i + k]));
            }
            i += skip;
            continue;
        }
        // Plain string or byte-string literal.
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < cs.len() {
                if cs[i] == '\\' && i + 1 < cs.len() {
                    out.push(' ');
                    out.push(blank(cs[i + 1]));
                    i += 2;
                } else if cs[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(cs[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs. lifetime: `'x'` and `'\n'` are literals;
        // `'a` followed by anything but a closing quote is a lifetime.
        if c == '\'' {
            let next = cs.get(i + 1);
            let is_literal = match next {
                Some('\\') => true,
                Some(_) => cs.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_literal {
                out.push(' ');
                i += 1;
                while i < cs.len() {
                    if cs[i] == '\\' && i + 1 < cs.len() {
                        out.push(' ');
                        out.push(blank(cs[i + 1]));
                        i += 2;
                    } else if cs[i] == '\'' {
                        out.push(' ');
                        i += 1;
                        break;
                    } else {
                        out.push(blank(cs[i]));
                        i += 1;
                    }
                }
                continue;
            }
        }
        out.push(c);
        i += 1;
    }
    out
}

/// If a raw-string literal starts at `cs[i]`, returns its total length.
fn raw_string_len(cs: &[char], i: usize) -> Option<usize> {
    // Must not be the tail of an identifier (`attr"x"` is not a prefix).
    if i > 0 && (cs[i - 1].is_alphanumeric() || cs[i - 1] == '_') {
        return None;
    }
    let mut j = i;
    if cs.get(j) == Some(&'b') {
        j += 1;
    }
    if cs.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while cs.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if cs.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    // Scan for the closing `"` followed by `hashes` hashes.
    while j < cs.len() {
        if cs[j] == '"' && cs[j + 1..].iter().take_while(|&&c| c == '#').count() >= hashes {
            return Some(j + 1 + hashes - i);
        }
        j += 1;
    }
    Some(cs.len() - i)
}

/// Marks the line spans of `#[cfg(test)]` and `#[test]` items by brace
/// matching on the sanitized text (safe: literals are already blanked).
///
/// An attributed item that ends in `;` before any `{` at nesting depth 0
/// (e.g. `#[cfg(test)] use …;`) is masked up to that semicolon.
fn mask_test_items(sanitized: &str) -> Vec<bool> {
    let cs: Vec<char> = sanitized.chars().collect();
    let lines = sanitized.lines().count();
    let mut mask = vec![false; lines];
    let mut line = 0;
    let mut i = 0;
    while i < cs.len() {
        if cs[i] == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if cs[i] == '#' && cs.get(i + 1) == Some(&'[') {
            let start_line = line;
            let (attr, after, after_line) = read_attribute(&cs, i, line);
            if attr.contains("cfg(test") || attr.trim() == "test" {
                let end_line = mark_item(&cs, after, after_line);
                let last = end_line.min(lines.saturating_sub(1));
                mask[start_line..=last].fill(true);
                line = end_line;
                i = advance_to_line(&cs, after, after_line, end_line);
                continue;
            }
            i = after;
            line = after_line;
            continue;
        }
        i += 1;
    }
    mask
}

/// Reads the bracketed attribute starting at `#`, returning its inner
/// text, the index just past `]`, and the line there.
fn read_attribute(cs: &[char], start: usize, mut line: usize) -> (String, usize, usize) {
    let mut i = start + 2;
    let mut depth = 1;
    let mut inner = String::new();
    while i < cs.len() && depth > 0 {
        match cs[i] {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    i += 1;
                    break;
                }
            }
            '\n' => line += 1,
            _ => {}
        }
        if depth > 0 {
            inner.push(cs[i]);
        }
        i += 1;
    }
    (inner, i, line)
}

/// From just past a test attribute, finds the end line of the item it
/// decorates: the matching `}` of its first depth-0 `{`, or a depth-0 `;`.
fn mark_item(cs: &[char], mut i: usize, mut line: usize) -> usize {
    let mut depth = 0_i64;
    // Paren/bracket nesting, so a `;` inside e.g. `[u8; 3]` in a signature
    // does not terminate the item early.
    let mut inner = 0_i64;
    let mut opened = false;
    while i < cs.len() {
        match cs[i] {
            '\n' => line += 1,
            '(' | '[' => inner += 1,
            ')' | ']' => inner -= 1,
            '{' => {
                depth += 1;
                opened = true;
            }
            '}' => {
                depth -= 1;
                if opened && depth == 0 {
                    return line;
                }
            }
            ';' if !opened && depth == 0 && inner == 0 => return line,
            _ => {}
        }
        i += 1;
    }
    line
}

/// Returns the char index of the first character on `target_line`,
/// starting the search at `i` / `line`.
fn advance_to_line(cs: &[char], mut i: usize, mut line: usize, target_line: usize) -> usize {
    while i < cs.len() && line < target_line {
        if cs[i] == '\n' {
            line += 1;
        }
        i += 1;
    }
    i
}
