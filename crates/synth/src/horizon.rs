//! Bounded-horizon reachability: `Pmax=? [ F≤k goal ]` — the analytic
//! counterpart of the paper's probability-of-success metric, which asks
//! whether a bioassay completes within a cycle budget `k_max` (Fig. 15).
//!
//! Finite-horizon value iteration computes, for every state and every
//! remaining budget `0..=k`, the maximal probability of reaching the goal
//! in at most that many cycles. Unlike the unbounded [`crate::max_reach_probability`]
//! (which is 1 whenever every frontier keeps positive force), the bounded
//! value is sensitive to *how degraded* the chip is — a droplet crawling
//! at success probability 0.2 per step may reach the goal almost surely
//! eventually, but rarely within budget.

use meda_core::{Action, RoutingMdp};

/// The bounded-horizon value table: `P[F≤b goal]` per state and budget.
#[derive(Debug, Clone)]
pub struct HorizonValues {
    /// `values[b][i]` = max probability of reaching the goal from state
    /// `i` within `b` cycles.
    values: Vec<Vec<f64>>,
    /// Optimal first action per state at each remaining budget.
    choice: Vec<Vec<Option<Action>>>,
}

impl HorizonValues {
    /// The maximal probability of reaching the goal from `state` within
    /// `budget` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `budget` is out of range.
    #[must_use]
    pub fn at(&self, state: usize, budget: usize) -> f64 {
        self.values[budget][state]
    }

    /// The horizon the table was computed to.
    #[must_use]
    pub fn horizon(&self) -> usize {
        self.values.len() - 1
    }

    /// The optimal action at `state` with `budget` cycles remaining (time-
    /// dependent: bounded-optimal strategies are *not* memoryless in
    /// general — with little budget left, risky shortcuts become optimal).
    ///
    /// # Panics
    ///
    /// Panics if `state` or `budget` is out of range.
    #[must_use]
    pub fn action_at(&self, state: usize, budget: usize) -> Option<Action> {
        self.choice[budget][state]
    }

    /// The smallest budget at which the probability from `state` reaches
    /// `target`, if any within the computed horizon — "how many cycles do
    /// I need to budget for a 99 % success chance?".
    #[must_use]
    pub fn budget_for(&self, state: usize, target: f64) -> Option<usize> {
        (0..self.values.len()).find(|&b| self.values[b][state] >= target)
    }
}

/// Computes `Pmax[F≤k goal]` for all states and budgets `0..=horizon` by
/// backward induction.
///
/// # Examples
///
/// ```
/// use meda_core::{ActionConfig, RoutingMdp, UniformField};
/// use meda_grid::Rect;
/// use meda_synth::bounded_reach_probability;
///
/// let mdp = RoutingMdp::build(
///     Rect::new(1, 1, 1, 1),
///     Rect::new(5, 1, 5, 1),
///     Rect::new(1, 1, 5, 1),
///     &UniformField::new(0.5),
///     &ActionConfig::cardinal_only(),
/// )?;
/// let table = bounded_reach_probability(&mdp, 20);
/// // Exactly 4 steps at p = 0.5 each: P[F≤4] = 0.5⁴.
/// assert!((table.at(mdp.init(), 4) - 0.0625).abs() < 1e-12);
/// // More budget, more probability.
/// assert!(table.at(mdp.init(), 20) > table.at(mdp.init(), 8));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn bounded_reach_probability(mdp: &RoutingMdp, horizon: usize) -> HorizonValues {
    let n = mdp.len();
    let mut values: Vec<Vec<f64>> = Vec::with_capacity(horizon + 1);
    let mut choice: Vec<Vec<Option<Action>>> = Vec::with_capacity(horizon + 1);

    // Budget 0: only states already at the goal succeed.
    let base: Vec<f64> = (0..n)
        .map(|i| if mdp.is_goal(i) { 1.0 } else { 0.0 })
        .collect();
    values.push(base);
    choice.push(vec![None; n]);

    for b in 1..=horizon {
        let prev = &values[b - 1];
        let mut now = vec![0.0f64; n];
        let mut act: Vec<Option<Action>> = vec![None; n];
        for i in 0..n {
            if mdp.is_goal(i) {
                now[i] = 1.0;
                continue;
            }
            let mut best = 0.0f64;
            let mut best_action = None;
            for (action, branch) in mdp.choices(i) {
                let v: f64 = branch.iter().map(|(j, p)| p * prev[j]).sum();
                if v > best {
                    best = v;
                    best_action = Some(action);
                }
            }
            now[i] = best;
            act[i] = best_action;
        }
        values.push(now);
        choice.push(act);
        let _ = b;
    }

    HorizonValues { values, choice }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{max_reach_probability, SolverOptions};
    use meda_core::{ActionConfig, RawField, UniformField};
    use meda_grid::{Cell, ChipDims, Grid, Rect};

    fn corridor(force: f64, len: i32) -> RoutingMdp {
        RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(len, 1, len, 1),
            Rect::new(1, 1, len, 1),
            &UniformField::new(force),
            &ActionConfig::cardinal_only(),
        )
        .unwrap()
    }

    #[test]
    fn exact_binomial_value_on_a_corridor() {
        // Reaching distance d in exactly d steps requires d successes:
        // P[F≤d] = p^d; P[F≤d+1] adds d ways to fail once: + d·p^d·(1−p).
        let p = 0.6f64;
        let mdp = corridor(p, 4); // distance 3
        let table = bounded_reach_probability(&mdp, 10);
        let init = mdp.init();
        assert!((table.at(init, 3) - p.powi(3)).abs() < 1e-12);
        let expected4 = p.powi(3) + 3.0 * p.powi(3) * (1.0 - p);
        assert!((table.at(init, 4) - expected4).abs() < 1e-12);
    }

    #[test]
    fn values_are_monotone_in_budget_and_bounded() {
        let mdp = corridor(0.4, 6);
        let table = bounded_reach_probability(&mdp, 60);
        let init = mdp.init();
        let mut prev = 0.0;
        for b in 0..=60 {
            let v = table.at(init, b);
            assert!((0.0..=1.0 + 1e-12).contains(&v));
            assert!(v >= prev - 1e-12, "budget {b}");
            prev = v;
        }
    }

    #[test]
    fn converges_to_the_unbounded_value() {
        let mdp = corridor(0.5, 5);
        let table = bounded_reach_probability(&mdp, 200);
        let unbounded = max_reach_probability(&mdp, SolverOptions::default());
        assert!(
            (table.at(mdp.init(), 200) - unbounded.values[mdp.init()]).abs() < 1e-6,
            "bounded({}) vs unbounded({})",
            table.at(mdp.init(), 200),
            unbounded.values[mdp.init()]
        );
    }

    #[test]
    fn budget_for_finds_the_quantile() {
        let mdp = corridor(0.5, 5);
        let table = bounded_reach_probability(&mdp, 100);
        let init = mdp.init();
        let b90 = table.budget_for(init, 0.9).expect("within horizon");
        assert!(table.at(init, b90) >= 0.9);
        assert!(b90 == 0 || table.at(init, b90 - 1) < 0.9);
        // The unreachable target returns None.
        assert_eq!(table.budget_for(init, 1.1), None);
    }

    #[test]
    fn risky_shortcut_becomes_optimal_under_pressure() {
        // Two routes to the goal: a short one over a weak cell and a long
        // healthy one. With a tight budget the weak shortcut maximizes
        // P[F≤k]; with slack the healthy detour does.
        let dims = ChipDims::new(5, 3);
        let mut f = Grid::new(dims, 1.0);
        f[Cell::new(3, 1)] = 0.3; // weak cell mid-shortcut
        let field = RawField::new(f);
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(5, 1, 5, 1),
            Rect::new(1, 1, 5, 3),
            &field,
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let table = bounded_reach_probability(&mdp, 50);
        let init = mdp.init();
        // With exactly 4 cycles only the straight route can possibly land.
        let tight = table.at(init, 4);
        assert!(tight > 0.0);
        assert!(
            (tight - 0.3).abs() < 1e-9,
            "must gamble on the weak cell: {tight}"
        );
        // With slack, the detour raises the probability well beyond the
        // gamble.
        assert!(table.at(init, 12) > 0.9);
        // And the time-dependent policy differs between the two regimes.
        let tight_action = table.action_at(init, 4);
        assert_eq!(tight_action, Some(Action::Move(meda_core::Dir::E)));
    }

    #[test]
    fn goal_state_is_certain_at_every_budget() {
        let mdp = corridor(0.7, 4);
        let goal_idx = mdp.state_index(Rect::new(4, 1, 4, 1)).unwrap();
        let table = bounded_reach_probability(&mdp, 10);
        for b in 0..=10 {
            assert_eq!(table.at(goal_idx, b), 1.0);
        }
    }
}
