use meda_grid::{ChipDims, Rect};

/// The hazard bounds `δ_h = ZONE(δ_s, δ_g)` of a routing job
/// (Section VI-B): the bounding box of the start and goal rectangles,
/// expanded by a 3-MC safety margin on each side to prevent accidental
/// droplet merging, and clipped to the chip.
///
/// The paper's displayed formula contains two typos (it writes
/// `min(x_a − 3, x_a' − 3, 1)` where clamping requires
/// `max(min(x_a, x_a') − 3, 1)`, and `x_a + 3` where the upper corner needs
/// `x_b + 3`); Table IV's worked values — e.g. M4's bounds
/// `(5, 11, 46, 21)` from `δ_s = (8, 14, 13, 18)`, `δ_g = (38, 14, 43, 18)`
/// — pin down the intended semantics implemented here.
///
/// # Examples
///
/// ```
/// use meda_bioassay::zone;
/// use meda_grid::{ChipDims, Rect};
///
/// let dims = ChipDims::new(60, 30);
/// let bounds = zone(Rect::new(8, 14, 13, 18), Rect::new(38, 14, 43, 18), dims);
/// assert_eq!(bounds, Rect::new(5, 11, 46, 21));
/// ```
#[must_use]
pub fn zone(start: Rect, goal: Rect, dims: ChipDims) -> Rect {
    let expanded = start.union(goal).expand(3);
    expanded
        .intersection(dims.bounds())
        .expect("start/goal overlap the chip")
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIMS: ChipDims = ChipDims {
        width: 60,
        height: 30,
    };

    #[test]
    fn table_iv_m3_bounds() {
        // RJ3.0: δ_s = (16,01,19,04), δ_g = (09,14,12,17) → (06,01,22,20).
        let b = zone(Rect::new(16, 1, 19, 4), Rect::new(9, 14, 12, 17), DIMS);
        assert_eq!(b, Rect::new(6, 1, 22, 20));
        // RJ3.1: δ_s = (16,27,19,30), δ_g = (09,14,12,17) → (06,11,22,30).
        let b = zone(Rect::new(16, 27, 19, 30), Rect::new(9, 14, 12, 17), DIMS);
        assert_eq!(b, Rect::new(6, 11, 22, 30));
    }

    #[test]
    fn table_iv_m4_bounds() {
        let b = zone(Rect::new(8, 14, 13, 18), Rect::new(38, 14, 43, 18), DIMS);
        assert_eq!(b, Rect::new(5, 11, 46, 21));
    }

    #[test]
    fn clips_to_chip_boundary() {
        // A start at the south-west corner clips at (1, 1).
        let b = zone(Rect::new(1, 1, 4, 4), Rect::new(10, 10, 13, 13), DIMS);
        assert_eq!(b, Rect::new(1, 1, 16, 16));
    }

    #[test]
    fn zone_contains_both_endpoints_with_margin() {
        let s = Rect::new(20, 10, 23, 13);
        let g = Rect::new(40, 20, 43, 23);
        let b = zone(s, g, DIMS);
        assert!(b.contains_rect(s.expand(3)));
        assert!(b.contains_rect(g.expand(3)));
    }

    #[test]
    fn zone_is_symmetric() {
        let s = Rect::new(5, 5, 8, 8);
        let g = Rect::new(30, 20, 33, 23);
        assert_eq!(zone(s, g, DIMS), zone(g, s, DIMS));
    }
}
