//! Property-based tests for the MEDA stochastic game (Section V-C): turn
//! structure, probability conservation, and health monotonicity under
//! arbitrary adversary schedules.

use meda_core::{ActionConfig, DegradationMove, GameState, MedaGame, Player};
use meda_grid::{Cell, ChipDims, Rect};
use proptest::prelude::*;

fn arb_droplet_on(dims: ChipDims) -> impl Strategy<Value = Rect> {
    let (w, h) = (dims.width as i32, dims.height as i32);
    (1..w - 4, 1..h - 4, 1i32..4, 1i32..4)
        .prop_map(|(xa, ya, dw, dh)| Rect::new(xa, ya, xa + dw, ya + dh))
}

fn arb_cells(dims: ChipDims) -> impl Strategy<Value = Vec<Cell>> {
    proptest::collection::vec(
        (1..=dims.width as i32, 1..=dims.height as i32).prop_map(|(x, y)| Cell::new(x, y)),
        0..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every play alternates ① → ② → ① …, and controller distributions
    /// always sum to one.
    #[test]
    fn plays_alternate_and_conserve_probability(
        droplet in arb_droplet_on(ChipDims::new(16, 12)),
        action_picks in proptest::collection::vec(0usize..20, 1..6),
        adversary in proptest::collection::vec(arb_cells(ChipDims::new(16, 12)), 1..6)
    ) {
        let game = MedaGame::new(ChipDims::new(16, 12), 2, ActionConfig::default());
        let mut state = game.initial_state(droplet);
        for (pick, cells) in action_picks.iter().zip(&adversary) {
            prop_assert_eq!(state.player, Player::Controller);
            let actions = game.controller_actions(&state);
            prop_assert!(!actions.is_empty(), "controller always has a move");
            let action = actions[pick % actions.len()];
            let successors = game.controller_transitions(&state, action);
            let total: f64 = successors.iter().map(|(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            // Take the most likely successor.
            let (next, _) = successors
                .into_iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .expect("non-empty");
            prop_assert_eq!(next.player, Player::Degradation);
            state = game.degradation_step(&next, &DegradationMove::cells(cells.clone()));
        }
        prop_assert_eq!(state.player, Player::Controller);
    }

    /// Health is monotone non-increasing along any play, regardless of the
    /// adversary's schedule — the property that justifies the paper's
    /// replace-on-change strategy-library policy.
    #[test]
    fn health_never_recovers(
        droplet in arb_droplet_on(ChipDims::new(16, 12)),
        adversary in proptest::collection::vec(arb_cells(ChipDims::new(16, 12)), 1..8)
    ) {
        let dims = ChipDims::new(16, 12);
        let game = MedaGame::new(dims, 2, ActionConfig::default());
        let mut state = game.initial_state(droplet);
        let mut last: Vec<u8> = dims.cells().map(|c| state.health[c].level()).collect();
        for cells in &adversary {
            let action = game.controller_actions(&state)[0];
            let (next, _) = game.controller_transitions(&state, action).remove(0);
            state = game.degradation_step(&next, &DegradationMove::cells(cells.clone()));
            let now: Vec<u8> = dims.cells().map(|c| state.health[c].level()).collect();
            for (before, after) in last.iter().zip(&now) {
                prop_assert!(after <= before, "health recovered");
            }
            last = now;
        }
    }

    /// The controller's enabled actions keep the droplet on-chip from any
    /// legal position.
    #[test]
    fn enabled_actions_keep_droplet_on_chip(droplet in arb_droplet_on(ChipDims::new(16, 12))) {
        let dims = ChipDims::new(16, 12);
        let game = MedaGame::new(dims, 2, ActionConfig::default());
        let state = game.initial_state(droplet);
        for action in game.controller_actions(&state) {
            prop_assert!(dims.contains_rect(action.apply(droplet)), "{}", action);
        }
    }

    /// Degrading the same cell `2^b` times always kills it, and the
    /// degradation move is idempotent once dead.
    #[test]
    fn repeated_degradation_kills_and_saturates(
        droplet in arb_droplet_on(ChipDims::new(16, 12)),
        target in (1i32..=16, 1i32..=12).prop_map(|(x, y)| Cell::new(x, y)),
        extra in 0usize..4
    ) {
        let game = MedaGame::new(ChipDims::new(16, 12), 2, ActionConfig::default());
        let mut state = game.initial_state(droplet);
        for _ in 0..(4 + extra) {
            let action = game.controller_actions(&state)[0];
            let (next, _) = game.controller_transitions(&state, action).remove(0);
            state = game.degradation_step(&next, &DegradationMove::cells([target]));
        }
        prop_assert!(state.health[target].is_dead());
    }
}

/// The full-information game (health observable) and the induced MDP agree
/// on the initial transition distribution when health is fresh.
#[test]
fn game_and_mdp_transition_distributions_agree() {
    use meda_core::{transitions, HealthField};

    let dims = ChipDims::new(16, 12);
    let game = MedaGame::new(dims, 2, ActionConfig::default());
    let droplet = Rect::new(4, 4, 7, 7);
    let state: GameState = game.initial_state(droplet);
    let field = HealthField::new(state.health.clone(), 2);

    for action in game.controller_actions(&state) {
        let via_game: Vec<(Rect, f64)> = game
            .controller_transitions(&state, action)
            .into_iter()
            .map(|(s, p)| (s.droplet, p))
            .collect();
        let via_mdp: Vec<(Rect, f64)> = transitions(droplet, action, &field)
            .into_iter()
            .map(|o| (o.droplet, o.probability))
            .collect();
        assert_eq!(via_game.len(), via_mdp.len(), "{action}");
        for ((ra, pa), (rb, pb)) in via_game.iter().zip(&via_mdp) {
            assert_eq!(ra, rb, "{action}");
            assert!((pa - pb).abs() < 1e-12, "{action}");
        }
    }
}
