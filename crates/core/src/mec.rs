//! Graph-only **maximal end-component** (MEC) decomposition over raw CSR
//! arrays (DESIGN.md §14).
//!
//! An *end component* of an MDP is a pair `(S', A')` of states and enabled
//! choices such that every branch of every kept choice stays inside `S'`
//! and the induced sub-graph is strongly connected — the regions a strategy
//! can keep the process inside forever. A *maximal* end component is one
//! not contained in any larger EC. MECs are exactly what break the
//! uniqueness of the Bellman fixed point for `Pmax`: inside a MEC every
//! constant vector is a fixed point of the restricted operator, so value
//! iteration *from above* can stall at a spurious value. Collapsing each
//! MEC to a single quotient state restores a unique fixed point and makes
//! interval iteration sound ([`meda-audit`'s bounds pass] consumes this).
//!
//! The decomposition here is purely structural — it reads only the CSR
//! offset/target arrays, never probabilities or values — so `meda-audit`
//! can run it over an untrusted [`crate::RoutingMdp`] export without
//! sharing solver code. The algorithm is the standard iterative one
//! (de Alfaro): repeatedly (1) compute SCCs of the sub-graph restricted to
//! the still-enabled choices, (2) disable any choice with a branch leaving
//! its state's SCC, (3) drop states left without choices; at the fixpoint
//! the surviving SCCs are exactly the MECs. Absorbing states (no choices —
//! goals and the hazard sink in this codebase) are never MEC members.

/// Sentinel for states outside every maximal end component.
pub const NO_MEC: u32 = u32::MAX;

/// Result of [`mec_decomposition`]: the maximal end components of a CSR
/// graph, numbered `0..mecs()` in a deterministic (first-member state
/// order) numbering.
#[derive(Debug, Clone)]
pub struct MecDecomposition {
    /// MEC id per state, or [`NO_MEC`] for states outside every MEC.
    pub mec_of: Vec<u32>,
    /// `mecs() + 1` offsets into [`MecDecomposition::members`].
    pub mec_start: Vec<u32>,
    /// State indices grouped by MEC, ids in increasing order; members of
    /// one MEC are sorted ascending.
    pub members: Vec<u32>,
    /// Per choice: whether the choice survived the decomposition as an
    /// *internal* choice of some MEC (every branch stays inside the MEC).
    /// Choices of non-MEC states and exiting choices of MEC states are
    /// `false`.
    pub internal_choice: Vec<bool>,
}

impl MecDecomposition {
    /// Number of maximal end components.
    #[must_use]
    pub fn mecs(&self) -> usize {
        self.mec_start.len() - 1
    }

    /// The member states of MEC `k`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k >= mecs()`.
    #[must_use]
    pub fn members_of(&self, k: usize) -> &[u32] {
        &self.members[self.mec_start[k] as usize..self.mec_start[k + 1] as usize]
    }

    /// Total number of states that belong to some MEC.
    #[must_use]
    pub fn states_in_mecs(&self) -> usize {
        self.members.len()
    }

    /// Size of the largest MEC (0 when there are none).
    #[must_use]
    pub fn largest(&self) -> usize {
        (0..self.mecs())
            .map(|k| self.members_of(k).len())
            .max()
            .unwrap_or(0)
    }
}

/// Computes the maximal end components of the MDP described by the three
/// CSR arrays (`state_choice_start` has `n + 1` entries,
/// `choice_branch_start` has `choices + 1`, `branch_target` one entry per
/// branch). Probabilities are irrelevant: a branch is an edge iff its
/// probability is positive, and the CSR builders in this workspace never
/// emit zero-probability branches (meda-audit's structural pass rejects
/// them).
///
/// The caller must have validated the arrays (monotone offsets, targets
/// `< n`) — `RoutingMdp` guarantees this by construction and `meda-audit`
/// gates on its structural audit before calling in here.
///
/// Worst case `O(iterations · (states + branches))` with `iterations`
/// bounded by the number of choices ever disabled; on routing MDPs the
/// fixpoint is reached in a handful of rounds.
#[must_use]
pub fn mec_decomposition(
    state_choice_start: &[u32],
    choice_branch_start: &[u32],
    branch_target: &[u32],
) -> MecDecomposition {
    let n = state_choice_start.len().saturating_sub(1);
    let choices = choice_branch_start.len().saturating_sub(1);
    let mut enabled = vec![true; choices];
    // Candidate MEC members: states with at least one choice. Absorbing
    // states (goals, sink) have none and can never be in an EC.
    let mut candidate: Vec<bool> = (0..n)
        .map(|i| state_choice_start[i] < state_choice_start[i + 1])
        .collect();

    let mut scc = vec![NO_MEC; n];
    loop {
        restricted_sccs(
            state_choice_start,
            choice_branch_start,
            branch_target,
            &candidate,
            &enabled,
            &mut scc,
        );
        let mut changed = false;
        for i in 0..n {
            if !candidate[i] {
                continue;
            }
            let mut any_enabled = false;
            // `c` is a CSR choice id used both to index `enabled` and as the
            // branch-span key; an enumerate/skip/take chain would obscure that.
            #[allow(clippy::needless_range_loop)]
            for c in state_choice_start[i] as usize..state_choice_start[i + 1] as usize {
                if !enabled[c] {
                    continue;
                }
                let stays = branch_range(choice_branch_start, c).all(|b| {
                    let t = branch_target[b] as usize;
                    t == i || (candidate[t] && scc[t] == scc[i])
                });
                if stays {
                    any_enabled = true;
                } else {
                    enabled[c] = false;
                    changed = true;
                }
            }
            if !any_enabled {
                candidate[i] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // At the fixpoint every surviving candidate keeps >= 1 choice whose
    // branches all stay in its SCC, so each surviving SCC is a MEC.
    // Renumber deterministically by smallest member state.
    let mut mec_of = vec![NO_MEC; n];
    let mut mec_start = vec![0u32];
    let mut members: Vec<u32> = Vec::new();
    let mut scc_to_mec: Vec<u32> = vec![NO_MEC; n];
    let mut mec_count = 0u32;
    for i in 0..n {
        if !candidate[i] {
            continue;
        }
        let s = scc[i] as usize;
        if scc_to_mec[s] == NO_MEC {
            scc_to_mec[s] = mec_count;
            mec_count += 1;
        }
        mec_of[i] = scc_to_mec[s];
    }
    // Members grouped by MEC id; scanning states ascending keeps each
    // group sorted (MEC ids were assigned in first-member order).
    let mut counts = vec![0u32; mec_count as usize];
    for &m in mec_of.iter().filter(|&&m| m != NO_MEC) {
        counts[m as usize] += 1;
    }
    for &c in &counts {
        let last = *mec_start.last().expect("mec_start starts non-empty");
        mec_start.push(last + c);
    }
    members.resize(mec_of.iter().filter(|&&m| m != NO_MEC).count(), 0);
    let mut cursor: Vec<u32> = mec_start[..mec_count as usize].to_vec();
    for (i, &m) in mec_of.iter().enumerate() {
        if m != NO_MEC {
            members[cursor[m as usize] as usize] = to_u32(i);
            cursor[m as usize] += 1;
        }
    }
    let mut internal_choice = vec![false; choices];
    for (i, &m) in mec_of.iter().enumerate() {
        if m == NO_MEC {
            continue;
        }
        let span = state_choice_start[i] as usize..state_choice_start[i + 1] as usize;
        internal_choice[span.clone()].copy_from_slice(&enabled[span]);
    }
    MecDecomposition {
        mec_of,
        mec_start,
        members,
        internal_choice,
    }
}

fn branch_range(choice_branch_start: &[u32], c: usize) -> core::ops::Range<usize> {
    choice_branch_start[c] as usize..choice_branch_start[c + 1] as usize
}

fn to_u32(i: usize) -> u32 {
    u32::try_from(i).expect("state index exceeds the u32 address space")
}

/// Iterative Tarjan over the sub-graph of `candidate` states and `enabled`
/// choices, writing the component id of each candidate state into `scc`
/// (non-candidates keep stale values; callers only compare ids between
/// candidates). Self-loop branches are skipped — they never change SCC
/// membership. Mirrors [`crate::RoutingMdp::condensation`]'s explicit-stack
/// structure, restricted per edge.
fn restricted_sccs(
    state_choice_start: &[u32],
    choice_branch_start: &[u32],
    branch_target: &[u32],
    candidate: &[bool],
    enabled: &[bool],
    scc: &mut [u32],
) {
    let n = candidate.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    // DFS frame: (state, choice cursor, branch cursor within that choice).
    let mut dfs: Vec<(u32, u32, u32)> = Vec::new();

    for root in 0..n {
        if !candidate[root] || index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(to_u32(root));
        on_stack[root] = true;
        dfs.push((to_u32(root), state_choice_start[root], 0));
        while let Some(&mut (v, ref mut choice, ref mut branch)) = dfs.last_mut() {
            let v = v as usize;
            // Advance to the next edge: next branch of the current enabled
            // choice, else the next enabled choice.
            let mut next_target: Option<usize> = None;
            while (*choice as usize) < state_choice_start[v + 1] as usize {
                let c = *choice as usize;
                if !enabled[c] {
                    *choice += 1;
                    *branch = 0;
                    continue;
                }
                let lo = choice_branch_start[c];
                let hi = choice_branch_start[c + 1];
                if lo + *branch < hi {
                    let t = branch_target[(lo + *branch) as usize] as usize;
                    *branch += 1;
                    if t == v || !candidate[t] {
                        continue; // self-loop / pruned target: not an SCC edge
                    }
                    next_target = Some(t);
                    break;
                }
                *choice += 1;
                *branch = 0;
            }
            match next_target {
                Some(w) => {
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(to_u32(w));
                        on_stack[w] = true;
                        dfs.push((to_u32(w), state_choice_start[w], 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                }
                None => {
                    dfs.pop();
                    if let Some(&(parent, _, _)) = dfs.last() {
                        let p = parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            scc[w as usize] = comp_count;
                            if w as usize == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tiny hand-built CSR helpers: `choices[i]` lists state i's choices,
    // each a list of branch targets (uniform probabilities are irrelevant).
    fn csr(choices: &[&[&[u32]]]) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let mut scs = vec![0u32];
        let mut cbs = vec![0u32];
        let mut targets = Vec::new();
        for state in choices {
            for choice in *state {
                for &t in *choice {
                    targets.push(t);
                }
                cbs.push(to_u32(targets.len()));
            }
            scs.push(to_u32(cbs.len() - 1));
        }
        (scs, cbs, targets)
    }

    #[test]
    fn absorbing_goal_is_never_a_mec_member() {
        // 0 -> 1 -> goal(2, no choices); no cycles at all.
        let (scs, cbs, tg) = csr(&[&[&[1]], &[&[2]], &[]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 0);
        assert!(d.mec_of.iter().all(|&m| m == NO_MEC));
        assert!(d.internal_choice.iter().all(|&b| !b));
    }

    #[test]
    fn self_loop_only_choice_forms_a_singleton_mec() {
        // State 1 has one choice looping on itself; state 0 can enter it.
        let (scs, cbs, tg) = csr(&[&[&[1]], &[&[1]]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 1);
        assert_eq!(d.members_of(0), &[1]);
        assert_eq!(d.mec_of, vec![NO_MEC, 0]);
        assert!(d.internal_choice[1]);
    }

    #[test]
    fn two_state_cycle_with_an_exit_choice_is_one_mec() {
        // 0 <-> 1 via dedicated choices; 1 also has an exiting choice to
        // goal 2. The exit does not break the EC — the strategy may simply
        // never take it — so {0, 1} is a MEC and the exit choice is not
        // internal.
        let (scs, cbs, tg) = csr(&[&[&[1]], &[&[0], &[2]], &[]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 1);
        assert_eq!(d.members_of(0), &[0, 1]);
        assert!(d.internal_choice[0] && d.internal_choice[1]);
        assert!(!d.internal_choice[2]);
    }

    #[test]
    fn probabilistic_escape_dissolves_the_would_be_ec() {
        // 0's only choice branches to {0, 1}: mass leaks to 1 every trial,
        // and 1 is absorbing, so no strategy can stay in {0} forever.
        let (scs, cbs, tg) = csr(&[&[&[0, 1]], &[]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 0);
    }

    #[test]
    fn nested_structure_finds_only_the_maximal_component() {
        // 0 <-> 1 and 1 <-> 2 (all dedicated choices): the whole {0,1,2}
        // is strongly connected and closed, a single MEC.
        let (scs, cbs, tg) = csr(&[&[&[1]], &[&[0], &[2]], &[&[1]]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 1);
        assert_eq!(d.members_of(0), &[0, 1, 2]);
    }

    #[test]
    fn choice_with_a_leaking_branch_is_pruned_but_state_can_stay() {
        // 0 <-> 1; 0 has a second choice branching {1, 2} with 2 outside.
        // The leaking choice is pruned, the {0, 1} MEC survives without it.
        let (scs, cbs, tg) = csr(&[&[&[1], &[1, 2]], &[&[0]], &[]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 1);
        assert_eq!(d.members_of(0), &[0, 1]);
        assert!(d.internal_choice[0]);
        assert!(!d.internal_choice[1]); // the {1,2} choice leaks to 2
    }

    #[test]
    fn two_disjoint_mecs_get_deterministic_ids_in_state_order() {
        // {0} self-loop and {2, 3} cycle; 1 transits between them.
        let (scs, cbs, tg) = csr(&[&[&[0]], &[&[0], &[2]], &[&[3]], &[&[2]]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 2);
        assert_eq!(d.members_of(0), &[0]);
        assert_eq!(d.members_of(1), &[2, 3]);
        assert_eq!(d.mec_of[1], NO_MEC);
    }

    #[test]
    fn cascading_prune_reaches_the_fixpoint() {
        // 2 <-> 3 looks like an EC but 3's only choice leaks to 4
        // (absorbing): pruning 3 must then dissolve 2, then 1, then 0 in
        // later rounds — exercises the outer fixpoint loop.
        let (scs, cbs, tg) = csr(&[&[&[1]], &[&[2]], &[&[3]], &[&[2, 4]], &[]]);
        let d = mec_decomposition(&scs, &cbs, &tg);
        assert_eq!(d.mecs(), 0);
    }

    #[test]
    fn wander_region_of_a_guarded_routing_mdp_is_one_mec() {
        use crate::{HazardHandling, RoutingMdp, UniformField};
        use meda_grid::Rect;

        // A healthy guarded-corridor MDP: failed moves hold position, so
        // the whole non-goal region is mutually reachable and closed under
        // the hold branches — one big MEC, goals excluded.
        let mdp = RoutingMdp::build_with(
            Rect::new(0, 0, 1, 1),
            Rect::new(4, 4, 5, 5),
            Rect::new(0, 0, 5, 5),
            &UniformField::new(0.9),
            &crate::ActionConfig::default(),
            HazardHandling::GuardDisable,
        )
        .expect("valid corridor geometry");
        let d = mdp.maximal_end_components();
        assert!(d.mecs() >= 1, "guarded wander region should form a MEC");
        let csr = mdp.csr();
        for i in 0..mdp.stats().states {
            let absorbing = csr.state_choice_start[i] == csr.state_choice_start[i + 1];
            if absorbing {
                assert_eq!(d.mec_of[i], NO_MEC, "absorbing state {i} in a MEC");
            }
        }
    }
}
