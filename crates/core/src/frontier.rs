use meda_grid::{Interval, Rect};

use crate::{Action, Dir};

/// The frontier-set function `Fr(δ; a, d)` of Table II: the microelectrodes
/// that pull droplet `δ` in cardinal direction `d` when action `a` is
/// applied. Returns `None` when the table entry is `∅` (the action exerts no
/// pull in that direction) or the frontier is empty (degenerate droplet).
///
/// Frontier sets are always a single row or column, so they are returned as
/// a [`Rect`].
///
/// # Examples
///
/// Example 2 of the paper — `δ = (3,2,7,5)` actuated under `a_NE`:
///
/// ```
/// use meda_core::{frontier_set, Action, Dir, Ordinal};
/// use meda_grid::Rect;
///
/// let d = Rect::new(3, 2, 7, 5);
/// let a = Action::MoveOrdinal(Ordinal::NE);
/// assert_eq!(frontier_set(d, a, Dir::E), Some(Rect::new(8, 3, 8, 6)));
/// assert_eq!(frontier_set(d, a, Dir::N), Some(Rect::new(4, 6, 8, 6)));
/// assert_eq!(frontier_set(d, a, Dir::S), None);
/// ```
#[must_use]
pub fn frontier_set(delta: Rect, action: Action, dir: Dir) -> Option<Rect> {
    let Rect { xa, ya, xb, yb } = delta;
    let (xs, ys) = match (action, dir) {
        // Single-step cardinal moves: the full adjacent row/column.
        (Action::Move(Dir::N), Dir::N) => (Interval::new(xa, xb), Interval::point(yb + 1)),
        (Action::Move(Dir::S), Dir::S) => (Interval::new(xa, xb), Interval::point(ya - 1)),
        (Action::Move(Dir::E), Dir::E) => (Interval::point(xb + 1), Interval::new(ya, yb)),
        (Action::Move(Dir::W), Dir::W) => (Interval::point(xa - 1), Interval::new(ya, yb)),
        (Action::Move(_), _) => return None,

        // Double-step moves use the single-step frontier for each step
        // (Section V-B); the caller resolves the second step on the shifted
        // droplet via `Action::intermediate`.
        (Action::MoveDouble(d), dir) => return frontier_set(delta, Action::Move(d), dir),

        // Ordinal moves (Table II rows a_NE .. a_SW): the adjacent row and
        // column, both shifted one cell along the other axis.
        (Action::MoveOrdinal(o), dir) => {
            let (dx, dy) = o.delta();
            if dir == o.vertical() {
                (
                    Interval::new(xa + dx, xb + dx),
                    Interval::point(if dy > 0 { yb + 1 } else { ya - 1 }),
                )
            } else if dir == o.horizontal() {
                (
                    Interval::point(if dx > 0 { xb + 1 } else { xa - 1 }),
                    Interval::new(ya + dy, yb + dy),
                )
            } else {
                return None;
            }
        }

        // Morphing a_↓ (widen): a new column, one cell short of full height.
        (Action::Widen(o), dir) if dir == o.horizontal() => {
            let x = if o.delta().0 > 0 { xb + 1 } else { xa - 1 };
            let ys = if o.delta().1 > 0 {
                Interval::new(ya + 1, yb) // NE / NW
            } else {
                Interval::new(ya, yb - 1) // SE / SW
            };
            (Interval::point(x), ys)
        }
        (Action::Widen(_), _) => return None,

        // Morphing a_↑ (heighten): a new row, one cell short of full width.
        (Action::Heighten(o), dir) if dir == o.vertical() => {
            let y = if o.delta().1 > 0 { yb + 1 } else { ya - 1 };
            let xs = if o.delta().0 > 0 {
                Interval::new(xa + 1, xb) // NE / SE
            } else {
                Interval::new(xa, xb - 1) // NW / SW
            };
            (xs, Interval::point(y))
        }
        (Action::Heighten(_), _) => return None,
    };
    if xs.is_empty() || ys.is_empty() {
        None
    } else {
        Some(Rect::new(xs.lo, ys.lo, xs.hi, ys.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ordinal;

    const D: Rect = Rect {
        xa: 3,
        ya: 2,
        xb: 7,
        yb: 5,
    };

    /// Table II, rows a_N..a_W, sizes included.
    #[test]
    fn cardinal_frontiers_match_table_ii() {
        let cases = [
            (Dir::N, Rect::new(3, 6, 7, 6), 5),
            (Dir::S, Rect::new(3, 1, 7, 1), 5),
            (Dir::E, Rect::new(8, 2, 8, 5), 4),
            (Dir::W, Rect::new(2, 2, 2, 5), 4),
        ];
        for (d, expected, size) in cases {
            let fr = frontier_set(D, Action::Move(d), d).unwrap();
            assert_eq!(fr, expected, "a_{d}");
            assert_eq!(fr.area(), size, "a_{d} size");
            // Other directions are ∅.
            for other in Dir::ALL {
                if other != d {
                    assert_eq!(frontier_set(D, Action::Move(d), other), None);
                }
            }
        }
    }

    /// Table II, rows a_NE..a_SW.
    #[test]
    fn ordinal_frontiers_match_table_ii() {
        let cases = [
            (
                Ordinal::NE,
                Rect::new(4, 6, 8, 6), // [[xa+,xb+]] × [[yb+,yb+]]
                Rect::new(8, 3, 8, 6), // [[xb+,xb+]] × [[ya+,yb+]]
            ),
            (
                Ordinal::NW,
                Rect::new(2, 6, 6, 6), // [[xa-,xb-]] × [[yb+,yb+]]
                Rect::new(2, 3, 2, 6), // [[xa-,xa-]] × [[ya+,yb+]]
            ),
            (
                Ordinal::SE,
                Rect::new(4, 1, 8, 1), // [[xa+,xb+]] × [[ya-,ya-]]
                Rect::new(8, 1, 8, 4), // [[xb+,xb+]] × [[ya-,yb-]]
            ),
            (
                Ordinal::SW,
                Rect::new(2, 1, 6, 1), // [[xa-,xb-]] × [[ya-,ya-]]
                Rect::new(2, 1, 2, 4), // [[xa-,xa-]] × [[ya-,yb-]]
            ),
        ];
        for (o, vertical, horizontal) in cases {
            let a = Action::MoveOrdinal(o);
            assert_eq!(frontier_set(D, a, o.vertical()), Some(vertical), "{o} vert");
            assert_eq!(
                frontier_set(D, a, o.horizontal()),
                Some(horizontal),
                "{o} horiz"
            );
            assert_eq!(frontier_set(D, a, o.vertical()).unwrap().area(), 5);
            assert_eq!(frontier_set(D, a, o.horizontal()).unwrap().area(), 4);
        }
    }

    /// Table II, rows a_↓NE..a_↓SW (sizes y_b − y_a = 3 for D).
    #[test]
    fn widen_frontiers_match_table_ii() {
        let cases = [
            (Ordinal::NE, Rect::new(8, 3, 8, 5)),
            (Ordinal::NW, Rect::new(2, 3, 2, 5)),
            (Ordinal::SE, Rect::new(8, 2, 8, 4)),
            (Ordinal::SW, Rect::new(2, 2, 2, 4)),
        ];
        for (o, expected) in cases {
            let a = Action::Widen(o);
            assert_eq!(frontier_set(D, a, o.horizontal()), Some(expected), "{o}");
            assert_eq!(frontier_set(D, a, o.horizontal()).unwrap().area(), 3);
            assert_eq!(frontier_set(D, a, o.vertical()), None);
        }
    }

    /// Table II, rows a_↑NE..a_↑SW (sizes x_b − x_a = 4 for D).
    #[test]
    fn heighten_frontiers_match_table_ii() {
        let cases = [
            (Ordinal::NE, Rect::new(4, 6, 7, 6)),
            (Ordinal::NW, Rect::new(3, 6, 6, 6)),
            (Ordinal::SE, Rect::new(4, 1, 7, 1)),
            (Ordinal::SW, Rect::new(3, 1, 6, 1)),
        ];
        for (o, expected) in cases {
            let a = Action::Heighten(o);
            assert_eq!(frontier_set(D, a, o.vertical()), Some(expected), "{o}");
            assert_eq!(frontier_set(D, a, o.vertical()).unwrap().area(), 4);
            assert_eq!(frontier_set(D, a, o.horizontal()), None);
        }
    }

    #[test]
    fn frontier_lies_inside_successful_outcome() {
        // The pulling cells become part of the moved/morphed droplet.
        for a in Action::ALL {
            let target = a.apply(D);
            for d in Dir::ALL {
                if let Some(fr) = frontier_set(D, a, d) {
                    if matches!(a, Action::MoveDouble(_)) {
                        continue; // first-step frontier lies in the intermediate droplet
                    }
                    assert!(
                        target.contains_rect(fr),
                        "{a} dir {d}: frontier {fr} outside outcome {target}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_droplet_has_empty_morph_frontiers() {
        let dot = Rect::new(5, 5, 5, 5);
        assert_eq!(
            frontier_set(dot, Action::Widen(Ordinal::NE), Dir::E),
            None,
            "1×1 droplet cannot be widened"
        );
        assert_eq!(
            frontier_set(dot, Action::Heighten(Ordinal::SW), Dir::S),
            None
        );
        // But it can still move.
        assert_eq!(
            frontier_set(dot, Action::Move(Dir::N), Dir::N),
            Some(Rect::new(5, 6, 5, 6))
        );
    }

    #[test]
    fn double_step_first_frontier_equals_single() {
        for d in Dir::ALL {
            assert_eq!(
                frontier_set(D, Action::MoveDouble(d), d),
                frontier_set(D, Action::Move(d), d)
            );
        }
    }
}
