//! Property tests for the geometry substrate, driven by `meda-check`:
//! deterministic seeded generators with integrated shrinking, so a failure
//! is reported as a minimal counterexample and persisted to the shared
//! corpus for replay-first on subsequent runs.

use meda_check::{arb, cases_from_env, check, choose, choose_u32, default_corpus_dir, Config, Gen};
use meda_grid::{Cell, Grid, Interval, Rect};

fn config() -> Config {
    Config::default()
        .with_cases(cases_from_env(256))
        .with_corpus(default_corpus_dir())
}

fn cell() -> Gen<Cell> {
    arb::cell_within(-100, 100)
}

fn rect() -> Gen<Rect> {
    arb::rect_within(-50, 50, 20)
}

fn interval(lo: i32, hi: i32) -> Gen<Interval> {
    choose(i64::from(lo), i64::from(hi))
        .zip(choose(i64::from(lo), i64::from(hi)))
        .map(|&(a, b)| Interval::new(a as i32, b as i32))
}

fn ensure(cond: bool, message: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(message.into())
    }
}

#[test]
fn manhattan_distance_is_a_metric() {
    let gen = cell().zip(cell()).zip(cell());
    check("grid-manhattan-metric", &config(), &gen, |&((a, b), c)| {
        ensure(a.manhattan_distance(a) == 0, "d(a,a) != 0")?;
        ensure(
            a.manhattan_distance(b) == b.manhattan_distance(a),
            "not symmetric",
        )?;
        ensure(
            a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c),
            "triangle inequality violated",
        )
    });
}

#[test]
fn chebyshev_never_exceeds_manhattan() {
    let gen = cell().zip(cell());
    check("grid-chebyshev-bounds", &config(), &gen, |&(a, b)| {
        ensure(
            a.chebyshev_distance(b) <= a.manhattan_distance(b),
            "chebyshev > manhattan",
        )?;
        ensure(
            a.manhattan_distance(b) <= 2 * a.chebyshev_distance(b),
            "manhattan > 2 * chebyshev",
        )
    });
}

#[test]
fn interval_len_matches_iteration() {
    check("grid-interval-len", &config(), &interval(-50, 50), |iv| {
        ensure(iv.len() as usize == iv.iter().count(), "len != count")?;
        ensure(
            iv.is_empty() == iv.iter().next().is_none(),
            "is_empty disagrees with iteration",
        )
    });
}

#[test]
fn interval_intersection_is_commutative_and_contained() {
    let gen = interval(-30, 30).zip(interval(-30, 30));
    check("grid-interval-intersect", &config(), &gen, |&(a, b)| {
        ensure(a.intersect(b) == b.intersect(a), "not commutative")?;
        for v in a.intersect(b) {
            ensure(a.contains(v) && b.contains(v), "value escapes operands")?;
        }
        Ok(())
    });
}

#[test]
fn rect_cells_count_equals_area() {
    check("grid-rect-area", &config(), &rect(), |r| {
        ensure(r.cells().count() as u32 == r.area(), "cell count != area")?;
        ensure(r.cells().all(|c| r.contains_cell(c)), "cell escapes rect")
    });
}

#[test]
fn rect_union_contains_both_and_is_minimal_along_axes() {
    let gen = rect().zip(rect());
    check("grid-rect-union", &config(), &gen, |&(a, b)| {
        let u = a.union(b);
        ensure(u.contains_rect(a) && u.contains_rect(b), "union too small")?;
        ensure(u.xa == a.xa.min(b.xa), "xa not minimal")?;
        ensure(u.yb == a.yb.max(b.yb), "yb not maximal")
    });
}

#[test]
fn rect_intersection_consistent_with_intersects() {
    let gen = rect().zip(rect());
    check("grid-rect-intersect", &config(), &gen, |&(a, b)| {
        match a.intersection(b) {
            Some(i) => {
                ensure(a.intersects(b), "Some but !intersects")?;
                ensure(
                    a.contains_rect(i) && b.contains_rect(i),
                    "intersection escapes operands",
                )
            }
            None => ensure(!a.intersects(b), "None but intersects"),
        }
    });
}

#[test]
fn rect_manhattan_gap_is_symmetric_and_zero_iff_intersecting() {
    let gen = rect().zip(rect());
    check("grid-rect-gap", &config(), &gen, |&(a, b)| {
        ensure(a.manhattan_gap(b) == b.manhattan_gap(a), "not symmetric")?;
        ensure(
            (a.manhattan_gap(b) == 0) == a.intersects(b),
            "gap zero iff intersecting violated",
        )
    });
}

#[test]
fn rect_translate_preserves_shape() {
    let gen = rect().zip(arb::cell_within(-20, 20));
    check("grid-rect-translate", &config(), &gen, |&(r, d)| {
        let t = r.translate(d.x, d.y);
        ensure(
            t.width() == r.width() && t.height() == r.height() && t.area() == r.area(),
            "shape changed",
        )?;
        ensure(t.translate(-d.x, -d.y) == r, "translate not invertible")
    });
}

#[test]
fn centered_at_roundtrips_center() {
    let gen = meda_check::f64_range(-20.0, 20.0)
        .zip(meda_check::f64_range(-20.0, 20.0))
        .zip(choose_u32(1, 9).zip(choose_u32(1, 9)));
    check(
        "grid-centered-at",
        &config(),
        &gen,
        |&((cx, cy), (w, h))| {
            // Snap the requested center to the representable half-cell grid.
            let r = Rect::centered_at(cx, cy, w, h);
            let (rx, ry) = r.center();
            ensure(
                (rx - cx).abs() <= 0.5 + 1e-9 && (ry - cy).abs() <= 0.5 + 1e-9,
                "center drifted more than half a cell",
            )?;
            ensure((r.width(), r.height()) == (w, h), "size changed")
        },
    );
}

#[test]
fn dims_index_roundtrip() {
    let small = config().with_cases(cases_from_env(64));
    check("grid-dims-index", &small, &arb::dims(1, 39), |&dims| {
        for idx in 0..dims.cell_count() {
            let cell = dims.cell_at(idx);
            ensure(dims.index_of(cell) == Some(idx), "index_of != cell_at")?;
            ensure(dims.contains(cell), "cell_at escapes dims")?;
        }
        Ok(())
    });
}

#[test]
fn grid_fill_rect_writes_exactly_the_clipped_intersection() {
    let gen = arb::dims(1, 39).zip(rect());
    check("grid-fill-rect", &config(), &gen, |&(dims, r)| {
        let mut g = Grid::<bool>::new(dims, false);
        let written = g.fill_rect(r, true);
        let expected = r
            .intersection(dims.bounds())
            .map_or(0, |c| c.area() as usize);
        ensure(written == expected, "fill_rect return != clipped area")?;
        ensure(g.count_set() == expected, "count_set != clipped area")
    });
}

#[test]
fn grid_map_preserves_structure() {
    let small = config().with_cases(cases_from_env(64));
    let gen = arb::dims(1, 39).zip(choose(-5, 5));
    check("grid-map-structure", &small, &gen, |&(dims, offset)| {
        let offset = offset as i32;
        let g = Grid::from_fn(dims, |c| c.x + c.y);
        let mapped = g.map(|_, v| v + offset);
        for (cell, v) in g.iter() {
            ensure(mapped[cell] == v + offset, "map changed structure")?;
        }
        Ok(())
    });
}
