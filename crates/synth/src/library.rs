use std::collections::BTreeMap;
use std::sync::Arc;

use meda_grid::Rect;

use crate::RoutingStrategy;

/// Key identifying a pre-synthesized strategy in the library: the routing
/// job geometry plus a digest of the health matrix within its hazard bounds
/// (Section VI-D).
///
/// Storing strategies for *all* health matrices is intractable (the paper
/// notes `|Ŝ| > 10^77` states for a modest chip), so the library keys on
/// the digest of the actually-observed **H** restricted to the job's hazard
/// bounds — health changes elsewhere on the chip don't invalidate the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LibraryKey {
    /// Start droplet `δ_s`.
    pub start: Rect,
    /// Goal region `δ_g`.
    pub goal: Rect,
    /// Hazard bounds `δ_h`.
    pub bounds: Rect,
    /// Digest of the health matrix within `bounds`
    /// (see [`meda_core::HealthField::digest`]).
    pub health_digest: u64,
}

/// The offline/online hybrid strategy store of Section VI-D.
///
/// The scheduler first consults the library; on a miss it synthesizes
/// online, stores the result, and reuses it for identical future jobs.
/// When a health change is detected the digest changes, so stale strategies
/// are never returned — and since health levels only ever decrease, an
/// outdated entry can never become valid again, matching the paper's
/// replace-on-change policy.
///
/// # Examples
///
/// ```
/// use meda_grid::Rect;
/// use meda_synth::{LibraryKey, StrategyLibrary};
///
/// let mut lib = StrategyLibrary::new();
/// let key = LibraryKey {
///     start: Rect::new(1, 1, 3, 3),
///     goal: Rect::new(8, 8, 10, 10),
///     bounds: Rect::new(1, 1, 10, 10),
///     health_digest: 42,
/// };
/// assert!(lib.get(&key).is_none());
/// assert_eq!(lib.misses(), 1);
/// ```
#[derive(Debug, Default)]
pub struct StrategyLibrary {
    // BTreeMap rather than HashMap: any future iteration over the stored
    // strategies (exports, reports) must be deterministic — `RandomState`
    // hashing would order entries differently on every run.
    entries: BTreeMap<LibraryKey, Arc<RoutingStrategy>>,
    hits: u64,
    misses: u64,
}

impl StrategyLibrary {
    /// Creates an empty library.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a strategy, counting a hit or miss.
    pub fn get(&mut self, key: &LibraryKey) -> Option<Arc<RoutingStrategy>> {
        match self.entries.get(key) {
            Some(strategy) => {
                self.hits += 1;
                Some(Arc::clone(strategy))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) a strategy. Replacement is the paper's policy:
    /// once **H** has changed, the old strategy can never become valid again
    /// because health never recovers.
    pub fn insert(&mut self, key: LibraryKey, strategy: RoutingStrategy) -> Arc<RoutingStrategy> {
        let arc = Arc::new(strategy);
        self.entries.insert(key, Arc::clone(&arc));
        arc
    }

    /// Drops every entry for the given job geometry (any digest) — used
    /// when a health change within the job's bounds invalidates the stored
    /// strategies wholesale.
    pub fn invalidate_job(&mut self, start: Rect, goal: Rect, bounds: Rect) -> usize {
        let before = self.entries.len();
        self.entries
            .retain(|k, _| !(k.start == start && k.goal == goal && k.bounds == bounds));
        before - self.entries.len()
    }

    /// Number of stored strategies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the library is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, Query};
    use meda_core::{ActionConfig, RoutingMdp, UniformField};

    fn strategy() -> RoutingStrategy {
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 2, 2),
            Rect::new(5, 5, 6, 6),
            Rect::new(1, 1, 6, 6),
            &UniformField::pristine(),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        synthesize(&mdp, Query::MinExpectedCycles).unwrap()
    }

    fn key(digest: u64) -> LibraryKey {
        LibraryKey {
            start: Rect::new(1, 1, 2, 2),
            goal: Rect::new(5, 5, 6, 6),
            bounds: Rect::new(1, 1, 6, 6),
            health_digest: digest,
        }
    }

    #[test]
    fn hit_after_insert() {
        let mut lib = StrategyLibrary::new();
        lib.insert(key(1), strategy());
        assert!(lib.get(&key(1)).is_some());
        assert_eq!((lib.hits(), lib.misses()), (1, 0));
    }

    #[test]
    fn different_digest_misses() {
        let mut lib = StrategyLibrary::new();
        lib.insert(key(1), strategy());
        assert!(lib.get(&key(2)).is_none());
        assert_eq!((lib.hits(), lib.misses()), (0, 1));
    }

    #[test]
    fn insert_replaces_existing() {
        let mut lib = StrategyLibrary::new();
        lib.insert(key(1), strategy());
        lib.insert(key(1), strategy());
        assert_eq!(lib.len(), 1);
    }

    #[test]
    fn invalidate_job_drops_all_digests() {
        let mut lib = StrategyLibrary::new();
        lib.insert(key(1), strategy());
        lib.insert(key(2), strategy());
        let removed = lib.invalidate_job(
            Rect::new(1, 1, 2, 2),
            Rect::new(5, 5, 6, 6),
            Rect::new(1, 1, 6, 6),
        );
        assert_eq!(removed, 2);
        assert!(lib.is_empty());
    }
}
