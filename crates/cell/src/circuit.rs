//! Behavioral model of the MC control circuit (Fig. 1, Section III-B): the
//! ACT / ACT_b / SEL control signals, the four transistors they drive, and
//! the resulting bottom-plate connection in each operating phase.
//!
//! The paper's sensing sequence is modeled verbatim:
//!
//! 1. **Charge** — `ACT = 0, ACT_b = 1, SEL = 1`, top plate grounded:
//!    T1, T2, T4 on, T3 off; the bottom plate connects to VDD (3.3 V) and
//!    charges.
//! 2. **Discharge** — the controller drops `ACT_b = 0`: T1, T3, T4 on,
//!    T2 off; the bottom plate connects to ground and discharges, and the
//!    DFF clock edges sample the node (see [`crate::SensingCircuit`]).
//!
//! During **actuation** (`ACT = 1`) the bottom plate is driven by the
//! high-voltage EWOD rail instead.

use std::fmt;

/// The scan-register control signals of one MC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ControlSignals {
    /// Actuation select.
    pub act: bool,
    /// Complement phase signal used during sensing.
    pub act_b: bool,
    /// Sensing select.
    pub sel: bool,
}

/// On/off state of the four MC transistors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransistorState {
    /// T1 — sensing-path select.
    pub t1: bool,
    /// T2 — charge-path switch (bottom plate → VDD).
    pub t2: bool,
    /// T3 — discharge-path switch (bottom plate → ground).
    pub t3: bool,
    /// T4 — sense-node follower.
    pub t4: bool,
}

/// What the bottom plate is connected to in a given phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rail {
    /// The 3.3 V digital supply (sensing charge phase).
    Vdd,
    /// Ground (sensing discharge phase).
    Ground,
    /// The high-voltage EWOD actuation rail.
    HighVoltage,
    /// Disconnected.
    Floating,
}

impl fmt::Display for Rail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rail::Vdd => "VDD",
            Rail::Ground => "GND",
            Rail::HighVoltage => "HV",
            Rail::Floating => "floating",
        };
        f.write_str(s)
    }
}

/// Operating phase of one microelectrode cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McPhase {
    /// Droplet actuation: the electrode is driven by the EWOD rail.
    Actuate,
    /// Sensing, charge sub-phase (bottom plate rises to VDD).
    SenseCharge,
    /// Sensing, discharge sub-phase (bottom plate falls to ground; the
    /// DFFs sample during this phase).
    SenseDischarge,
    /// Neither actuated nor selected.
    Idle,
}

impl McPhase {
    /// The control signals the scan register asserts in this phase
    /// (Section III-B).
    #[must_use]
    pub const fn signals(self) -> ControlSignals {
        match self {
            McPhase::Actuate => ControlSignals {
                act: true,
                act_b: false,
                sel: false,
            },
            McPhase::SenseCharge => ControlSignals {
                act: false,
                act_b: true,
                sel: true,
            },
            McPhase::SenseDischarge => ControlSignals {
                act: false,
                act_b: false,
                sel: true,
            },
            McPhase::Idle => ControlSignals {
                act: false,
                act_b: false,
                sel: false,
            },
        }
    }

    /// The transistor pattern the signals produce.
    #[must_use]
    pub const fn transistors(self) -> TransistorState {
        let s = self.signals();
        TransistorState {
            // T1 and T4 are the sensing-path pair: on whenever SEL is up.
            t1: s.sel,
            t4: s.sel,
            // T2 charges (on with ACT_b high), T3 discharges (on with
            // ACT_b low while sensing).
            t2: s.sel && s.act_b,
            t3: s.sel && !s.act_b,
        }
    }

    /// The bottom-plate connection in this phase.
    #[must_use]
    pub const fn bottom_plate(self) -> Rail {
        match self {
            McPhase::Actuate => Rail::HighVoltage,
            McPhase::SenseCharge => Rail::Vdd,
            McPhase::SenseDischarge => Rail::Ground,
            McPhase::Idle => Rail::Floating,
        }
    }

    /// Whether the droplet above is being pulled (EWOD force active).
    #[must_use]
    pub const fn exerts_ewod_force(self) -> bool {
        matches!(self, McPhase::Actuate)
    }

    /// The sensing sequence of one operational cycle (Section III-A):
    /// charge then discharge.
    #[must_use]
    pub const fn sensing_sequence() -> [McPhase; 2] {
        [McPhase::SenseCharge, McPhase::SenseDischarge]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_phase_matches_paper_truth_table() {
        // "The controller sets ACT = 0, ACT_b = 1, and SEL = 1 …
        //  transistors T1, T2, and T4 are switched on while T3 is off,
        //  the bottom plate is connected to VDD."
        let phase = McPhase::SenseCharge;
        assert_eq!(
            phase.signals(),
            ControlSignals {
                act: false,
                act_b: true,
                sel: true
            }
        );
        let t = phase.transistors();
        assert!(t.t1 && t.t2 && t.t4 && !t.t3);
        assert_eq!(phase.bottom_plate(), Rail::Vdd);
    }

    #[test]
    fn discharge_phase_matches_paper_truth_table() {
        // "Next, the control circuit sets ACT_b = 0, and transistors T1,
        //  T3 and T4 are switched on while T2 is switched off … the bottom
        //  plate is now connected to ground."
        let phase = McPhase::SenseDischarge;
        let t = phase.transistors();
        assert!(t.t1 && t.t3 && t.t4 && !t.t2);
        assert_eq!(phase.bottom_plate(), Rail::Ground);
    }

    #[test]
    fn actuation_drives_the_high_voltage_rail() {
        let phase = McPhase::Actuate;
        assert!(phase.signals().act);
        assert!(!phase.signals().sel);
        assert_eq!(phase.bottom_plate(), Rail::HighVoltage);
        assert!(phase.exerts_ewod_force());
        // The sensing path must be isolated while actuating.
        let t = phase.transistors();
        assert!(!t.t1 && !t.t2 && !t.t3 && !t.t4);
    }

    #[test]
    fn idle_cell_floats() {
        assert_eq!(McPhase::Idle.bottom_plate(), Rail::Floating);
        assert!(!McPhase::Idle.exerts_ewod_force());
    }

    #[test]
    fn sensing_sequence_charges_then_discharges() {
        let [a, b] = McPhase::sensing_sequence();
        assert_eq!(a.bottom_plate(), Rail::Vdd);
        assert_eq!(b.bottom_plate(), Rail::Ground);
    }

    #[test]
    fn only_actuation_exerts_force() {
        for phase in [McPhase::SenseCharge, McPhase::SenseDischarge, McPhase::Idle] {
            assert!(!phase.exerts_ewod_force(), "{phase:?}");
        }
    }
}
