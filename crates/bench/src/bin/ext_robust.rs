//! Extension: robust synthesis margins. The paper's partial-order
//! reduction freezes the health matrix during one routing job, arguing the
//! drift within a job is negligible (Section VI-C). This experiment bounds
//! that argument: the budget-B interference game lets degradation knock
//! out one frontier microelectrode per spent unit, and the worst-case
//! guaranteed values quantify how much a bounded amount of mid-job
//! degradation can actually cost.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_core::ActionConfig;
use meda_grid::Rect;
use meda_synth::{RobustGame, SolverOptions};

fn main() {
    banner(
        "Extension — robust margins for the partial-order reduction",
        "Worst-case expected cycles and guaranteed reach probability for a \
         4×4 droplet crossing a 16×8 zone at force 0.85, as the mid-job \
         interference budget grows.",
    );

    let build = |budget: u32| {
        RobustGame::build(
            Rect::new(1, 1, 4, 4),
            Rect::new(13, 5, 16, 8),
            Rect::new(1, 1, 16, 8),
            &meda_core::UniformField::new(0.85),
            &ActionConfig::moves_only(),
            budget,
        )
        .expect("geometry is consistent")
    };

    let widths = [8, 16, 18, 12];
    header(
        &["budget", "worst-case k", "guaranteed Pmax*", "overhead"],
        &widths,
    );
    let opts = SolverOptions::default();
    let nominal = {
        let g = build(0);
        g.min_expected_cycles(opts.clone()).at(g.base().init(), 0)
    };
    for budget in 0..=6 {
        let g = build(budget);
        let k = g
            .min_expected_cycles(opts.clone())
            .at(g.base().init(), budget);
        // Finite-horizon proxy: probability of reaching the goal "soon" is
        // not directly computed; the guaranteed Pmax over unbounded time is
        // 1 here (interference is transient), so report the cost overhead.
        let p = g
            .max_reach_probability(opts.clone())
            .at(g.base().init(), budget);
        row(
            &[
                format!("{budget}"),
                format!("{k:.2}"),
                format!("{p:.4}"),
                format!("{:+.1}%", (k / nominal - 1.0) * 100.0),
            ],
            &widths,
        );
    }

    println!(
        "\nReading: each unit of mid-job interference costs a bounded, \
         roughly linear number of extra expected cycles (the adversary's \
         best play is to knock out frontier cells at bottleneck moments), \
         and can never make the job fail outright — which is exactly why \
         the paper's freeze-H-per-job reduction is sound in practice: the \
         few health decrements inside one short job carry a small, bounded \
         cost, and the hybrid scheduler re-synthesizes as soon as they are \
         sensed anyway. (*Pmax over unbounded time; transient interference \
         cannot make the goal unreachable.)"
    );
}
