use std::fmt;

/// The type of a microfluidic operation (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoType {
    /// `dis` — dispense a droplet from a reservoir onto the biochip
    /// (0 in, 1 out).
    Dispense,
    /// `out` — route a droplet off the biochip as a product (1 in, 0 out).
    Output,
    /// `dsc` — route a droplet off the biochip as waste (1 in, 0 out).
    Discard,
    /// `mix` — merge two droplets into one (2 in, 1 out).
    Mix,
    /// `spt` — split a droplet into two (1 in, 2 out).
    Split,
    /// `dlt` — dilute a droplet using a buffer droplet: a mix followed by a
    /// split (2 in, 2 out).
    Dilute,
    /// `mag` — magnetic-bead sensing/incubation at a module (1 in, 1 out).
    Magnetic,
}

impl MoType {
    /// Number of input droplets (Table III).
    #[must_use]
    pub const fn inputs(self) -> usize {
        match self {
            Self::Dispense => 0,
            Self::Output | Self::Discard | Self::Split | Self::Magnetic => 1,
            Self::Mix | Self::Dilute => 2,
        }
    }

    /// Number of output droplets (Table III).
    #[must_use]
    pub const fn outputs(self) -> usize {
        match self {
            Self::Output | Self::Discard => 0,
            Self::Dispense | Self::Mix | Self::Magnetic => 1,
            Self::Split | Self::Dilute => 2,
        }
    }

    /// Number of distinct center locations the operation needs (`loc` list):
    /// split and dilute place their two outputs at two locations.
    #[must_use]
    pub const fn locations(self) -> usize {
        match self {
            Self::Split | Self::Dilute => 2,
            _ => 1,
        }
    }

    /// Operational cycles the module itself runs for once its droplets are
    /// in place (mixing loops, bead incubation, …). Transport is extra.
    /// These MCs are actuated every cycle of the operation, which is what
    /// concentrates wear at module sites (Section VII-C's "excessive
    /// actuation of the same set of MCs").
    #[must_use]
    pub const fn execution_cycles(self) -> u64 {
        match self {
            Self::Dispense | Self::Output | Self::Discard => 0,
            Self::Split => 10,
            Self::Mix => 15,
            Self::Dilute => 25,
            Self::Magnetic => 30,
        }
    }

    /// The paper's abbreviation (`dis`, `out`, `dsc`, `mix`, `spt`, `dlt`,
    /// `mag`).
    #[must_use]
    pub const fn abbrev(self) -> &'static str {
        match self {
            Self::Dispense => "dis",
            Self::Output => "out",
            Self::Discard => "dsc",
            Self::Mix => "mix",
            Self::Split => "spt",
            Self::Dilute => "dlt",
            Self::Magnetic => "mag",
        }
    }
}

impl fmt::Display for MoType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// One microfluidic operation `MO = (type, pre, loc)` (Section VI-A), plus
/// the dispensed droplet size for `dis` operations (the only type whose
/// droplet size is not inferred from its inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct MicroOp {
    /// Operation type.
    pub op: MoType,
    /// Predecessor operation ids (`pre`), in input order.
    pub pre: Vec<usize>,
    /// Center location(s) (`loc`); two entries for split/dilute.
    pub locs: Vec<(f64, f64)>,
    /// Dispensed droplet size `(w, h)`; `Some` only for `dis`.
    pub dispense_size: Option<(u32, u32)>,
}

impl MicroOp {
    /// The primary center location `loc[0]`.
    #[must_use]
    pub fn loc(&self) -> (f64, f64) {
        self.locs[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_droplet_counts() {
        let expect = [
            (MoType::Dispense, 0, 1),
            (MoType::Output, 1, 0),
            (MoType::Discard, 1, 0),
            (MoType::Mix, 2, 1),
            (MoType::Split, 1, 2),
            (MoType::Dilute, 2, 2),
            (MoType::Magnetic, 1, 1),
        ];
        for (t, inputs, outputs) in expect {
            assert_eq!(t.inputs(), inputs, "{t} inputs");
            assert_eq!(t.outputs(), outputs, "{t} outputs");
        }
    }

    #[test]
    fn split_and_dilute_need_two_locations() {
        assert_eq!(MoType::Split.locations(), 2);
        assert_eq!(MoType::Dilute.locations(), 2);
        assert_eq!(MoType::Mix.locations(), 1);
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(MoType::Dispense.to_string(), "dis");
        assert_eq!(MoType::Discard.to_string(), "dsc");
        assert_eq!(MoType::Dilute.to_string(), "dlt");
    }
}
