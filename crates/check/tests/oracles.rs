//! The differential oracles at their default budgets.
//!
//! These are the same suite entries `meda check` runs: corpus replay is on
//! (shared `tests/corpus/` directory), and `MEDA_CHECK_CASES` scales the
//! budget without code changes.

use meda_check::oracle::{
    check_cache_transparency, check_fleet_separation, check_fleet_serial_equivalence,
    check_reconfig_dominance, check_sensing_round_trip, check_sim_vs_mdp,
    check_supervisor_dominance,
};
use meda_check::{cases_from_env, default_corpus_dir, Config};

fn config(default_cases: usize) -> Config {
    Config::default()
        .with_cases(cases_from_env(default_cases))
        .with_corpus(default_corpus_dir())
}

#[test]
fn sim_and_mdp_agree_on_step_semantics() {
    let out = check_sim_vs_mdp(&config(48));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}

#[test]
fn sensing_round_trip_reconstructs_droplets() {
    let out = check_sensing_round_trip(&config(64));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}

#[test]
fn supervised_execution_dominates_plain_runs() {
    let out = check_supervisor_dominance(&config(4));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}

#[test]
fn reconfiguration_rung_dominates_the_plain_ladder() {
    let out = check_reconfig_dominance(&config(4));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}

#[test]
fn concurrent_fleets_respect_fluidic_separation() {
    let out = check_fleet_separation(&config(16));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}

#[test]
fn serial_fleet_is_bit_identical_to_the_serial_engine() {
    let out = check_fleet_serial_equivalence(&config(4));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}

#[test]
fn warm_cache_routing_is_value_transparent() {
    let out = check_cache_transparency(&config(16));
    assert!(out.passed, "{}", out.report.unwrap_or_default());
}
