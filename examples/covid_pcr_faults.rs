//! COVID-PCR under clustered fault injection: adaptive routing around
//! 2×2 fault clusters (the Section VII-C scenario).
//!
//! ```sh
//! cargo run --release --example covid_pcr_faults
//! ```

use meda::bioassay::{benchmarks, RjHelper};
use meda::grid::ChipDims;
use meda::sim::{
    AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip, DegradationConfig,
    FaultMode, RunConfig,
};
use meda_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = ChipDims::PAPER;
    let plan = RjHelper::new(dims).plan(&benchmarks::covid_pcr())?;
    println!(
        "COVID-PCR: {} operations, {} routing jobs; injecting 3% faulty MCs \
         as 2x2 clusters (sudden failure within 20-200 actuations).\n",
        plan.operations().len(),
        plan.total_jobs()
    );

    let config = DegradationConfig::paper_with_faults(FaultMode::Clustered, 0.03);
    let runner = BioassayRunner::new(RunConfig::default());

    let mut base_wins = 0u32;
    let mut adap_wins = 0u32;
    let trials = 5;
    for trial in 0..trials {
        let seed = 900 + trial;

        let mut rng = meda_rng::StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(dims, &config, &mut rng);
        let mut baseline = BaselineRouter::new();
        let b = runner.run(&plan, &mut chip, &mut baseline, &mut rng);

        let mut rng = meda_rng::StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(dims, &config, &mut rng);
        let mut adaptive = AdaptiveRouter::new(AdaptiveConfig::paper());
        let a = runner.run(&plan, &mut chip, &mut adaptive, &mut rng);

        println!(
            "trial {trial}: baseline {:?} ({} cycles) | adaptive {:?} ({} cycles, {} re-syntheses)",
            b.status,
            b.cycles,
            a.status,
            a.cycles,
            adaptive.resynth_count()
        );
        base_wins += u32::from(b.is_success());
        adap_wins += u32::from(a.is_success());
    }

    println!(
        "\ncompleted: baseline {base_wins}/{trials}, adaptive {adap_wins}/{trials} \
         (paper Fig. 16: clustered faults act as roadblocks the baseline \
         cannot route around)"
    );
    Ok(())
}
