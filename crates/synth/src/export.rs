//! Export of the induced routing MDP in PRISM's explicit-state format —
//! the `.sta` / `.tra` / `.lab` triple `prism -importmodel` consumes.
//!
//! The paper runs its queries through PRISM-games; this crate solves them
//! natively (DESIGN.md §3). The exporter closes the loop: any model this
//! library builds can be re-checked in PRISM with
//!
//! ```text
//! prism -importmodel model.sta,model.tra,model.lab -mdp \
//!       -pf 'Rmin=? [ F "goal" ]'
//! ```
//!
//! and the result compared against [`crate::min_expected_cycles`]. (The
//! `□¬hazard` part is structural in the exported model — see
//! [`meda_core::HazardHandling`].)

use std::fmt::Write as _;

use meda_core::RoutingMdp;

/// The PRISM explicit-state description of a routing MDP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrismModel {
    /// `.sta` — state index to `(xa, ya, xb, yb)` valuation.
    pub states: String,
    /// `.tra` — `state choice successor probability [action]` rows.
    pub transitions: String,
    /// `.lab` — `init` and `goal` labels.
    pub labels: String,
}

/// Exports a routing MDP to PRISM's explicit format.
///
/// # Examples
///
/// ```
/// use meda_core::{ActionConfig, RoutingMdp, UniformField};
/// use meda_grid::Rect;
/// use meda_synth::to_prism_explicit;
///
/// let mdp = RoutingMdp::build(
///     Rect::new(1, 1, 2, 2),
///     Rect::new(4, 4, 5, 5),
///     Rect::new(1, 1, 5, 5),
///     &UniformField::pristine(),
///     &ActionConfig::cardinal_only(),
/// )?;
/// let model = to_prism_explicit(&mdp);
/// assert!(model.states.starts_with("(xa,ya,xb,yb)"));
/// assert!(model.labels.contains("0=\"init\""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn to_prism_explicit(mdp: &RoutingMdp) -> PrismModel {
    let mut states = String::from("(xa,ya,xb,yb)\n");
    for i in mdp.state_indices() {
        let r = mdp.state(i);
        let _ = writeln!(states, "{i}:({},{},{},{})", r.xa, r.ya, r.xb, r.yb);
    }

    // Header: #states #choices #transitions.
    let stats = mdp.stats();
    // Absorbing states need an explicit self-loop choice in PRISM's
    // explicit format (deadlocks are rejected).
    let absorbing = mdp
        .state_indices()
        .filter(|&i| mdp.choices(i).is_empty())
        .count();
    let mut transitions = format!(
        "{} {} {}\n",
        mdp.len(),
        stats.choices + absorbing,
        stats.transitions + absorbing
    );
    for i in mdp.state_indices() {
        if mdp.choices(i).is_empty() {
            let _ = writeln!(transitions, "{i} 0 {i} 1 done");
            continue;
        }
        for (choice_idx, (action, branch)) in mdp.choices(i).iter().enumerate() {
            for (j, p) in branch.iter() {
                let _ = writeln!(transitions, "{i} {choice_idx} {j} {p} {action}");
            }
        }
    }

    let mut labels = String::from("0=\"init\" 1=\"deadlock\" 2=\"goal\"\n");
    let _ = writeln!(labels, "{}: 0", mdp.init());
    for i in mdp.state_indices() {
        if mdp.is_goal(i) {
            let _ = writeln!(labels, "{i}: 2");
        }
    }

    PrismModel {
        states,
        transitions,
        labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_core::{ActionConfig, UniformField};
    use meda_grid::Rect;

    fn model() -> (RoutingMdp, PrismModel) {
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 2, 2),
            Rect::new(4, 4, 5, 5),
            Rect::new(1, 1, 5, 5),
            &UniformField::new(0.8),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let prism = to_prism_explicit(&mdp);
        (mdp, prism)
    }

    #[test]
    fn state_file_lists_every_state_once() {
        let (mdp, prism) = model();
        // Header line + one line per state.
        assert_eq!(prism.states.lines().count(), mdp.len() + 1);
        let init = mdp.state(mdp.init());
        assert!(prism.states.contains(&format!(
            "0:({},{},{},{})",
            init.xa, init.ya, init.xb, init.yb
        )));
    }

    #[test]
    fn transition_header_matches_body() {
        let (_, prism) = model();
        let mut lines = prism.transitions.lines();
        let header: Vec<usize> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .map(|t| t.parse().unwrap())
            .collect();
        let body: Vec<&str> = lines.collect();
        assert_eq!(header[2], body.len(), "transition count matches");
        // Choices: distinct (state, choice) pairs. (BTreeSet keeps even
        // test diagnostics deterministically ordered.)
        let mut pairs = std::collections::BTreeSet::new();
        for line in &body {
            let mut tok = line.split_whitespace();
            let s: usize = tok.next().unwrap().parse().unwrap();
            let c: usize = tok.next().unwrap().parse().unwrap();
            pairs.insert((s, c));
        }
        assert_eq!(header[1], pairs.len(), "choice count matches");
    }

    #[test]
    fn per_choice_probabilities_sum_to_one() {
        let (_, prism) = model();
        let mut sums: std::collections::BTreeMap<(usize, usize), f64> =
            std::collections::BTreeMap::new();
        for line in prism.transitions.lines().skip(1) {
            let mut tok = line.split_whitespace();
            let s: usize = tok.next().unwrap().parse().unwrap();
            let c: usize = tok.next().unwrap().parse().unwrap();
            let _succ: usize = tok.next().unwrap().parse().unwrap();
            let p: f64 = tok.next().unwrap().parse().unwrap();
            *sums.entry((s, c)).or_insert(0.0) += p;
        }
        for ((s, c), total) in sums {
            assert!((total - 1.0).abs() < 1e-9, "state {s} choice {c}: {total}");
        }
    }

    #[test]
    fn goal_states_are_labelled_and_self_looping() {
        let (mdp, prism) = model();
        let goal_idx = mdp.state_index(Rect::new(4, 4, 5, 5)).unwrap();
        assert!(prism.labels.contains(&format!("{goal_idx}: 2")));
        assert!(prism
            .transitions
            .lines()
            .any(|l| l == format!("{goal_idx} 0 {goal_idx} 1 done")));
    }

    #[test]
    fn init_label_points_at_state_zero() {
        let (_, prism) = model();
        assert!(prism.labels.lines().any(|l| l == "0: 0"));
    }
}
