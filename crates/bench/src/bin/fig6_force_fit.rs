//! Fig. 6 — measured and fitted relative EWOD force versus the number of
//! actuations: synthetic PCB measurements are fitted with the exponential
//! model F̄ = τ^(2n/c) and must recover the paper's (τ, c) constants with
//! R²_adj > 0.94.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_degradation::{ActuationMode, DegradationParams, ExponentialFit, PcbExperiment};
use meda_rng::SeedableRng;
use meda_rng::StdRng;

fn main() {
    banner(
        "Fig. 6 — relative EWOD force vs number of actuations",
        "Markers: synthetic measurements from the PCB model. Lines: the \
         fitted exponential F̄ = τ^(2n/c). Paper constants: (0.556, 822.7), \
         (0.543, 805.5), (0.530, 788.4), all with R²_adj > 0.94.",
    );

    let cases = [
        (
            "2mm",
            PcbExperiment::paper_2mm(ActuationMode::ChargeTrapping),
            DegradationParams::PAPER_2MM,
        ),
        (
            "3mm",
            PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping),
            DegradationParams::PAPER_3MM,
        ),
        (
            "4mm",
            PcbExperiment::paper_4mm(ActuationMode::ChargeTrapping),
            DegradationParams::PAPER_4MM,
        ),
    ];

    let widths = [8, 12, 12, 12, 12, 10];
    header(
        &["size", "paper tau", "paper c", "fit c", "c error", "R2_adj"],
        &widths,
    );
    let mut rng = StdRng::seed_from_u64(66);
    let mut force_tables = Vec::new();
    for (name, experiment, paper) in &cases {
        let samples = experiment.force_measurements(&mut rng, 9, 100);
        let fit = ExponentialFit::fit_force(&samples).expect("well-formed samples");
        let recovered = fit.params_for_tau(paper.tau);
        row(
            &[
                (*name).to_string(),
                format!("{:.3}", paper.tau),
                format!("{:.1}", paper.c),
                format!("{:.1}", recovered.c),
                format!("{:+.1}%", (recovered.c - paper.c) / paper.c * 100.0),
                format!("{:.4}", fit.r2_adjusted),
            ],
            &widths,
        );
        force_tables.push((*name, samples, fit));
    }

    println!("\nMeasured (m) vs fitted (f) relative force:");
    let widths = [8, 9, 9, 9, 9, 9, 9];
    header(
        &["n", "2mm m", "2mm f", "3mm m", "3mm f", "4mm m", "4mm f"],
        &widths,
    );
    for i in 0..9 {
        let n = force_tables[0].1[i].0;
        let mut cells = vec![format!("{n}")];
        for (_, samples, fit) in &force_tables {
            cells.push(format!("{:.3}", samples[i].1));
            cells.push(format!("{:.3}", fit.predict(n)));
        }
        row(&cells, &widths);
    }

    println!(
        "\nPaper shape: monotone exponential decay, larger electrodes \
         slightly faster (τ₂ > τ₃ > τ₄), fits within a few percent of the \
         published constants."
    );
}
