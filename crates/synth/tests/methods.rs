//! Cross-method solver agreement, meda-check style: topological value
//! iteration, prioritized sweeping, and the certified `f32` fast path must
//! land on the same `Pmax`/`Rmin` fixed points as the baseline Gauss–Seidel
//! engine across generated chips, droplets, and degradation fields — with
//! shrinking to a small witness on disagreement.

use meda_check::oracle::{routing_scenario, RoutingScenario};
use meda_check::{cases_from_env, run_property, Config, Outcome};
use meda_core::{ActionConfig, RawField, RoutingMdp};
use meda_grid::{Cell, ChipDims, Grid, Rect};
use meda_synth::{max_reach_probability, min_expected_cycles, SolverMethod, SolverOptions};

fn with(method: SolverMethod) -> SolverOptions {
    SolverOptions {
        method,
        ..SolverOptions::default()
    }
}

/// Relative agreement with matching infinities. An ε-Bellman-residual only
/// bounds the *value* error by ε/(1−γ), where the per-sweep contraction γ
/// depends on the field, so the tolerance must sit above the residual
/// threshold: ~2e-7 relative for the f64 engines (epsilon 1e-9), and the
/// certified `f32_epsilon` amplified the same way for the fast path.
fn agree(a: &[f64], b: &[f64], rel: f64, what: &str) -> Result<(), String> {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.is_infinite() || y.is_infinite() {
            if x != y {
                return Err(format!("{what}: state {i} finite/infinite: {x} vs {y}"));
            }
        } else if (x - y).abs() > rel * f64::max(1.0, y.abs()) {
            return Err(format!("{what}: state {i}: {x} vs {y}"));
        }
    }
    Ok(())
}

fn check_methods(s: &RoutingScenario) -> Result<(), String> {
    let mdp = s.build().map_err(|e| format!("{e:?}"))?;
    let base_p = max_reach_probability(&mdp, with(SolverMethod::GaussSeidel));
    let base_r = min_expected_cycles(&mdp, with(SolverMethod::GaussSeidel));
    if !base_p.converged || !base_r.converged {
        return Err("baseline Gauss–Seidel did not converge".into());
    }
    for method in [SolverMethod::Topological, SolverMethod::Prioritized] {
        let p = max_reach_probability(&mdp, with(method));
        let r = min_expected_cycles(&mdp, with(method));
        if !p.converged || !r.converged {
            return Err(format!("{method:?} did not converge"));
        }
        agree(&p.values, &base_p.values, 2e-7, &format!("{method:?} Pmax"))?;
        agree(&r.values, &base_r.values, 2e-7, &format!("{method:?} Rmin"))?;
    }
    // The f32 fast path: certified-and-accepted or transparently fallen
    // back, either way within its advertised tolerance of the baseline.
    let f32_opts = SolverOptions {
        float32: true,
        ..SolverOptions::default()
    };
    let p32 = max_reach_probability(&mdp, f32_opts.clone());
    let r32 = min_expected_cycles(&mdp, f32_opts);
    if !p32.converged || !r32.converged {
        return Err("f32 fast path did not converge".into());
    }
    if !(p32.float32 || p32.float32_fallback) || !(r32.float32 || r32.float32_fallback) {
        return Err("f32 fast path neither certified nor fell back".into());
    }
    agree(&p32.values, &base_p.values, 1e-2, "f32 Pmax")?;
    agree(&r32.values, &base_r.values, 1e-2, "f32 Rmin")?;
    Ok(())
}

#[test]
fn all_solver_methods_agree_on_generated_scenarios() {
    let gen = routing_scenario(4, 8);
    let config = Config::default().with_cases(cases_from_env(24));
    let out = run_property("solver-methods-agree", &config, &gen, check_methods);
    if let Outcome::Failed(f) = out {
        panic!("solver methods disagree:\n{}", f.report());
    }
}

/// A hand-seeded fixture whose condensation has exactly one non-trivial
/// component (reversible moves glue all non-goal states together), forcing
/// the topological engine's within-SCC iteration path rather than the
/// one-backup acyclic shortcut — and it must still match the baseline.
#[test]
fn cyclic_scc_fixture_forces_within_scc_iteration() {
    let dims = ChipDims::new(9, 9);
    let mut f = Grid::new(dims, 1.0);
    // A weak diagonal band keeps the field interesting without
    // disconnecting anything.
    for k in 2..=7 {
        f[Cell::new(k, k)] = 0.4;
    }
    let mdp = RoutingMdp::build(
        Rect::new(1, 1, 2, 2),
        Rect::new(8, 8, 9, 9),
        Rect::new(1, 1, 9, 9),
        &RawField::new(f),
        &ActionConfig::cardinal_only(),
    )
    .unwrap();
    let cond = mdp.condensation();
    assert_eq!(cond.nontrivial(), 1, "expected one big cyclic component");
    assert!(cond.largest() > 1);
    let topo = min_expected_cycles(&mdp, with(SolverMethod::Topological));
    let base = min_expected_cycles(&mdp, with(SolverMethod::GaussSeidel));
    assert!(topo.converged && base.converged);
    agree(&topo.values, &base.values, 2e-7, "cyclic fixture Rmin").unwrap();
}
