//! Fig. 2 — simulation of the new microelectrode design: the sensing-node
//! charging waveforms for healthy / partially degraded / completely
//! degraded MCs, the two skewed DFF clock edges, and the resulting 2-bit
//! health readings.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_cell::{CellParams, SensingCircuit};

fn main() {
    let params = CellParams::paper();
    let circuit = SensingCircuit::new(params);

    banner(
        "Fig. 2 — MC sensing waveforms (Table I parameters)",
        "Threshold-crossing times vs. the two DFF clock edges; the added \
         DFF samples 5 ns after the original.",
    );

    println!(
        "VDD = {:.1} V, Vth = {:.2} V, sense R = {:.3} GΩ, DFF skew = {:.0} ns",
        params.vdd,
        params.vth,
        params.r_sense / 1e9,
        params.dff_skew * 1e9
    );
    println!(
        "original DFF edge at {:.3} µs, added DFF edge at {:.3} µs\n",
        params.t_clk_original * 1e6,
        params.t_clk_added() * 1e6
    );

    let widths = [22, 14, 16, 10, 8];
    header(
        &[
            "electrode state",
            "C (fF)",
            "crossing (µs)",
            "vs edges",
            "reading",
        ],
        &widths,
    );
    let cases = [
        ("healthy", params.cap_healthy),
        ("partially degraded", params.cap_partial),
        ("completely degraded", params.cap_degraded),
    ];
    for (name, cap) in cases {
        let t = circuit.crossing_time(cap);
        let rel = if t < params.t_clk_original {
            "before both"
        } else if t < params.t_clk_added() {
            "between"
        } else {
            "after both"
        };
        row(
            &[
                name.to_string(),
                format!("{:.3}", cap * 1e15),
                format!("{:.4}", t * 1e6),
                rel.to_string(),
                circuit.sense(cap).to_string(),
            ],
            &widths,
        );
    }

    println!("\nWaveform samples (node voltage in V at t around the DFF edges):");
    let widths = [12, 10, 10, 10];
    header(&["t (µs)", "healthy", "partial", "degraded"], &widths);
    let t0 = params.t_clk_original;
    for i in -4i32..=4 {
        let t = t0 + f64::from(i) * 2.5e-9;
        row(
            &[
                format!("{:.4}", t * 1e6),
                format!("{:.4}", circuit.waveform(params.cap_healthy).voltage_at(t)),
                format!("{:.4}", circuit.waveform(params.cap_partial).voltage_at(t)),
                format!("{:.4}", circuit.waveform(params.cap_degraded).voltage_at(t)),
            ],
            &widths,
        );
    }

    println!(
        "\nPaper shape: healthy → \"11\", partial → \"01\", degraded → \"00\" \
         with a 5 ns inter-crossing spacing — reproduced above."
    );
}
