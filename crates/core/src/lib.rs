//! Droplet, actuation, and stochastic-game models for MEDA biochips —
//! the core formalism of Sections V–VI of *"Formal Synthesis of Adaptive
//! Droplet Routing for MEDA Biochips"* (DATE 2021).
//!
//! A droplet is modeled by its rectangular actuation pattern
//! `δ = (x_a, y_a, x_b, y_b)` ([`meda_grid::Rect`]). The controller
//! manipulates it through 20 microfluidic [`Action`]s — single- and
//! double-step cardinal moves, ordinal moves, and shape-morphing
//! transformations — whose success depends on the health of the
//! microelectrodes in the action's *frontier set* (Table II). Degraded
//! frontier MCs weaken the EWOD pull, so each action induces a probability
//! distribution over outcomes (Section V-B), provided here by
//! [`transitions`] over any [`ForceProvider`].
//!
//! The full system is the stochastic multiplayer game [`MedaGame`]
//! (Section V-C) between the droplet controller (player ①) and chip
//! degradation (player ②). For synthesis, [`RoutingMdp`] applies the
//! paper's partial-order reduction (Section VI-C): within one routing job
//! the health matrix is frozen at its current value, reducing the game to a
//! Markov decision process over droplet positions inside the hazard bounds.
//!
//! # Examples
//!
//! Example 2/3 of the paper — frontier sets and transition probabilities of
//! the north-east move:
//!
//! ```
//! use meda_core::{frontier_set, Action, Dir, Ordinal};
//! use meda_grid::Rect;
//!
//! let delta = Rect::new(3, 2, 7, 5);
//! let fr_e = frontier_set(delta, Action::MoveOrdinal(Ordinal::NE), Dir::E).unwrap();
//! let fr_n = frontier_set(delta, Action::MoveOrdinal(Ordinal::NE), Dir::N).unwrap();
//! assert_eq!(fr_e, Rect::new(8, 3, 8, 6));
//! assert_eq!(fr_n, Rect::new(4, 6, 8, 6));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
mod config;
mod force;
mod frontier;
mod hazard;
mod mdp;
mod mec;
mod smg;
mod transition;

pub use action::{Action, Dir, Ordinal};
pub use config::ActionConfig;
pub use force::{
    DegradationField, ForceProvider, HealthField, HealthInterpretation, RawField, UniformField,
};
pub use frontier::frontier_set;
pub use hazard::{hazard_digest, HazardBox, HazardedField};
pub use mdp::{
    Branch, BuildError, Choice, Choices, ChoicesIter, Condensation, CsrView, HazardHandling,
    MdpStats, RoutingMdp,
};
pub use mec::{mec_decomposition, MecDecomposition, NO_MEC};
pub use smg::{DegradationMove, GameState, MedaGame, Player};
pub use transition::{transitions, transitions_into, Outcome};
