//! Property-style tests for the synthesis engine: Bellman-optimality
//! invariants, probability bounds, and strategy soundness on random
//! degradation fields, replayed over a deterministic seeded input space.

use meda_core::{
    ActionConfig, HazardHandling, HealthField, HealthInterpretation, RawField, RoutingMdp,
    UniformField,
};
use meda_degradation::quantize_health;
use meda_grid::{Cell, ChipDims, Grid, Rect};
use meda_rng::{Rng, SeedableRng, StdRng};
use meda_synth::{max_reach_probability, min_expected_cycles, synthesize, Query, SolverOptions};

const CASES: usize = 32;

/// A random force field over a 12×12 chip with forces bounded away from 0
/// so the goal stays almost-surely reachable.
fn arb_field(rng: &mut StdRng) -> RawField {
    let dims = ChipDims::new(12, 12);
    let values: Vec<f64> = (0..144).map(|_| rng.gen_range(0.2..1.0)).collect();
    let grid = Grid::from_fn(dims, |c: Cell| {
        values[(c.y as usize - 1) * 12 + (c.x as usize - 1)]
    });
    RawField::new(grid)
}

fn build(field: &RawField, config: &ActionConfig) -> RoutingMdp {
    RoutingMdp::build(
        Rect::new(1, 1, 3, 3),
        Rect::new(10, 10, 12, 12),
        Rect::new(1, 1, 12, 12),
        field,
        config,
    )
    .unwrap()
}

#[test]
fn reach_probabilities_lie_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0x57E0);
    for _ in 0..CASES {
        let field = arb_field(&mut rng);
        let mdp = build(&field, &ActionConfig::cardinal_only());
        let r = max_reach_probability(&mdp, SolverOptions::default());
        assert!(r.converged);
        for (i, v) in r.values.iter().enumerate() {
            assert!((0.0..=1.0 + 1e-9).contains(v), "state {i}: {v}");
        }
        // With positive forces the goal is almost surely reachable.
        assert!(r.values[mdp.init()] > 1.0 - 1e-6);
    }
}

#[test]
fn expected_cycles_bounded_below_by_distance() {
    let mut rng = StdRng::seed_from_u64(0x57E1);
    for _ in 0..CASES {
        // Manhattan distance between start and goal anchors is a hard lower
        // bound on cycles when only single steps are available.
        let field = arb_field(&mut rng);
        let mdp = build(&field, &ActionConfig::cardinal_only());
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        assert!(r.converged);
        let v0 = r.values[mdp.init()];
        assert!(v0 >= 18.0 - 1e-9, "v0 = {v0}"); // |10-1| + |10-1|
                                                 // And above by the all-worst-force bound: 18 steps at p ≥ 0.2.
        assert!(v0 <= 18.0 / 0.2 + 1e-6, "v0 = {v0}");
    }
}

#[test]
fn richer_action_sets_never_hurt() {
    let mut rng = StdRng::seed_from_u64(0x57E2);
    for _ in 0..CASES {
        let field = arb_field(&mut rng);
        let cardinal = build(&field, &ActionConfig::cardinal_only());
        let full = build(&field, &ActionConfig::default());
        let vc = min_expected_cycles(&cardinal, SolverOptions::default()).values[cardinal.init()];
        let vf = min_expected_cycles(&full, SolverOptions::default()).values[full.init()];
        assert!(vf <= vc + 1e-6, "full {vf} vs cardinal {vc}");
    }
}

#[test]
fn bellman_optimality_holds_at_the_fixed_point() {
    let mut rng = StdRng::seed_from_u64(0x57E3);
    for _ in 0..CASES {
        let field = arb_field(&mut rng);
        let mdp = build(&field, &ActionConfig::cardinal_only());
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        for i in mdp.state_indices() {
            if mdp.is_goal(i) || r.values[i].is_infinite() {
                continue;
            }
            // v(i) = 1 + min_a Σ p v(s') (solving self-loops exactly).
            let mut best = f64::INFINITY;
            for (_, branch) in mdp.choices(i) {
                let mut p_self = 0.0;
                let mut rest = 0.0;
                for (j, p) in branch.iter() {
                    if j == i {
                        p_self += p;
                    } else {
                        rest += p * r.values[j];
                    }
                }
                if p_self < 1.0 - 1e-12 {
                    best = best.min((1.0 + rest) / (1.0 - p_self));
                }
            }
            assert!((r.values[i] - best).abs() < 1e-6, "state {i}");
        }
    }
}

#[test]
fn strategy_decisions_are_enabled_and_decrease_value() {
    let mut rng = StdRng::seed_from_u64(0x57E4);
    for _ in 0..CASES {
        let field = arb_field(&mut rng);
        let config = ActionConfig::cardinal_only();
        let mdp = build(&field, &config);
        let pi = synthesize(&mdp, Query::MinExpectedCycles).unwrap();
        for i in mdp.state_indices() {
            let droplet = mdp.state(i);
            if let Some(action) = pi.decide(droplet) {
                assert!(action.is_enabled(droplet, mdp.bounds(), &config));
                // The successful successor strictly improves the value.
                let succ = action.apply(droplet);
                let v_here = pi.value_at(droplet).unwrap();
                let v_succ = pi.value_at(succ).unwrap();
                assert!(v_succ < v_here, "{droplet}: {v_succ} !< {v_here}");
            }
        }
    }
}

#[test]
fn pmax_value_is_antitone_in_wall_strength() {
    let mut rng = StdRng::seed_from_u64(0x57E5);
    for case in 0..CASES {
        // A vertical wall of the given force: stronger wall ⇒ higher Pmax.
        // Exercise the zero-force wall on the first case, then random gaps.
        let gap_force = if case == 0 {
            0.0
        } else {
            rng.gen_range(0.0..0.9)
        };
        let dims = ChipDims::new(9, 3);
        let mut grid = Grid::new(dims, 1.0);
        for y in 1..=3 {
            grid[Cell::new(5, y)] = gap_force;
        }
        let field = RawField::new(grid);
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(9, 1, 9, 1),
            Rect::new(1, 1, 9, 3),
            &field,
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let p = max_reach_probability(&mdp, SolverOptions::default()).values[mdp.init()];
        if gap_force > 0.0 {
            assert!(p > 1.0 - 1e-6, "any positive force passes eventually: {p}");
        } else {
            assert!(p < 1e-9, "a zero-force wall is impassable: {p}");
        }
    }
}

/// Quantization bracketing: the optimistic/conservative readings of a
/// quantized health matrix bound the expected completion time computed
/// from the (hidden) true degradation — the guarantee that makes the
/// conservative default safe.
#[test]
fn interpretations_bracket_true_expected_cycles() {
    let mut rng = StdRng::seed_from_u64(0x57E6);
    for _ in 0..16 {
        let dims = ChipDims::new(12, 12);
        let values: Vec<f64> = (0..144).map(|_| rng.gen_range(0.3..1.0)).collect();
        let true_d = Grid::from_fn(dims, |c: Cell| {
            values[(c.y as usize - 1) * 12 + (c.x as usize - 1)]
        });
        let truth = meda_core::DegradationField::new(true_d.clone());
        let readings = true_d.map(|_, d| quantize_health(*d, 2));
        let conservative = HealthField::new(readings.clone(), 2);
        let optimistic =
            HealthField::with_interpretation(readings, 2, HealthInterpretation::Optimistic);

        let config = ActionConfig::cardinal_only();
        let geometry = (
            Rect::new(1, 1, 3, 3),
            Rect::new(10, 10, 12, 12),
            Rect::new(1, 1, 12, 12),
        );
        let solve = |field: &dyn meda_core::ForceProvider| {
            let mdp =
                RoutingMdp::build(geometry.0, geometry.1, geometry.2, field, &config).unwrap();
            min_expected_cycles(&mdp, SolverOptions::default()).values[mdp.init()]
        };
        let v_cons = solve(&conservative);
        let v_true = solve(&truth);
        let v_opt = solve(&optimistic);
        assert!(
            v_opt <= v_true + 1e-6,
            "optimistic {v_opt} !<= true {v_true}"
        );
        assert!(
            v_true <= v_cons + 1e-6,
            "true {v_true} !<= conservative {v_cons}"
        );
    }
}

/// DESIGN.md §5.1: guard-disable and absorbing-sink hazard encodings
/// yield identical optimal values (the optimizer never chooses a
/// sink-reaching action), so the smaller model is safe to use.
#[test]
fn hazard_encodings_agree_on_optimal_values() {
    let mut rng = StdRng::seed_from_u64(0x57E7);
    for _ in 0..16 {
        let field = arb_field(&mut rng);
        let config = ActionConfig::default();
        let args = (
            Rect::new(1, 1, 3, 3),
            Rect::new(10, 10, 12, 12),
            Rect::new(1, 1, 12, 12),
        );
        let guard = RoutingMdp::build_with(
            args.0,
            args.1,
            args.2,
            &field,
            &config,
            HazardHandling::GuardDisable,
        )
        .unwrap();
        let sink = RoutingMdp::build_with(
            args.0,
            args.1,
            args.2,
            &field,
            &config,
            HazardHandling::AbsorbingSink,
        )
        .unwrap();
        let opts = SolverOptions::default();
        let (rg, rs) = (
            min_expected_cycles(&guard, opts.clone()).values[guard.init()],
            min_expected_cycles(&sink, opts.clone()).values[sink.init()],
        );
        assert!((rg - rs).abs() < 1e-6, "Rmin: {rg} vs {rs}");
        let (pg, ps) = (
            max_reach_probability(&guard, opts.clone()).values[guard.init()],
            max_reach_probability(&sink, opts).values[sink.init()],
        );
        assert!((pg - ps).abs() < 1e-6, "Pmax: {pg} vs {ps}");
    }
}

#[test]
fn uniform_field_value_matches_closed_form() {
    // On a uniform field with force p the corridor value is distance / p.
    for p in [0.25, 0.5, 0.75, 1.0] {
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(7, 1, 7, 1),
            Rect::new(1, 1, 7, 1),
            &UniformField::new(p),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let v = min_expected_cycles(&mdp, SolverOptions::default()).values[mdp.init()];
        assert!((v - 6.0 / p).abs() < 1e-6, "p = {p}: v = {v}");
    }
}
