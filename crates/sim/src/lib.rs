//! Cycle-accurate MEDA biochip simulator, routers, and the experiment
//! harness behind the paper's evaluation (Section VII, Figs 14–16).
//!
//! The simulator is the *incomplete-information* twin of the MEDA game
//! (Section V-C): droplet-movement outcomes are sampled from the hidden
//! real-valued degradation matrix **D**, while routers only observe the
//! quantized health matrix **H** read out by the dual-DFF sensing design.
//!
//! * [`Biochip`] — per-MC `(τ, c)` degradation, actuation counting, sudden
//!   faults (uniform or clustered 2×2 injection, Section VII-C);
//! * [`Router`] — the control seam: [`BaselineRouter`] is the
//!   degradation-unaware shortest-path baseline, [`AdaptiveRouter`] the
//!   paper's hybrid-scheduled formal-synthesis router (Algorithms 2–3);
//! * [`BioassayRunner`] — executes a planned bioassay cycle by cycle:
//!   waiting droplets are held in place (and keep degrading their MCs),
//!   moving droplets follow the router, outcomes are sampled from **D**;
//! * [`experiment`] — the Fig 15 probability-of-success sweep, the Fig 16
//!   repeated-trial fault-injection study, and the Fig 3 actuation
//!   correlation analysis;
//! * [`Supervisor`] — supervised execution with a per-job retry ladder
//!   (re-sense → re-synthesize → detour → reconfigure onto spare area →
//!   abort the operation) and a structured [`FailureReport`] for graceful
//!   partial completion; [`SupervisorConfig::reconfig_budget`] arms the
//!   reconfiguration rung, which relocates a failing operation's target
//!   zone onto healthy spare electrodes via the bioassay placer;
//! * [`FaultPlan`] — scripted chaos on top of placement-time faults:
//!   scheduled electrode death (isolated, clustered `2 × 2`, whole-row),
//!   growing [`DefectFront`]s, intermittent glitches, and stuck sensor
//!   bits corrupting the sensed **Y** matrix
//!   ([`RunConfig::sensed_feedback`] closes that loop);
//! * extras: [`RecoveryRouter`] (reactive error recovery, §II-C),
//!   [`MoScheduler`] runtime operation ordering (the paper-conclusion
//!   extension), [`sensing`] droplet-location reconstruction from the
//!   sensed **Y** matrix, [`analysis`] wear statistics, and [`render`]
//!   ASCII chip maps.
//!
//! # Examples
//!
//! ```
//! use meda_bioassay::{benchmarks, RjHelper};
//! use meda_grid::ChipDims;
//! use meda_sim::{AdaptiveRouter, BioassayRunner, Biochip, DegradationConfig, RunConfig};
//! use meda_rng::SeedableRng;
//!
//! let mut rng = meda_rng::StdRng::seed_from_u64(7);
//! let plan = RjHelper::new(ChipDims::PAPER).plan(&benchmarks::master_mix())?;
//! let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
//! let mut router = AdaptiveRouter::new(Default::default());
//! let outcome = BioassayRunner::new(RunConfig::default())
//!     .run(&plan, &mut chip, &mut router, &mut rng);
//! assert!(outcome.is_success());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
pub mod analysis;
mod biochip;
mod constraints;
mod engine;
pub mod experiment;
mod fault;
mod fleet;
mod recovery;
pub mod render;
mod router;
mod scheduler;
pub mod sensing;
mod supervisor;

pub use adaptive::{AdaptiveConfig, AdaptiveRouter};
pub use biochip::{Biochip, DegradationConfig};
pub use constraints::{FluidicConstraints, SeparationViolation, ViolationKind};
pub use engine::{sample_outcome, BioassayRunner, RunConfig, RunOutcome, RunStatus};
pub use fault::{DefectFront, FaultMode, FaultPlan, IntermittentCell, SuddenDeath};
pub use fleet::{
    dependency_exemption, AdaptivePool, ClonePool, FleetConfig, FleetOutcome, FleetRunner,
    RouterPool,
};
pub use meda_cell::StuckBit;
pub use recovery::RecoveryRouter;
pub use router::{BaselineRouter, Router};
pub use scheduler::{FifoScheduler, HealthAwareScheduler, MoScheduler};
pub use supervisor::{FailureReport, MoFailure, Rung, RungCounts, Supervisor, SupervisorConfig};
