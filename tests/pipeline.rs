//! Cross-crate integration tests: the complete plan → synthesize → execute
//! pipeline of Fig. 13/14.

use meda::bioassay::{benchmarks, RjHelper};
use meda::core::{ActionConfig, HealthField, RoutingMdp};
use meda::degradation::HealthLevel;
use meda::grid::{Cell, ChipDims, Grid, Rect};
use meda::sim::{
    AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip, DegradationConfig,
    FaultMode, RunConfig, RunStatus,
};
use meda::synth::{synthesize, Query};
use meda_rng::SeedableRng;
use meda_rng::StdRng;

/// Every routing job of every benchmark bioassay admits a synthesized
/// strategy on a fully healthy chip, with finite expected completion time
/// bounded below by the center distance.
#[test]
fn every_benchmark_job_is_synthesizable_when_healthy() {
    let dims = ChipDims::PAPER;
    let helper = RjHelper::new(dims);
    let health = HealthField::new(Grid::new(dims, HealthLevel::full(2)), 2);
    for sg in benchmarks::evaluation_suite() {
        let plan = helper.plan(&sg).unwrap();
        for planned in plan.operations() {
            for job in &planned.jobs {
                if job.is_dispense() || job.start == job.goal {
                    continue;
                }
                let mdp = RoutingMdp::build(
                    job.start,
                    job.goal,
                    job.bounds,
                    &health,
                    &ActionConfig::default(),
                )
                .unwrap_or_else(|e| panic!("{}: {job} → {e}", sg.name()));
                let pi = synthesize(&mdp, Query::MinExpectedCycles)
                    .unwrap_or_else(|e| panic!("{}: {job} → {e}", sg.name()));
                assert!(pi.value_at_init().is_finite());
            }
        }
    }
}

/// Full execution on a pristine chip succeeds for both routers with cycle
/// counts in a sane band, and identical seeds reproduce identical runs.
#[test]
fn pristine_execution_is_reproducible() {
    let dims = ChipDims::PAPER;
    let plan = RjHelper::new(dims).plan(&benchmarks::cep()).unwrap();
    let runner = BioassayRunner::new(RunConfig::default());

    let run_with_seed = |seed: u64| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
        let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
        runner.run(&plan, &mut chip, &mut router, &mut rng)
    };
    let a = run_with_seed(5);
    let b = run_with_seed(5);
    let c = run_with_seed(6);
    assert!(a.is_success());
    assert_eq!(a.cycles, b.cycles, "same seed, same trajectory");
    assert!(c.is_success());

    let mut rng = StdRng::seed_from_u64(5);
    let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
    let mut baseline = BaselineRouter::new();
    let base = runner.run(&plan, &mut chip, &mut baseline, &mut rng);
    assert!(base.is_success());
    // Both routers are within a sane band of the plan's size.
    for cycles in [a.cycles, base.cycles] {
        assert!(cycles > 50 && cycles < 1_000, "cycles = {cycles}");
    }
}

/// The adaptive router detours around a dead wall that blocks the
/// baseline's straight-line path.
#[test]
fn adaptive_detours_where_baseline_stalls() {
    let dims = ChipDims::new(30, 12);
    // Build a chip where a fault wall crosses the straight path but leaves
    // a northern gap: faulty cells die at their very first actuation.
    let config = DegradationConfig {
        fault_mode: FaultMode::None,
        ..DegradationConfig::pristine()
    };
    let mut rng = StdRng::seed_from_u64(8);
    let mut chip = Biochip::generate(dims, &config, &mut rng);

    // Kill the wall cells outright by pre-actuating them past a threshold
    // of 0 — emulate via a custom chip: instead, wear them through an
    // enormous number of actuations on a degradable chip.
    let mut worn = Biochip::generate(
        dims,
        &DegradationConfig {
            fault_mode: FaultMode::None,
            ..DegradationConfig::paper()
        },
        &mut rng,
    );
    // The hazard zone of the job below clips at row 8, so a wall over
    // rows 1–6 leaves a legal (if partially-degraded) gap at rows 6–8.
    let mut wall = Grid::new(dims, false);
    for y in 1..=6 {
        for x in 14..=16 {
            wall[Cell::new(x, y)] = true;
        }
    }
    for _ in 0..20_000 {
        worn.apply_actuation(&wall);
    }
    std::mem::swap(&mut chip, &mut worn);

    let job = meda::bioassay::RoutingJob::new(
        Rect::new(2, 2, 5, 5),
        Rect::new(24, 2, 27, 5),
        Rect::new(1, 1, 30, 12),
    );

    // Baseline pushes straight into the wall and exhausts its budget.
    let runner = BioassayRunner::new(RunConfig {
        k_max: 150,
        record_actuation: false,
        sensed_feedback: false,
    });
    let mut sg = meda::bioassay::SequencingGraph::new("wall");
    let a = sg.dispense((3.5, 3.5), (4, 4));
    sg.magnetic(a, (25.5, 3.5));
    let plan = RjHelper::new(dims).plan(&sg).unwrap();

    let mut rng_b = StdRng::seed_from_u64(9);
    let mut chip_b = chip.clone();
    let mut baseline = BaselineRouter::new();
    let base = runner.run(&plan, &mut chip_b, &mut baseline, &mut rng_b);

    let mut rng_a = StdRng::seed_from_u64(9);
    let mut chip_a = chip.clone();
    let mut adaptive = AdaptiveRouter::new(AdaptiveConfig::paper());
    let adap = runner.run(&plan, &mut chip_a, &mut adaptive, &mut rng_a);

    assert!(
        adap.is_success(),
        "adaptive should detour: {:?}",
        adap.status
    );
    assert!(
        !base.is_success() || base.cycles > adap.cycles,
        "baseline {:?} in {} cycles vs adaptive {}",
        base.status,
        base.cycles,
        adap.cycles
    );
    // Sanity: the synthesized route really avoided the worn band.
    assert_eq!(job.bounds, Rect::new(1, 1, 30, 12));
}

/// NoRoute is reported when a bioassay is genuinely blocked.
#[test]
fn fully_blocked_job_aborts_with_no_route() {
    let dims = ChipDims::new(20, 8);
    let mut rng = StdRng::seed_from_u64(10);
    let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
    // Wear a full-height wall to death.
    let mut wall = Grid::new(dims, false);
    for y in 1..=8 {
        wall[Cell::new(10, y)] = true;
        wall[Cell::new(11, y)] = true;
    }
    for _ in 0..50_000 {
        chip.apply_actuation(&wall);
    }

    let mut sg = meda::bioassay::SequencingGraph::new("blocked");
    let a = sg.dispense((3.5, 3.5), (4, 4));
    sg.magnetic(a, (16.5, 3.5));
    let plan = RjHelper::new(dims).plan(&sg).unwrap();

    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let outcome =
        BioassayRunner::new(RunConfig::default()).run(&plan, &mut chip, &mut router, &mut rng);
    assert_eq!(outcome.status, RunStatus::NoRoute);
}

/// The hybrid scheduler's library pays off across repeated executions.
#[test]
fn strategy_library_hits_grow_with_reuse() {
    let dims = ChipDims::PAPER;
    let plan = RjHelper::new(dims).plan(&benchmarks::master_mix()).unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let runner = BioassayRunner::new(RunConfig::default());
    for _ in 0..3 {
        assert!(runner
            .run(&plan, &mut chip, &mut router, &mut rng)
            .is_success());
    }
    // On a pristine (non-degrading) chip the health digest never changes,
    // so runs 2 and 3 hit the library for every routed job.
    assert!(
        router.library().hits() >= router.library().misses(),
        "hits {} vs misses {}",
        router.library().hits(),
        router.library().misses()
    );
}
