//! Totality and closure audit of a memoryless routing strategy.

use meda_core::Action;

use crate::{ModelArtifact, ValueKind, Violation};

/// Audits a memoryless strategy (`choice[i]` = the action to take in state
/// `i`) against a model artifact and its certified value vector.
///
/// Walks the Markov chain the strategy induces from the initial state and
/// checks **totality** — every reachable state that is still *hopeful*
/// (positive reach probability for [`ValueKind::Reachability`], finite
/// expected cycles for [`ValueKind::ExpectedCycles`]) has a decision — and
/// **closure** — every decision names an action actually enabled at that
/// state, decisions never appear at absorbing states, and following the
/// strategy never leaves the artifact's state set.
///
/// Hopeless states (zero reach probability / infinite expected cycles) are
/// legitimately undecided: they are the `(π, k) = (∅, ∞)` case of the
/// paper's Algorithm 2, surfaced to the caller as "no strategy exists".
/// The walk does not continue through them.
///
/// The artifact must have passed [`crate::audit_model`]; `values` must have
/// passed [`crate::audit_values`] for the same `kind`.
#[must_use]
pub fn audit_strategy(
    art: &ModelArtifact,
    choice: &[Option<Action>],
    values: &[f64],
    kind: ValueKind,
) -> Vec<Violation> {
    let n = art.states;
    let mut violations = Vec::new();
    if choice.len() != n {
        violations.push(Violation::StrategyLength {
            expected: n,
            found: choice.len(),
        });
        return violations;
    }
    if values.len() != n {
        violations.push(Violation::ValueLength {
            expected: n,
            found: values.len(),
        });
        return violations;
    }
    let hopeful = |i: usize| match kind {
        ValueKind::Reachability => values[i] > 1e-12,
        ValueKind::ExpectedCycles => values[i].is_finite(),
    };
    let mut seen = vec![false; n];
    let mut stack = vec![art.init];
    seen[art.init] = true;
    while let Some(i) = stack.pop() {
        let absorbing = art.goal_flags[i] || art.sink == Some(i);
        if absorbing {
            if choice[i].is_some() {
                violations.push(Violation::StrategyChoiceAtAbsorbing { state: i });
            }
            continue;
        }
        if !hopeful(i) {
            continue;
        }
        let Some(action) = choice[i] else {
            violations.push(Violation::StrategyIncomplete { state: i });
            continue;
        };
        let Some(c) = art
            .choice_range(i)
            .find(|&c| art.choice_action[c] == action)
        else {
            violations.push(Violation::StrategyInvalidAction { state: i, action });
            continue;
        };
        for b in art.branch_range(c) {
            let t = art.branch_target[b] as usize;
            if t >= n {
                violations.push(Violation::StrategyEscapes {
                    state: i,
                    target: art.branch_target[b],
                });
                continue;
            }
            if !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    violations
}
