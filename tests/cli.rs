//! Integration tests for the `meda` command-line tool, driving the real
//! binary.

use std::process::Command;

fn meda(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_meda"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn no_arguments_prints_usage() {
    let (stdout, _, ok) = meda(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("meda run"));
}

#[test]
fn list_shows_all_six_benchmarks() {
    let (stdout, _, ok) = meda(&["list"]);
    assert!(ok);
    for name in [
        "master-mix",
        "covid-rat",
        "cep",
        "covid-pcr",
        "nuip",
        "serial-dilution",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn plan_reproduces_rj_rows() {
    let (stdout, _, ok) = meda(&["plan", "covid-rat"]);
    assert!(ok);
    assert!(stdout.contains("RJ1.0"));
    assert!(stdout.contains("dis"));
    assert!(stdout.contains("mag"));
}

#[test]
fn run_is_seed_deterministic() {
    let (a, _, ok_a) = meda(&["run", "master-mix", "--seed", "5", "--router", "baseline"]);
    let (b, _, ok_b) = meda(&["run", "master-mix", "--seed", "5", "--router", "baseline"]);
    assert!(ok_a && ok_b);
    assert_eq!(a, b);
    assert!(a.contains("Success"));
}

#[test]
fn synth_prints_model_and_path() {
    let (stdout, _, ok) = meda(&[
        "synth",
        "--area",
        "12x8",
        "--droplet",
        "3x3",
        "--force",
        "0.8",
    ]);
    assert!(ok);
    assert!(stdout.contains("states"));
    assert!(stdout.contains("nominal path"));
}

#[test]
fn export_prism_emits_three_sections() {
    let (stdout, _, ok) = meda(&["export-prism", "covid-rat", "0"]);
    assert!(ok);
    assert!(stdout.contains(".sta =="));
    assert!(stdout.contains(".tra =="));
    assert!(stdout.contains(".lab =="));
    assert!(stdout.contains("(xa,ya,xb,yb)"));
}

#[test]
fn unknown_assay_fails_with_message() {
    let (_, stderr, ok) = meda(&["plan", "no-such-assay"]);
    assert!(!ok);
    assert!(stderr.contains("unknown assay"));
}

#[test]
fn bad_flag_values_fail_cleanly() {
    let (_, stderr, ok) = meda(&["run", "cep", "--seed", "banana"]);
    assert!(!ok);
    assert!(stderr.contains("bad seed"));
    let (_, stderr, ok) = meda(&["synth", "--droplet", "20x20", "--area", "10x10"]);
    assert!(!ok);
    assert!(stderr.contains("smaller than the area"));
}
