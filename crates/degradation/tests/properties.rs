//! Property-based tests for the degradation model: monotonicity,
//! quantization soundness, and fit recovery.

use meda_degradation::{
    quantize_health, ActuationMode, DegradationParams, ExponentialFit, ParamDistribution,
    PcbExperiment,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_params() -> impl Strategy<Value = DegradationParams> {
    (0.1f64..0.99, 50.0f64..1000.0).prop_map(|(tau, c)| DegradationParams::new(tau, c))
}

proptest! {
    #[test]
    fn degradation_decreases_monotonically(p in arb_params(), n1 in 0u64..5000, n2 in 0u64..5000) {
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(p.degradation(hi) <= p.degradation(lo) + 1e-12);
        prop_assert!(p.relative_force(hi) <= p.relative_force(lo) + 1e-12);
    }

    #[test]
    fn degradation_stays_in_unit_interval(p in arb_params(), n in 0u64..100_000) {
        let d = p.degradation(n);
        prop_assert!((0.0..=1.0).contains(&d));
        prop_assert!((p.relative_force(n) - d * d).abs() < 1e-12);
    }

    #[test]
    fn actuations_to_reach_is_a_true_inverse(p in arb_params(), level in 0.01f64..0.99) {
        let n = p.actuations_to_reach(level).unwrap();
        prop_assert!(p.degradation(n) <= level + 1e-9);
        if n > 0 {
            prop_assert!(p.degradation(n - 1) > level - 1e-9);
        }
    }

    #[test]
    fn quantization_is_monotone_and_conservative(d in 0.0f64..=1.0, bits in 1u8..=4) {
        let h = quantize_health(d, bits);
        // Conservative: the implied estimate never exceeds the true level.
        prop_assert!(h.as_degradation(bits) <= d + 1e-12);
        // Off by less than one bin.
        prop_assert!(d - h.as_degradation(bits) < 1.0 / f64::from(1u16 << bits) + 1e-12);
    }

    #[test]
    fn quantization_never_increases_under_wear(
        p in arb_params(), bits in 1u8..=3, n1 in 0u64..3000, n2 in 0u64..3000
    ) {
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        prop_assert!(p.health(hi, bits) <= p.health(lo, bits));
    }

    #[test]
    fn fit_recovers_slope_from_exact_samples(p in arb_params(), step in 20u64..200) {
        let samples: Vec<_> = (0..=8).map(|i| (i * step, p.relative_force(i * step))).collect();
        // Skip degenerate data where the force underflows to ~0.
        prop_assume!(samples.iter().all(|&(_, f)| f > 1e-12));
        let fit = ExponentialFit::fit_force(&samples).unwrap();
        prop_assert!((fit.slope - 2.0 * p.log_slope()).abs() < 1e-6 * p.log_slope().abs());
        let recovered = fit.params_for_tau(p.tau);
        prop_assert!((recovered.c - p.c).abs() / p.c < 1e-6);
    }

    #[test]
    fn distribution_samples_stay_in_declared_ranges(
        t1 in 0.1f64..0.5, t2 in 0.5f64..0.9, c1 in 50.0f64..200.0, c2 in 200.0f64..500.0,
        seed in 0u64..1000
    ) {
        let dist = ParamDistribution::new((t1, t2), (c1, c2));
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let p = dist.sample(&mut rng);
            prop_assert!(p.tau >= t1 && p.tau <= t2);
            prop_assert!(p.c >= c1 && p.c <= c2);
        }
    }

    #[test]
    fn pcb_capacitance_is_strictly_increasing(seed in 0u64..500) {
        // Noise-free law is strictly increasing; sampled read-outs drift
        // but the underlying model must be.
        let exp = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping);
        let mut prev = 0.0;
        for n in (0..1000).step_by(100) {
            let c = exp.capacitance_at(n);
            prop_assert!(c > prev);
            prev = c;
        }
        // And the generator is reproducible per seed.
        let a = exp.run(&mut StdRng::seed_from_u64(seed), 5, 100);
        let b = exp.run(&mut StdRng::seed_from_u64(seed), 5, 100);
        prop_assert_eq!(a, b);
    }
}
