//! Extension: wear-leveling analysis. The paper's lifetime argument is
//! that the baseline fails by "excessive actuation of the same set of
//! MCs"; this harness quantifies the wear *distribution* each router
//! leaves behind after repeated executions — total wear, Gini coefficient
//! (0 = even, 1 = concentrated), and the hottest cells.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_bioassay::{benchmarks, RjHelper};
use meda_grid::ChipDims;
use meda_rng::SeedableRng;
use meda_sim::{
    analysis, AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip,
    DegradationConfig, Router, RunConfig,
};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let runs = if full { 10 } else { 5 };

    banner(
        "Extension — wear-leveling by router",
        "Repeated executions on one chip; the wear Gini coefficient \
         measures how concentrated the damage is (lower = longer chip \
         life under the τ^(n/c) law).",
    );
    println!("back-to-back runs per cell: {runs}\n");

    let dims = ChipDims::PAPER;
    let helper = RjHelper::new(dims);

    let widths = [16, 10, 12, 10, 8, 8];
    header(
        &[
            "bioassay",
            "router",
            "total wear",
            "max cell",
            "gini",
            "runs ok",
        ],
        &widths,
    );

    for sg in [benchmarks::covid_rat(), benchmarks::serial_dilution()] {
        let plan = helper.plan(&sg).expect("benchmark plans cleanly");
        let measure = |name: &str, router: &mut dyn Router| {
            let mut rng = meda_rng::StdRng::seed_from_u64(808);
            let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
            let runner = BioassayRunner::new(RunConfig {
                k_max: 3_000,
                record_actuation: false,
                sensed_feedback: false,
            });
            let mut ok = 0;
            for _ in 0..runs {
                if runner.run(&plan, &mut chip, router, &mut rng).is_success() {
                    ok += 1;
                }
            }
            let stats = analysis::wear_stats(&chip);
            row(
                &[
                    sg.name().to_string(),
                    name.to_string(),
                    format!("{}", stats.total),
                    format!("{}", stats.max),
                    format!("{:.3}", stats.gini),
                    format!("{ok}/{runs}"),
                ],
                &widths,
            );
        };
        measure("baseline", &mut BaselineRouter::new());
        measure(
            "adaptive",
            &mut AdaptiveRouter::new(AdaptiveConfig::paper()),
        );
    }

    println!(
        "\nReading: the adaptive router finishes with less total wear \
         (fewer cycles) and a lower max-cell count; its Gini is similar \
         because module-site holding dominates both distributions — the \
         wear the routers *can* influence (transport corridors) is what \
         separates the max-cell columns."
    );
}
