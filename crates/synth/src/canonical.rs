//! Canonicalization of routing jobs under translation and the D4
//! symmetries — the key-normalization layer of the content-addressed
//! strategy cache (DESIGN.md §16).
//!
//! A routing-job MDP is fully determined by (bounds geometry, start, goal,
//! the effective force over the bounds, the hazard boxes, the action
//! configuration, and the query) — *up to where the bounds sit on the chip
//! and how they are oriented*. Translating the whole job or applying any of
//! the eight D4 symmetries (rotations and reflections of the rectangle)
//! yields an isomorphic MDP: the action set is closed under D4
//! (cardinal/ordinal moves permute; `Widen` ↔ `Heighten` swap under the
//! transposing elements, and their aspect-ratio guards swap with them), and
//! every transition probability is a mean over a frontier set that maps to
//! the image action's frontier set. One synthesized strategy therefore
//! serves the whole orbit.
//!
//! [`canonicalize`] normalizes a job into that orbit's unique
//! representative: bounds anchored at `(1, 1)`, and the lexicographically
//! smallest encoding over the eight D4 images. The representative's FNV-1a
//! content digest is the cache address; [`JobTransform`] maps rectangles
//! and actions between the original and canonical frames so canonical
//! strategies can answer original-frame jobs.
//!
//! Hazard boxes participate in the encoding **unclipped** (in canonical
//! coordinates, but extending beyond the bounds if they did originally): a
//! box crossing the patch boundary never shares a key with its clipped
//! equivalent. The conservative choice keeps keys stable under the
//! supervisor's bounds-widening escalation, where the out-of-bounds
//! remainder of a crossing box becomes load-bearing.

use meda_core::{Action, ActionConfig, BuildError, Dir, ForceProvider, HazardBox, Ordinal};
use meda_core::{HazardedField, RawField, RoutingMdp};
use meda_grid::{ChipDims, Grid, Rect};

use crate::{Query, RoutingStrategy};

/// One element of the dihedral group D4 acting on an axis-aligned frame:
/// optionally transpose the axes, then reflect each output axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct D4 {
    /// Swap the x and y axes before reflecting.
    pub transpose: bool,
    /// Reflect the output x axis.
    pub flip_x: bool,
    /// Reflect the output y axis.
    pub flip_y: bool,
}

impl D4 {
    /// The identity element.
    pub const IDENTITY: D4 = D4 {
        transpose: false,
        flip_x: false,
        flip_y: false,
    };

    /// All eight elements, in the stable order used for canonical
    /// tie-breaking.
    pub const ELEMENTS: [D4; 8] = [
        D4 {
            transpose: false,
            flip_x: false,
            flip_y: false,
        },
        D4 {
            transpose: false,
            flip_x: true,
            flip_y: false,
        },
        D4 {
            transpose: false,
            flip_x: false,
            flip_y: true,
        },
        D4 {
            transpose: false,
            flip_x: true,
            flip_y: true,
        },
        D4 {
            transpose: true,
            flip_x: false,
            flip_y: false,
        },
        D4 {
            transpose: true,
            flip_x: true,
            flip_y: false,
        },
        D4 {
            transpose: true,
            flip_x: false,
            flip_y: true,
        },
        D4 {
            transpose: true,
            flip_x: true,
            flip_y: true,
        },
    ];

    /// The dimensions of the output frame for an input frame of `(w, h)`.
    #[must_use]
    pub const fn map_dims(self, dims: (u32, u32)) -> (u32, u32) {
        if self.transpose {
            (dims.1, dims.0)
        } else {
            dims
        }
    }

    /// Maps a 0-based local cell of a `(w, h)` frame into the output
    /// frame. The formula is affine, so coordinates outside the frame
    /// (unclipped hazard corners) map consistently too.
    #[must_use]
    pub const fn map_cell(self, cell: (i32, i32), dims: (u32, u32)) -> (i32, i32) {
        let (a, b) = if self.transpose {
            (cell.1, cell.0)
        } else {
            (cell.0, cell.1)
        };
        let (ow, oh) = self.map_dims(dims);
        let u = if self.flip_x { ow as i32 - 1 - a } else { a };
        let v = if self.flip_y { oh as i32 - 1 - b } else { b };
        (u, v)
    }

    /// Maps a displacement vector (no reflection offsets apply).
    #[must_use]
    pub const fn map_vec(self, delta: (i32, i32)) -> (i32, i32) {
        let (a, b) = if self.transpose {
            (delta.1, delta.0)
        } else {
            (delta.0, delta.1)
        };
        (
            if self.flip_x { -a } else { a },
            if self.flip_y { -b } else { b },
        )
    }

    /// The inverse element: `inv.map_cell(self.map_cell(c, dims),
    /// self.map_dims(dims)) == c`.
    #[must_use]
    pub fn inverse(self) -> D4 {
        for e in D4::ELEMENTS {
            if e.map_vec(self.map_vec((1, 0))) == (1, 0)
                && e.map_vec(self.map_vec((0, 1))) == (0, 1)
            {
                return e;
            }
        }
        // D4 is a group: every element has an inverse among ELEMENTS.
        D4::IDENTITY
    }

    /// Maps a 0-based local rectangle of a `(w, h)` frame (corner-wise,
    /// then re-normalized so `xa ≤ xb`, `ya ≤ yb`).
    #[must_use]
    pub fn map_local_rect(self, r: Rect, dims: (u32, u32)) -> Rect {
        let (x1, y1) = self.map_cell((r.xa, r.ya), dims);
        let (x2, y2) = self.map_cell((r.xb, r.yb), dims);
        Rect::new(x1.min(x2), y1.min(y2), x1.max(x2), y1.max(y2))
    }

    /// Maps a cardinal direction.
    #[must_use]
    pub fn map_dir(self, d: Dir) -> Dir {
        match self.map_vec(d.delta()) {
            (0, 1) => Dir::N,
            (0, -1) => Dir::S,
            (1, 0) => Dir::E,
            _ => Dir::W,
        }
    }

    /// Maps an ordinal direction (by its displacement vector: a diagonal
    /// maps to a diagonal, but its vertical component may come from the
    /// original's horizontal one under the transposing elements).
    #[must_use]
    pub fn map_ordinal(self, o: Ordinal) -> Ordinal {
        match self.map_vec(o.delta()) {
            (1, 1) => Ordinal::NE,
            (-1, 1) => Ordinal::NW,
            (1, -1) => Ordinal::SE,
            _ => Ordinal::SW,
        }
    }

    /// Maps a microfluidic action: moves permute among themselves, and the
    /// morphs `Widen`/`Heighten` swap whenever the element transposes the
    /// axes (the grow axis follows the transform). Satisfies the
    /// commutation law `map_rect(a.apply(r)) == map_action(a).apply(map_rect(r))`.
    #[must_use]
    pub fn map_action(self, a: Action) -> Action {
        match a {
            Action::Move(d) => Action::Move(self.map_dir(d)),
            Action::MoveDouble(d) => Action::MoveDouble(self.map_dir(d)),
            Action::MoveOrdinal(o) => Action::MoveOrdinal(self.map_ordinal(o)),
            // Widen(o) grows toward horizontal(o) along x and keeps the
            // vertical(o) side; Heighten(o) grows toward vertical(o) along
            // y and keeps the horizontal(o) side. Map (grow, keep) and
            // reassemble by the grow axis' new orientation.
            Action::Widen(o) => self.map_morph(o.horizontal(), o.vertical()),
            Action::Heighten(o) => self.map_morph(o.vertical(), o.horizontal()),
        }
    }

    fn map_morph(self, grow: Dir, keep: Dir) -> Action {
        let g = self.map_dir(grow);
        let k = self.map_dir(keep);
        if g.is_vertical() {
            Action::Heighten(ordinal_of(g, k))
        } else {
            Action::Widen(ordinal_of(k, g))
        }
    }
}

/// The ordinal with the given vertical and horizontal components.
fn ordinal_of(vertical: Dir, horizontal: Dir) -> Ordinal {
    match (vertical, horizontal) {
        (Dir::N, Dir::E) => Ordinal::NE,
        (Dir::N, _) => Ordinal::NW,
        (_, Dir::E) => Ordinal::SE,
        _ => Ordinal::SW,
    }
}

/// A routing job in canonical frame: bounds anchored at `(1, 1)`, oriented
/// by the lexicographically smallest D4 image. This is the unit the
/// persistent strategy cache stores and synthesizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalJob {
    /// Canonical bounds width.
    pub width: u32,
    /// Canonical bounds height.
    pub height: u32,
    /// Start droplet in canonical coordinates.
    pub start: Rect,
    /// Goal region in canonical coordinates.
    pub goal: Rect,
    /// Base (hazard-free) effective force at every bounds cell, row-major
    /// from `(1, 1)`: index `(y − 1)·width + (x − 1)`.
    pub forces: Vec<f64>,
    /// Hazard boxes in canonical coordinates — **unclipped**: boxes that
    /// crossed the original bounds still cross them here, so a crossing
    /// box never aliases its clipped equivalent.
    pub hazards: Vec<HazardBox>,
    /// Action classes available to synthesis (D4-invariant as a whole:
    /// the aspect-ratio guard swaps between `Widen` and `Heighten` exactly
    /// when the actions do).
    pub config: ActionConfig,
    /// The synthesis query.
    pub query: Query,
}

/// The content-addressed identity of a canonical job: geometry plus the
/// FNV-1a digest over the full canonical encoding (geometry, action
/// configuration, query, hazards, force-patch bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CanonicalJobKey {
    /// Canonical bounds width.
    pub width: u32,
    /// Canonical bounds height.
    pub height: u32,
    /// Canonical start droplet.
    pub start: Rect,
    /// Canonical goal region.
    pub goal: Rect,
    /// FNV-1a digest of the full canonical encoding.
    pub digest: u64,
}

impl CanonicalJob {
    /// The canonical hazard bounds, anchored at `(1, 1)`.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        Rect::new(1, 1, self.width as i32, self.height as i32)
    }

    /// The full canonical encoding as a word sequence — the value the
    /// digest hashes and the lex-min orbit selection compares.
    #[must_use]
    pub fn encode(&self) -> Vec<u64> {
        let rect_words = |r: Rect| {
            [
                r.xa as i64 as u64,
                r.ya as i64 as u64,
                r.xb as i64 as u64,
                r.yb as i64 as u64,
            ]
        };
        let mut words = vec![u64::from(self.width), u64::from(self.height)];
        words.extend(rect_words(self.start));
        words.extend(rect_words(self.goal));
        words.push(self.config.aspect_ratio_max.to_bits());
        words.push(u64::from(self.config.double_step));
        words.push(u64::from(self.config.ordinal));
        words.push(u64::from(self.config.morphing));
        words.push(match self.query {
            Query::MaxReachProbability => 0,
            Query::MinExpectedCycles => 1,
        });
        words.push(self.hazards.len() as u64);
        for b in &self.hazards {
            words.extend(rect_words(b.rect));
            words.push(b.factor.to_bits());
        }
        for f in &self.forces {
            words.push(f.to_bits());
        }
        words
    }

    /// FNV-1a digest of [`CanonicalJob::encode`] — the cache address.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for word in self.encode() {
            hash ^= word;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The content-addressed key.
    #[must_use]
    pub fn key(&self) -> CanonicalJobKey {
        CanonicalJobKey {
            width: self.width,
            height: self.height,
            start: self.start,
            goal: self.goal,
            digest: self.digest(),
        }
    }

    /// Rebuilds the canonical-frame routing MDP from the stored force
    /// patch and hazards.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the MDP builder.
    pub fn build_mdp(&self) -> Result<RoutingMdp, BuildError> {
        let dims = ChipDims::new(self.width, self.height);
        let grid = Grid::from_fn(dims, |cell| {
            let idx = (cell.y - 1) as usize * self.width as usize + (cell.x - 1) as usize;
            self.forces.get(idx).copied().unwrap_or(0.0)
        });
        let raw = RawField::new(grid);
        if self.hazards.is_empty() {
            RoutingMdp::build(self.start, self.goal, self.bounds(), &raw, &self.config)
        } else {
            let field = HazardedField::new(&raw, &self.hazards);
            RoutingMdp::build(self.start, self.goal, self.bounds(), &field, &self.config)
        }
    }

    /// Synthesizes the canonical-frame strategy: the primary query first,
    /// falling back to `Pmax` when `Rmin` is infeasible (mirroring the
    /// adaptive router), `None` when even `Pmax` is zero or the model
    /// cannot be built.
    #[must_use]
    pub fn synthesize(&self) -> Option<RoutingStrategy> {
        let mdp = self.build_mdp().ok()?;
        let strategy = crate::synthesize(&mdp, self.query)
            .or_else(|_| crate::synthesize(&mdp, Query::MaxReachProbability))
            .ok()?;
        if strategy.query() == Query::MaxReachProbability && strategy.value_at_init() <= 0.0 {
            return None;
        }
        Some(strategy)
    }
}

/// The frame mapping between an original job and its canonical
/// representative: the chosen D4 element plus the translation anchoring
/// the bounds at `(1, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobTransform {
    elem: D4,
    inv: D4,
    origin: (i32, i32),
    src_dims: (u32, u32),
    canon_dims: (u32, u32),
}

impl JobTransform {
    /// The chosen D4 element.
    #[must_use]
    pub fn element(&self) -> D4 {
        self.elem
    }

    /// Original-frame rectangle → canonical frame.
    #[must_use]
    pub fn to_canonical_rect(&self, r: Rect) -> Rect {
        let local = Rect::new(
            r.xa - self.origin.0,
            r.ya - self.origin.1,
            r.xb - self.origin.0,
            r.yb - self.origin.1,
        );
        self.elem
            .map_local_rect(local, self.src_dims)
            .translate(1, 1)
    }

    /// Canonical-frame rectangle → original frame.
    #[must_use]
    pub fn from_canonical_rect(&self, r: Rect) -> Rect {
        let local = r.translate(-1, -1);
        self.inv
            .map_local_rect(local, self.canon_dims)
            .translate(self.origin.0, self.origin.1)
    }

    /// Original-frame action → canonical frame.
    #[must_use]
    pub fn to_canonical_action(&self, a: Action) -> Action {
        self.elem.map_action(a)
    }

    /// Canonical-frame action → original frame.
    #[must_use]
    pub fn from_canonical_action(&self, a: Action) -> Action {
        self.inv.map_action(a)
    }
}

/// Normalizes a routing job into its canonical representative and the
/// transform that produced it.
///
/// `field` is the **base** force field (health); `hazards` stay separate
/// so crossing boxes keep their unclipped extent in the key. Hazard boxes
/// that do not intersect `bounds` are dropped (they cannot affect the
/// model), matching the scoped-digest semantics of the in-memory library.
#[must_use]
pub fn canonicalize(
    start: Rect,
    goal: Rect,
    bounds: Rect,
    field: &dyn ForceProvider,
    hazards: &[HazardBox],
    config: &ActionConfig,
    query: Query,
) -> (CanonicalJob, JobTransform) {
    let src_dims = (bounds.width(), bounds.height());
    let origin = (bounds.xa, bounds.ya);
    let local = |r: Rect| {
        Rect::new(
            r.xa - origin.0,
            r.ya - origin.1,
            r.xb - origin.0,
            r.yb - origin.1,
        )
    };
    let local_start = local(start);
    let local_goal = local(goal);
    let relevant: Vec<HazardBox> = hazards
        .iter()
        .filter(|b| b.rect.intersects(bounds))
        .map(|b| HazardBox {
            rect: local(b.rect),
            factor: b.factor,
        })
        .collect();

    // Base forces in original row-major order (v·w + u over local coords).
    let (w, h) = (src_dims.0 as usize, src_dims.1 as usize);
    let mut base = vec![0.0f64; w * h];
    for (i, cell) in bounds.cells().enumerate() {
        base[i] = field.cell_force(cell);
    }

    let mut best: Option<(Vec<u64>, CanonicalJob, D4)> = None;
    for elem in D4::ELEMENTS {
        let (ow, oh) = elem.map_dims(src_dims);
        let mut forces = vec![0.0f64; w * h];
        for v in 0..h {
            for u in 0..w {
                let (cu, cv) = elem.map_cell((u as i32, v as i32), src_dims);
                forces[cv as usize * ow as usize + cu as usize] = base[v * w + u];
            }
        }
        let mut boxes: Vec<HazardBox> = relevant
            .iter()
            .map(|b| HazardBox {
                rect: elem.map_local_rect(b.rect, src_dims).translate(1, 1),
                factor: b.factor,
            })
            .collect();
        boxes.sort_by(|a, b| {
            (
                a.rect.xa,
                a.rect.ya,
                a.rect.xb,
                a.rect.yb,
                a.factor.to_bits(),
            )
                .partial_cmp(&(
                    b.rect.xa,
                    b.rect.ya,
                    b.rect.xb,
                    b.rect.yb,
                    b.factor.to_bits(),
                ))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let job = CanonicalJob {
            width: ow,
            height: oh,
            start: elem.map_local_rect(local_start, src_dims).translate(1, 1),
            goal: elem.map_local_rect(local_goal, src_dims).translate(1, 1),
            forces,
            hazards: boxes,
            config: *config,
            query,
        };
        let enc = job.encode();
        let better = match &best {
            None => true,
            Some((best_enc, _, _)) => enc < *best_enc,
        };
        if better {
            best = Some((enc, job, elem));
        }
    }
    // ELEMENTS is non-empty, so `best` is always set.
    let (_, job, elem) = best.unwrap_or_else(|| {
        let job = CanonicalJob {
            width: src_dims.0,
            height: src_dims.1,
            start: local_start.translate(1, 1),
            goal: local_goal.translate(1, 1),
            forces: base.clone(),
            hazards: relevant.clone(),
            config: *config,
            query,
        };
        (job.encode(), job, D4::IDENTITY)
    });
    let transform = JobTransform {
        elem,
        inv: elem.inverse(),
        origin,
        src_dims,
        canon_dims: (job.width, job.height),
    };
    (job, transform)
}

/// Rehydrates a canonical-frame strategy into the original frame: rebuilds
/// nothing but the bookkeeping — `mdp` is the original-frame model
/// (construction only, no solve), and every state's value and action are
/// copied through the transform. Returns `None` if a state fails to map
/// (impossible for a genuine D4 image; defensively treated as a miss).
#[must_use]
pub fn materialize(
    canon: &RoutingStrategy,
    transform: &JobTransform,
    mdp: RoutingMdp,
) -> Option<RoutingStrategy> {
    let n = mdp.len();
    let mut values = Vec::with_capacity(n);
    let mut choice = Vec::with_capacity(n);
    for i in 0..n {
        let rc = transform.to_canonical_rect(mdp.state(i));
        values.push(canon.value_at(rc)?);
        choice.push(canon.decide(rc).map(|a| transform.from_canonical_action(a)));
    }
    RoutingStrategy::from_parts(mdp, choice, values, canon.query())
}

/// The inverse of [`materialize`]: projects an original-frame strategy
/// into the canonical frame so it can be persisted content-addressed.
/// `canon_mdp` is the canonical model (from
/// [`CanonicalJob::build_mdp`]); every canonical state reads its value and
/// (mapped) action from the original-frame strategy.
#[must_use]
pub fn canonicalize_strategy(
    original: &RoutingStrategy,
    transform: &JobTransform,
    canon_mdp: RoutingMdp,
) -> Option<RoutingStrategy> {
    let n = canon_mdp.len();
    let mut values = Vec::with_capacity(n);
    let mut choice = Vec::with_capacity(n);
    for i in 0..n {
        let r = transform.from_canonical_rect(canon_mdp.state(i));
        values.push(original.value_at(r)?);
        choice.push(original.decide(r).map(|a| transform.to_canonical_action(a)));
    }
    RoutingStrategy::from_parts(canon_mdp, choice, values, original.query())
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_core::{DegradationField, UniformField};
    use meda_grid::Cell;

    #[test]
    fn inverse_round_trips_cells_and_dims() {
        let dims = (7, 4);
        for e in D4::ELEMENTS {
            let inv = e.inverse();
            let out_dims = e.map_dims(dims);
            assert_eq!(inv.map_dims(out_dims), dims);
            for u in -2..9i32 {
                for v in -2..6i32 {
                    let mapped = e.map_cell((u, v), dims);
                    assert_eq!(inv.map_cell(mapped, out_dims), (u, v), "{e:?}");
                }
            }
        }
    }

    #[test]
    fn action_map_commutes_with_rect_map() {
        let dims = (12, 9);
        let rects = [
            Rect::new(2, 2, 4, 5),
            Rect::new(0, 0, 3, 3),
            Rect::new(5, 1, 9, 2),
            Rect::new(1, 3, 2, 7),
        ];
        for e in D4::ELEMENTS {
            for r in rects {
                for a in Action::ALL {
                    if !a.is_applicable(r) {
                        continue;
                    }
                    let lhs = e.map_local_rect(a.apply(r), dims);
                    let rhs = e.map_action(a).apply(e.map_local_rect(r, dims));
                    assert_eq!(lhs, rhs, "{e:?} {a} on {r}");
                }
            }
        }
    }

    #[test]
    fn action_map_preserves_guards() {
        // class_enabled depends only on the droplet shape and the config;
        // the mapped action on the mapped droplet must agree.
        let config = ActionConfig::default();
        let narrow = ActionConfig {
            aspect_ratio_max: 1.5,
            ..ActionConfig::default()
        };
        let dims = (12, 9);
        for cfg in [config, narrow] {
            for e in D4::ELEMENTS {
                for r in [Rect::new(2, 2, 6, 4), Rect::new(1, 1, 2, 6)] {
                    for a in Action::ALL {
                        assert_eq!(
                            a.class_enabled(r, &cfg),
                            e.map_action(a)
                                .class_enabled(e.map_local_rect(r, dims), &cfg),
                            "{e:?} {a} on {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn translation_orbit_collapses_to_one_key() {
        let field = UniformField::new(0.9);
        let base = canonicalize(
            Rect::new(1, 1, 2, 2),
            Rect::new(7, 5, 8, 6),
            Rect::new(1, 1, 8, 6),
            &field,
            &[],
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        );
        for (dx, dy) in [(3, 2), (10, 0), (0, 7), (21, 13)] {
            let shifted = canonicalize(
                Rect::new(1 + dx, 1 + dy, 2 + dx, 2 + dy),
                Rect::new(7 + dx, 5 + dy, 8 + dx, 6 + dy),
                Rect::new(1 + dx, 1 + dy, 8 + dx, 6 + dy),
                &field,
                &[],
                &ActionConfig::default(),
                Query::MinExpectedCycles,
            );
            assert_eq!(shifted.0.key(), base.0.key(), "translation ({dx},{dy})");
            assert_eq!(shifted.0, base.0);
        }
    }

    #[test]
    fn d4_orbit_collapses_to_one_key() {
        // A structured (asymmetric) degradation patch on a 9×5 bounds; all
        // eight D4 images of the whole job must share one canonical key.
        let dims = ChipDims::new(9, 5);
        let src_bounds = dims.bounds();
        let grid = Grid::from_fn(dims, |c| 0.3 + 0.07 * c.x as f64 + 0.011 * c.y as f64);
        let start = Rect::new(1, 1, 2, 2);
        let goal = Rect::new(8, 4, 9, 5);
        let hazards = [HazardBox::soft(Rect::new(4, 2, 6, 3), 0.5)];
        let base_field = DegradationField::new(grid.clone());
        let (base_job, _) = canonicalize(
            start,
            goal,
            src_bounds,
            &base_field,
            &hazards,
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        );
        let src = (src_bounds.width(), src_bounds.height());
        for e in D4::ELEMENTS {
            let (ow, oh) = e.map_dims(src);
            let img_dims = ChipDims::new(ow, oh);
            // Image field: force at e(c) equals force at c.
            let inv = e.inverse();
            let img_grid = Grid::from_fn(img_dims, |c| {
                let (u, v) = inv.map_cell((c.x - 1, c.y - 1), (ow, oh));
                let cell = Cell::new(u + 1, v + 1);
                grid.get(cell).copied().unwrap_or(1.0)
            });
            let img_field = DegradationField::new(img_grid);
            let map = |r: Rect| e.map_local_rect(r.translate(-1, -1), src).translate(1, 1);
            let img_hazards: Vec<HazardBox> = hazards
                .iter()
                .map(|b| HazardBox {
                    rect: map(b.rect),
                    factor: b.factor,
                })
                .collect();
            let (img_job, _) = canonicalize(
                map(start),
                map(goal),
                img_dims.bounds(),
                &img_field,
                &img_hazards,
                &ActionConfig::default(),
                Query::MinExpectedCycles,
            );
            assert_eq!(img_job.key(), base_job.key(), "{e:?}");
            assert_eq!(img_job, base_job, "{e:?}");
        }
    }

    #[test]
    fn different_force_patches_get_different_digests() {
        let a = canonicalize(
            Rect::new(1, 1, 2, 2),
            Rect::new(5, 5, 6, 6),
            Rect::new(1, 1, 6, 6),
            &UniformField::new(0.9),
            &[],
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        );
        let b = canonicalize(
            Rect::new(1, 1, 2, 2),
            Rect::new(5, 5, 6, 6),
            Rect::new(1, 1, 6, 6),
            &UniformField::new(0.8),
            &[],
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        );
        assert_ne!(a.0.digest(), b.0.digest());
        // Query changes the digest too (the cached values mean different
        // things under Pmax and Rmin).
        let c = canonicalize(
            Rect::new(1, 1, 2, 2),
            Rect::new(5, 5, 6, 6),
            Rect::new(1, 1, 6, 6),
            &UniformField::new(0.9),
            &[],
            &ActionConfig::default(),
            Query::MaxReachProbability,
        );
        assert_ne!(a.0.digest(), c.0.digest());
    }

    /// Shrunk counterexample pin: a hazard box crossing the bounds must
    /// NOT share a key with its clipped equivalent, even though the two
    /// induce the same MDP today — the unclipped remainder becomes
    /// load-bearing if the bounds widen later (DESIGN.md §16).
    #[test]
    fn crossing_hazard_box_does_not_alias_its_clipped_equivalent() {
        let bounds = Rect::new(1, 1, 6, 4);
        let field = UniformField::new(0.9);
        let crossing = [HazardBox::soft(Rect::new(5, 2, 9, 3), 0.4)];
        let clipped = [HazardBox::soft(Rect::new(5, 2, 6, 3), 0.4)];
        let mk = |hz: &[HazardBox]| {
            canonicalize(
                Rect::new(1, 1, 2, 2),
                Rect::new(5, 3, 6, 4),
                bounds,
                &field,
                hz,
                &ActionConfig::default(),
                Query::MinExpectedCycles,
            )
            .0
        };
        let a = mk(&crossing);
        let b = mk(&clipped);
        assert_ne!(a.key(), b.key());
        assert_ne!(a.digest(), b.digest());
        // Sanity: the clipped variants themselves are stable.
        assert_eq!(mk(&clipped).key(), b.key());
    }

    #[test]
    fn transform_round_trips_rects_and_actions() {
        let dims = ChipDims::new(9, 5);
        let grid = Grid::from_fn(dims, |c| 0.3 + 0.07 * c.x as f64 + 0.011 * c.y as f64);
        let field = DegradationField::new(grid);
        let (_, tf) = canonicalize(
            Rect::new(2, 2, 3, 3),
            Rect::new(8, 4, 9, 5),
            dims.bounds(),
            &field,
            &[],
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        );
        for r in [Rect::new(2, 2, 3, 3), Rect::new(5, 1, 7, 2)] {
            assert_eq!(tf.from_canonical_rect(tf.to_canonical_rect(r)), r);
        }
        for a in Action::ALL {
            assert_eq!(tf.from_canonical_action(tf.to_canonical_action(a)), a);
        }
    }

    #[test]
    fn canonical_synthesis_value_matches_original_frame() {
        // Synthesize the same job in the original and canonical frames:
        // the optimal value is frame-independent (up to float summation
        // order inside frontier means).
        let dims = ChipDims::new(9, 6);
        let grid = Grid::from_fn(dims, |c| 0.5 + 0.04 * c.x as f64 + 0.02 * c.y as f64);
        let field = DegradationField::new(grid);
        let start = Rect::new(1, 4, 2, 5);
        let goal = Rect::new(8, 1, 9, 2);
        let mdp = RoutingMdp::build(start, goal, dims.bounds(), &field, &ActionConfig::default())
            .expect("build");
        let direct = crate::synthesize(&mdp, Query::MinExpectedCycles).expect("direct");
        let (job, tf) = canonicalize(
            start,
            goal,
            dims.bounds(),
            &field,
            &[],
            &ActionConfig::default(),
            Query::MinExpectedCycles,
        );
        let canon = job.synthesize().expect("canonical");
        assert!(
            (canon.value_at_init() - direct.value_at_init()).abs()
                < 1e-6 * (1.0 + direct.value_at_init().abs()),
            "canonical {} vs direct {}",
            canon.value_at_init(),
            direct.value_at_init()
        );
        // Materialized back into the original frame, the strategy walks
        // the original job to its goal.
        let materialized = materialize(&canon, &tf, mdp).expect("materialize");
        let path = materialized.nominal_path();
        assert!(materialized.is_goal(*path.last().expect("nonempty")));
    }
}
