use meda_bioassay::RoutingJob;
use meda_core::{Action, Dir, HazardBox, HealthField};
use meda_grid::Rect;

/// A droplet router: the control seam between the scheduler and the chip.
///
/// The engine calls [`begin_job`](Router::begin_job) once per routing job
/// and then [`next_action`](Router::next_action) every cycle with the
/// droplet's current (sensed) location and the current health matrix —
/// everything a real controller could observe.
pub trait Router {
    /// Short name for reports ("baseline", "adaptive").
    fn name(&self) -> &str;

    /// Prepares for a routing job. Returning `false` declares the job
    /// infeasible (the engine aborts the run).
    fn begin_job(&mut self, job: &RoutingJob, health: &HealthField) -> bool;

    /// The action to apply this cycle, or `None` if the router has no move
    /// (the engine aborts the run; goal arrival is detected by the engine
    /// before asking).
    fn next_action(&mut self, droplet: Rect, health: &HealthField) -> Option<Action>;

    /// Installs the current set of fleet hazard zones (peer droplets'
    /// reserved corridors, see [`HazardBox`]). Called by the concurrent
    /// fleet engine whenever a peer corridor appears, shifts, or is
    /// released; never called on the serial path. Routers that don't plan
    /// ahead (the greedy baseline) may ignore it — the runtime fluidic
    /// checker still enforces separation.
    fn set_hazards(&mut self, _boxes: &[HazardBox]) {}
}

/// The degradation-unaware baseline of Section VII-A: a shortest-path
/// strategy minimizing the distance traveled, never consulting the health
/// matrix. It repeats the same greedy move until it (eventually) succeeds —
/// exactly how it gets stuck on failed microelectrodes.
///
/// # Examples
///
/// ```
/// use meda_bioassay::RoutingJob;
/// use meda_core::{Action, Dir, HealthField};
/// use meda_degradation::HealthLevel;
/// use meda_grid::{ChipDims, Grid, Rect};
/// use meda_sim::{BaselineRouter, Router};
///
/// let health = HealthField::new(
///     Grid::new(ChipDims::new(20, 20), HealthLevel::full(2)), 2);
/// let job = RoutingJob::new(
///     Rect::new(1, 1, 3, 3), Rect::new(9, 1, 11, 3), Rect::new(1, 1, 14, 6));
/// let mut router = BaselineRouter::new();
/// assert!(router.begin_job(&job, &health));
/// assert_eq!(
///     router.next_action(Rect::new(1, 1, 3, 3), &health),
///     Some(Action::Move(meda_core::Dir::E))
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct BaselineRouter {
    goal: Rect,
    double_steps: bool,
}

impl BaselineRouter {
    /// Creates the paper's baseline: single-step moves only (the paper's
    /// baseline minimizes the *distance traveled*, for which double steps
    /// buy nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A cycle-minimizing variant that also takes double steps where the
    /// Section V-B guard allows — used by the fairness ablation to separate
    /// the adaptive router's action-set advantage from its health
    /// adaptivity.
    #[must_use]
    pub fn with_double_steps() -> Self {
        Self {
            goal: Rect::default(),
            double_steps: true,
        }
    }
}

impl Router for BaselineRouter {
    fn name(&self) -> &str {
        "baseline"
    }

    fn begin_job(&mut self, job: &RoutingJob, _health: &HealthField) -> bool {
        self.goal = job.goal;
        true
    }

    fn next_action(&mut self, droplet: Rect, _health: &HealthField) -> Option<Action> {
        // Greedy: close the larger axis gap first; x-gap wins ties.
        let dx = if droplet.xa < self.goal.xa {
            self.goal.xa - droplet.xa
        } else if droplet.xb > self.goal.xb {
            self.goal.xb - droplet.xb // negative
        } else {
            0
        };
        let dy = if droplet.ya < self.goal.ya {
            self.goal.ya - droplet.ya
        } else if droplet.yb > self.goal.yb {
            self.goal.yb - droplet.yb
        } else {
            0
        };
        if dx == 0 && dy == 0 {
            return None; // already inside the goal region
        }
        let (dir, gap) = if dx.abs() >= dy.abs() {
            (if dx > 0 { Dir::E } else { Dir::W }, dx.abs())
        } else {
            (if dy > 0 { Dir::N } else { Dir::S }, dy.abs())
        };
        let extent = if dir.is_vertical() {
            droplet.height()
        } else {
            droplet.width()
        };
        if self.double_steps && gap >= 2 && extent >= 4 {
            Some(Action::MoveDouble(dir))
        } else {
            Some(Action::Move(dir))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_degradation::HealthLevel;
    use meda_grid::{ChipDims, Grid};

    fn health() -> HealthField {
        HealthField::new(Grid::new(ChipDims::new(30, 30), HealthLevel::full(2)), 2)
    }

    fn job(start: Rect, goal: Rect) -> RoutingJob {
        RoutingJob::new(start, goal, Rect::new(1, 1, 30, 30))
    }

    #[test]
    fn moves_along_larger_gap_first() {
        let mut r = BaselineRouter::new();
        assert!(r.begin_job(
            &job(Rect::new(1, 1, 2, 2), Rect::new(10, 5, 11, 6)),
            &health()
        ));
        assert_eq!(
            r.next_action(Rect::new(1, 1, 2, 2), &health()),
            Some(Action::Move(Dir::E))
        );
        // Once x is closer than y, it turns north.
        assert_eq!(
            r.next_action(Rect::new(8, 1, 9, 2), &health()),
            Some(Action::Move(Dir::N))
        );
    }

    #[test]
    fn handles_all_four_directions() {
        let mut r = BaselineRouter::new();
        let g = Rect::new(10, 10, 11, 11);
        assert!(r.begin_job(&job(Rect::new(20, 10, 21, 11), g), &health()));
        assert_eq!(
            r.next_action(Rect::new(20, 10, 21, 11), &health()),
            Some(Action::Move(Dir::W))
        );
        assert_eq!(
            r.next_action(Rect::new(10, 20, 11, 21), &health()),
            Some(Action::Move(Dir::S))
        );
    }

    #[test]
    fn no_action_inside_goal() {
        let mut r = BaselineRouter::new();
        let g = Rect::new(5, 5, 8, 8);
        assert!(r.begin_job(&job(Rect::new(1, 1, 2, 2), g), &health()));
        assert_eq!(r.next_action(Rect::new(6, 6, 7, 7), &health()), None);
    }

    #[test]
    fn ignores_health_entirely() {
        // The baseline presses into a dead column rather than detour.
        let dims = ChipDims::new(30, 30);
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        for y in 1..=30 {
            grid[meda_grid::Cell::new(5, y)] = HealthLevel::new(0, 2);
        }
        let degraded = HealthField::new(grid, 2);
        let mut r = BaselineRouter::new();
        assert!(r.begin_job(
            &job(Rect::new(1, 1, 2, 2), Rect::new(10, 1, 11, 2)),
            &degraded
        ));
        assert_eq!(
            r.next_action(Rect::new(3, 1, 4, 2), &degraded),
            Some(Action::Move(Dir::E)),
            "baseline should still push east into the dead column"
        );
    }
}
