//! Fig. 5 — electrode capacitance versus number of actuations on the PCB
//! testbed: (a) charge trapping (1 s actuations) and (b) residual charge
//! (5 s actuations), for the 2/3/4 mm electrodes.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_degradation::{ActuationMode, PcbExperiment};
use meda_rng::SeedableRng;
use meda_rng::StdRng;

fn print_panel(title: &str, mode: ActuationMode, seed: u64) {
    println!("\n{title}");
    let experiments = [
        PcbExperiment::paper_2mm(mode),
        PcbExperiment::paper_3mm(mode),
        PcbExperiment::paper_4mm(mode),
    ];
    let widths = [8, 14, 14, 14];
    header(&["n", "2mm C (pF)", "3mm C (pF)", "4mm C (pF)"], &widths);

    let mut rng = StdRng::seed_from_u64(seed);
    let series: Vec<_> = experiments
        .iter()
        .map(|e| e.run(&mut rng, 9, 100))
        .collect();
    for ((a, b), c) in series[0].iter().zip(&series[1]).zip(&series[2]) {
        row(
            &[
                format!("{}", a.actuations),
                format!("{:.3}", a.capacitance * 1e12),
                format!("{:.3}", b.capacitance * 1e12),
                format!("{:.3}", c.capacitance * 1e12),
            ],
            &widths,
        );
    }
    for (e, s) in experiments.iter().zip(&series) {
        let growth = (s.last().unwrap().capacitance / s[0].capacitance - 1.0) * 100.0;
        println!(
            "  {}mm: +{growth:.1}% over {} actuations (slope {:.3}%/actuation)",
            e.electrode_mm,
            s.last().unwrap().actuations,
            e.growth_rate() * 100.0
        );
    }
}

fn main() {
    banner(
        "Fig. 5 — electrode degradation on the PCB testbed (synthetic)",
        "Effective capacitance grows linearly with repeated actuation; the \
         5 s residual-charge regime grows much faster than 1 s charge \
         trapping (DESIGN.md §3 documents the testbed substitution).",
    );
    print_panel(
        "(a) charge trapping, 1 s actuations",
        ActuationMode::ChargeTrapping,
        51,
    );
    print_panel(
        "(b) residual charge, 5 s actuations",
        ActuationMode::ResidualCharge,
        52,
    );
    println!(
        "\nPaper shape: linear growth in both panels, with panel (b) several \
         times steeper — reproduced above."
    );
}
