//! Solver profiling harness: sweep/timing breakdown for the paper-scale
//! (90×90, 3×3 droplet) Rmin solve, comparing the Gauss–Seidel baseline
//! against the topological engine and dumping the solver telemetry
//! counters. Run with `cargo run --release -p meda-synth --example
//! profile_rmin` when tuning sweep-order or queue heuristics — it is the
//! quick inner loop the full bench matrix is too slow for.
use std::time::Instant;

use meda_core::{ActionConfig, HealthField, RoutingMdp};
use meda_degradation::HealthLevel;
use meda_grid::{ChipDims, Grid, Rect};
use meda_synth::{max_reach_probability, min_expected_cycles, SolverMethod, SolverOptions};

fn main() {
    let (aw, ah) = (90u32, 90u32);
    let (dw, dh) = (3u32, 3u32);
    const BITS: u8 = 3;
    let dims = ChipDims::new(aw + 2, ah + 2);
    let health = Grid::from_fn(dims, |c| {
        let spread = ((c.x * 7 + c.y * 13) % 3) as u8;
        HealthLevel::new(7 - spread, BITS)
    });
    let field = HealthField::new(health, BITS);
    let bounds = Rect::new(1, 1, aw as i32, ah as i32);
    let start = Rect::with_size(1, 1, dw, dh);
    let goal = Rect::with_size(aw as i32 - dw as i32 + 1, ah as i32 - dh as i32 + 1, dw, dh);
    let config = ActionConfig::moves_only();
    let mdp = RoutingMdp::build(start, goal, bounds, &field, &config).unwrap();
    println!("states={}", mdp.len());

    for method in [SolverMethod::GaussSeidel, SolverMethod::Topological] {
        let opts = SolverOptions {
            method,
            ..SolverOptions::default()
        };
        let t0 = Instant::now();
        let reach = max_reach_probability(&mdp, opts.clone());
        let t_reach = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let r = min_expected_cycles(&mdp, opts);
        let t_rmin = t1.elapsed().as_secs_f64() * 1e3;
        let inf = r.values.iter().filter(|v| v.is_infinite()).count();
        println!(
            "{method:?}: reach {t_reach:.2}ms it={} | rmin(total incl reach) {t_rmin:.2}ms it={} v0={:.4} inf={inf} conv={}",
            reach.iterations, r.iterations, r.values[0], r.converged
        );
    }
    let summary = meda_telemetry::global().summary();
    for key in [
        "synth.solve.sweeps.greedy",
        "synth.solve.pq.pushes",
        "synth.solve.pq.pops",
        "synth.solve.confirm.retries",
    ] {
        println!("{key} = {:?}", summary.counter(key));
    }
}
