//! End-to-end tests of supervised execution: bit-identity with the plain
//! runner on the no-fault path, each escalation rung under the fault that
//! provokes it, and a seeded property sweep of random fault plans.

use meda_bioassay::{benchmarks, BioassayPlan, RjHelper};
use meda_grid::{Cell, ChipDims};
use meda_rng::{Rng, SeedableRng, StdRng};
use meda_sim::{
    AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip, DegradationConfig,
    FaultPlan, RunConfig, RunStatus, Rung, SuddenDeath, Supervisor, SupervisorConfig,
};

fn plan(sg: &meda_bioassay::SequencingGraph) -> BioassayPlan {
    RjHelper::new(ChipDims::PAPER).plan(sg).unwrap()
}

/// With no chaos and sensing off, the supervisor must be invisible: the
/// escalation ladder exists only on the failure path, so cycles, status,
/// wear, and the RNG stream position all match the plain runner on the
/// Fig 15/16 evaluation seeds.
#[test]
fn supervised_run_is_bit_identical_to_plain_runner_without_faults() {
    for (sg, seed) in [
        (benchmarks::master_mix(), 99u64),
        (benchmarks::covid_rat(), 1600u64),
    ] {
        let p = plan(&sg);
        let plain = {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut chip =
                Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
            let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
            let outcome =
                BioassayRunner::new(RunConfig::default()).run(&p, &mut chip, &mut router, &mut rng);
            (
                outcome.cycles,
                outcome.status,
                chip.total_actuations(),
                rng.gen::<u64>(),
            )
        };
        let supervised = {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut chip =
                Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
            let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
            let report = Supervisor::new(SupervisorConfig::default()).run(
                &p,
                &mut chip,
                &mut router,
                &FaultPlan::none(),
                &mut rng,
            );
            // No faults, no ladder: every operation must land first try.
            assert_eq!(report.resolved_by.len(), report.total_ops);
            assert!(
                report
                    .resolved_by
                    .iter()
                    .all(|&(_, rung)| rung == Rung::FirstTry),
                "fault-free run climbed the ladder: {:?}",
                report.resolved_by
            );
            (
                report.cycles,
                report.status,
                chip.total_actuations(),
                rng.gen::<u64>(),
            )
        };
        assert_eq!(plain, supervised, "{} seed {seed}", sg.name());
        assert_eq!(supervised.1, RunStatus::Success);
    }
}

/// Electrode death over a routing goal makes every attempt fail; the
/// ladder must climb all three recovery rungs (re-sense, re-synthesize,
/// detour) before the operation is finally aborted.
#[test]
fn electrode_death_climbs_to_the_detour_rung() {
    let p = plan(&benchmarks::master_mix());
    // Kill the first routed (non-dispense) job's goal region at cycle 5 —
    // no router can land the droplet on force-less electrodes.
    let victim = p
        .operations()
        .iter()
        .flat_map(|mo| mo.jobs.iter())
        .find(|job| !job.is_dispense())
        .expect("master mix has routed jobs")
        .goal;
    let mut chaos = FaultPlan::none();
    for cell in victim.cells() {
        chaos.sudden_deaths.push(SuddenDeath { cell, at_cycle: 5 });
    }

    let mut rng = StdRng::seed_from_u64(7);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::pristine(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let config = SupervisorConfig {
        run: RunConfig {
            // Room for all four watchdog-bounded attempts (4 x 256 cycles)
            // plus the rest of the assay — otherwise the global budget dies
            // first and the terminal CycleLimit masks the abort rung.
            k_max: 4_000,
            sensed_feedback: true,
            ..RunConfig::default()
        },
        ..SupervisorConfig::default()
    };
    let report = Supervisor::new(config).run(&p, &mut chip, &mut router, &chaos, &mut rng);

    let rungs = report.rungs;
    assert!(rungs.resense >= 1, "rung 1 never fired: {rungs:?}");
    assert!(rungs.resynth >= 1, "rung 2 never fired: {rungs:?}");
    assert!(rungs.detour >= 1, "rung 3 never fired: {rungs:?}");
    assert!(rungs.aborted_ops >= 1, "the dead goal must abort its MO");
    assert!(!report.is_success());
    assert!(
        !report.failures.is_empty() && report.failures[0].retries == config.retry_budget,
        "the failing job must consume the whole retry budget"
    );
    // The winning-rung record covers exactly the completed operations, and
    // none of them needed the ladder — only the aborted MO was attacked.
    assert_eq!(report.resolved_by.len(), report.completed_ops);
    assert!(
        report
            .resolved_by
            .iter()
            .all(|&(_, rung)| rung == Rung::FirstTry),
        "an untouched operation climbed the ladder: {:?}",
        report.resolved_by
    );
}

/// Electrode death over a routing goal with the reconfiguration rung
/// armed: when all three recovery rungs fail, the planner must find a
/// spare region on the (otherwise pristine) chip, relocate the target
/// zone, and land the operation — no abort.
#[test]
fn reconfiguration_rung_relocates_a_dead_target_zone() {
    let p = plan(&benchmarks::master_mix());
    let victim = p
        .operations()
        .iter()
        .flat_map(|mo| mo.jobs.iter())
        .find(|job| !job.is_dispense())
        .expect("master mix has routed jobs")
        .goal;
    let mut chaos = FaultPlan::none();
    for cell in victim.cells() {
        chaos.sudden_deaths.push(SuddenDeath { cell, at_cycle: 5 });
    }

    let mut rng = StdRng::seed_from_u64(7);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::pristine(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let config = SupervisorConfig {
        run: RunConfig {
            // Room for the full ladder plus a relocated re-dispatch.
            k_max: 8_000,
            sensed_feedback: true,
            ..RunConfig::default()
        },
        reconfig_budget: 2,
        ..SupervisorConfig::default()
    };
    let report = Supervisor::new(config).run(&p, &mut chip, &mut router, &chaos, &mut rng);

    assert!(
        report.rungs.reconfig >= 1,
        "the reconfiguration rung never fired: {report:?}"
    );
    assert_eq!(report.rungs.aborted_ops, 0, "abort despite a spare region");
    assert!(report.is_success(), "relocated run failed: {report:?}");
    assert!(
        report
            .resolved_by
            .iter()
            .any(|&(_, rung)| rung == Rung::Reconfig),
        "no operation credits the reconfiguration rung: {:?}",
        report.resolved_by
    );
}

/// A dispense whose target zone dies is invisible to the retry rungs (no
/// sensing loop), but the watchdog must still trip it and the
/// reconfiguration planner must relocate the entry zone onto live
/// electrodes.
#[test]
fn reconfiguration_rung_relocates_a_dead_dispense_zone() {
    let p = plan(&benchmarks::master_mix());
    // Master-mix entry zones sit one cell from the chip edge, so each
    // dispense lands within a couple of cycles. Kill the *last* dispense's
    // zone at cycle 1 — the death fires during the first operation's
    // dispense, guaranteed ahead of the victim's.
    let victim = p
        .operations()
        .iter()
        .flat_map(|mo| mo.jobs.iter())
        .rfind(|job| job.is_dispense())
        .expect("master mix has dispense jobs")
        .goal;
    let mut chaos = FaultPlan::none();
    for cell in victim.cells() {
        chaos.sudden_deaths.push(SuddenDeath { cell, at_cycle: 1 });
    }

    let mut rng = StdRng::seed_from_u64(11);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::pristine(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let config = SupervisorConfig {
        run: RunConfig {
            k_max: 8_000,
            sensed_feedback: true,
            ..RunConfig::default()
        },
        reconfig_budget: 2,
        ..SupervisorConfig::default()
    };
    let report = Supervisor::new(config).run(&p, &mut chip, &mut router, &chaos, &mut rng);

    assert!(
        report.rungs.reconfig >= 1,
        "the dead dispense zone never triggered reconfiguration: {report:?}"
    );
    assert!(report.is_success(), "relocated dispense failed: {report:?}");
    assert!(
        report
            .resolved_by
            .iter()
            .any(|&(_, rung)| rung == Rung::Reconfig),
        "no operation credits the reconfiguration rung: {:?}",
        report.resolved_by
    );
}

/// Dense stuck-at-0 sensors over a goal region wedge the position
/// estimate: the watchdog must fire, the ladder must retry, and when the
/// retries run out the supervisor must abort only that operation and keep
/// its independent lane alive.
#[test]
fn unrecoverable_operation_is_aborted_and_dependents_skipped() {
    let p = RjHelper::new(ChipDims::PAPER)
        .plan(&benchmarks::multiplex_invitro((4, 4)))
        .unwrap();
    // Blind the sensors over one lane's mix target: stuck-at-0 bits
    // swallow the droplet there, so the lane's mix can never confirm
    // arrival while the other lane's sensors stay honest.
    let victim = p
        .operations()
        .iter()
        .flat_map(|mo| mo.jobs.iter())
        .find(|job| !job.is_dispense())
        .expect("multiplex has routed jobs")
        .goal;
    let mut chaos = FaultPlan::none();
    for cell in victim.expand(2).cells() {
        chaos
            .stuck_sensors
            .push(meda_sim::StuckBit { cell, reads: false });
    }

    let mut rng = StdRng::seed_from_u64(3);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::pristine(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let config = SupervisorConfig {
        run: RunConfig {
            sensed_feedback: true,
            ..RunConfig::default()
        },
        ..SupervisorConfig::default()
    };
    let report = Supervisor::new(config).run(&p, &mut chip, &mut router, &chaos, &mut rng);

    // Graceful degradation: the poisoned lane is aborted and its
    // dependents skipped, while the honest lane still completes.
    assert!(report.rungs.aborted_ops >= 1, "no abort: {report:?}");
    assert!(report.completed_ops > 0, "nothing salvaged: {report:?}");
    assert!(!report.is_success());
    assert!(!report.failures.is_empty());
    assert!(
        !report.skipped.is_empty(),
        "dependents not skipped: {report:?}"
    );
    let failed_mos: Vec<usize> = report.failures.iter().map(|f| f.mo).collect();
    for &skipped in &report.skipped {
        let mo = &p.operations()[skipped];
        assert!(
            mo.pre
                .iter()
                .any(|pre| failed_mos.contains(pre) || report.skipped.contains(pre)),
            "MO {skipped} skipped without a failed ancestor"
        );
    }
}

/// Stuck sensor bits that perturb (but do not wedge) the estimate drive
/// the early rungs: across a seed sweep the resense rung must fire and
/// runs must still mostly complete.
#[test]
fn sensor_noise_drives_the_resense_rung() {
    let p = plan(&benchmarks::master_mix());
    let mut resensed = 0u64;
    let mut completed = 0u32;
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
        let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
        let chaos = FaultPlan::none().with_stuck_sensors(ChipDims::PAPER, 0.01, &mut rng);
        let config = SupervisorConfig {
            run: RunConfig {
                sensed_feedback: true,
                ..RunConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let report = Supervisor::new(config).run(&p, &mut chip, &mut router, &chaos, &mut rng);
        resensed += report.rungs.resense;
        completed += u32::from(report.is_success());
    }
    assert!(resensed > 0, "no run ever re-sensed");
    assert!(completed >= 5, "only {completed}/10 runs completed");
}

/// Property sweep: any random fault plan yields a coherent report and
/// never panics — counts add up, fractions stay in range, failures name
/// real operations, and the ladder counters are consistent with the
/// number of retries consumed.
#[test]
fn random_fault_plans_never_panic_and_reports_stay_coherent() {
    let p = RjHelper::new(ChipDims::PAPER)
        .plan(&benchmarks::multiplex_invitro((4, 4)))
        .unwrap();
    let total = p.operations().len();
    let mut meta = StdRng::seed_from_u64(0xC4A05);
    for _ in 0..20 {
        let seed = meta.gen_range(0..10_000u64);
        let sensed = meta.gen::<bool>();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
        let mut router = BaselineRouter::new();
        let chaos = FaultPlan::random(ChipDims::PAPER, 2_000, &mut rng);
        let config = SupervisorConfig {
            run: RunConfig {
                sensed_feedback: sensed,
                ..RunConfig::default()
            },
            ..SupervisorConfig::default()
        };
        let report = Supervisor::new(config).run(&p, &mut chip, &mut router, &chaos, &mut rng);

        assert_eq!(report.total_ops, total);
        assert!(report.completed_ops <= total);
        assert!(
            report.completed_ops + report.failures.len() + report.skipped.len() <= total,
            "seed {seed}: accounting exceeds the plan"
        );
        let frac = report.completion_fraction();
        assert!((0.0..=1.0).contains(&frac), "seed {seed}: fraction {frac}");
        assert_eq!(report.is_success(), report.status == RunStatus::Success);
        for failure in &report.failures {
            assert!(failure.mo < total, "seed {seed}: failure names a ghost MO");
            assert!(
                failure.retries <= SupervisorConfig::default().retry_budget,
                "seed {seed}: retries over budget"
            );
            assert!(
                ChipDims::PAPER.bounds().contains_cell(Cell::new(
                    failure.last_position.xa,
                    failure.last_position.ya
                )),
                "seed {seed}: last position off-chip"
            );
        }
        for &skipped in &report.skipped {
            assert!(skipped < total, "seed {seed}: skipped a ghost MO");
        }
        if report.status == RunStatus::Success {
            assert!(report.failures.is_empty() && report.skipped.is_empty());
        }
    }
}
