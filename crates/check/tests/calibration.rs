//! Calibration of the sim-vs-MDP oracle against the audit corruption
//! corpus: every mutation class `meda-audit`'s corpus tests inject must
//! also be caught by [`meda_check::oracle::sim_vs_mdp`] on generated
//! scenarios — within the default case budget, with a shrunk catching
//! witness no larger than a 6×6 chip.
//!
//! The property is *inverted* so the shrinker works for us: "the oracle
//! catches the mutant" is treated as the failure we minimize. A class
//! whose property never "fails" is a class the oracle cannot detect —
//! that is the calibration bug this test exists to expose.

use meda_audit::ModelArtifact;
use meda_check::oracle::{routing_scenario, sim_vs_mdp, McParams, RoutingScenario};
use meda_check::{cases_from_env, run_property, Config, Outcome};
use meda_core::Action;
use meda_rng::{Rng, SeedableRng, StdRng};
use meda_synth::{max_reach_probability, SolverOptions};

/// States reachable from the initial state following only the strategy's
/// chosen actions — the closure the strategy mutations pick their victim
/// from (mirrors `audit_corpus.rs`).
fn strategy_closure(art: &ModelArtifact, choice: &[Option<Action>]) -> Vec<usize> {
    let mut seen = vec![false; art.states];
    let mut stack = vec![art.init];
    seen[art.init] = true;
    while let Some(i) = stack.pop() {
        let Some(action) = choice[i] else { continue };
        let Some(c) = art
            .choice_range(i)
            .find(|&c| art.choice_action[c] == action)
        else {
            continue;
        };
        for b in art.branch_range(c) {
            let t = art.branch_target[b] as usize;
            if t < art.states && !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    (0..art.states).filter(|&i| seen[i]).collect()
}

type Apply = fn(&mut ModelArtifact, &mut Vec<Option<Action>>, &mut StdRng) -> bool;

/// The eight corruption classes of the audit corpus, re-specified here so
/// the calibration cannot silently drift from the corpus it calibrates
/// against.
const MUTATIONS: &[(&str, Apply)] = &[
    ("offset-nonmonotone", |art, _, rng| {
        if art.states < 2 {
            return false;
        }
        let i = rng.gen_range(1..art.states);
        if art.state_choice_start[i] == 0 {
            return false;
        }
        art.state_choice_start[i] = 0;
        true
    }),
    ("offset-semantic-shift", |art, _, rng| {
        if art.choice_branch_start.len() < 3 {
            return false;
        }
        let c = rng.gen_range(1..art.choice_branch_start.len() - 1);
        art.choice_branch_start[c] += 1;
        true
    }),
    ("probability-mass", |art, _, rng| {
        if art.branch_prob.is_empty() {
            return false;
        }
        let b = rng.gen_range(0..art.branch_prob.len());
        art.branch_prob[b] *= 1.5;
        true
    }),
    ("probability-nan", |art, _, rng| {
        if art.branch_prob.is_empty() {
            return false;
        }
        let b = rng.gen_range(0..art.branch_prob.len());
        art.branch_prob[b] = f64::NAN;
        true
    }),
    ("target-dangling", |art, _, rng| {
        if art.branch_target.is_empty() {
            return false;
        }
        let b = rng.gen_range(0..art.branch_target.len());
        art.branch_target[b] = art.states as u32;
        true
    }),
    ("goal-flip", |art, _, rng| {
        if art.states == 0 {
            return false;
        }
        let i = rng.gen_range(0..art.states);
        art.goal_flags[i] = !art.goal_flags[i];
        true
    }),
    ("strategy-erased", |art, choice, rng| {
        let candidates: Vec<usize> = strategy_closure(art, choice)
            .into_iter()
            .filter(|&i| choice[i].is_some() && !art.goal_flags[i])
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[rng.gen_range(0..candidates.len())];
        choice[i] = None;
        true
    }),
    ("strategy-foreign-action", |art, choice, rng| {
        let candidates: Vec<usize> = strategy_closure(art, choice)
            .into_iter()
            .filter(|&i| choice[i].is_some())
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[rng.gen_range(0..candidates.len())];
        let offered: Vec<Action> = art.choice_range(i).map(|c| art.choice_action[c]).collect();
        let foreign = Action::ALL.into_iter().find(|a| !offered.contains(a));
        match foreign {
            Some(a) => {
                choice[i] = Some(a);
                true
            }
            None => false,
        }
    }),
];

#[test]
fn every_corruption_class_is_caught_with_a_small_witness() {
    for &(name, apply) in MUTATIONS {
        let gen = routing_scenario(4, 8);
        let config = Config::default().with_cases(cases_from_env(48));
        let out = run_property(
            &format!("calibration-{name}"),
            &config,
            &gen,
            move |s: &RoutingScenario| {
                let mdp = s.build().map_err(|e| format!("{e:?}"))?;
                let pristine = ModelArtifact::from(&mdp);
                let reach = max_reach_probability(&mdp, SolverOptions::default());
                let mut art = pristine.clone();
                let mut choice = reach.choice.clone();
                let mut mutation_rng = StdRng::seed_from_u64(7);
                if !apply(&mut art, &mut choice, &mut mutation_rng) {
                    return Ok(()); // Inapplicable on this scenario.
                }
                match sim_vs_mdp(s, &art, Some(&choice), &McParams::default()) {
                    // Inverted: detection is the "failure" the shrinker minimizes.
                    Err(detection) => Err(detection),
                    Ok(()) => Ok(()),
                }
            },
        );
        match out {
            Outcome::Failed(f) => {
                let s = &f.shrunk;
                assert!(
                    s.dims.width <= 6 && s.dims.height <= 6,
                    "{name}: catching witness failed to shrink below 6x6:\n{}",
                    f.report()
                );
                assert!(
                    s.start.width() <= 3 && s.start.height() <= 3,
                    "{name}: droplet failed to shrink:\n{}",
                    f.report()
                );
            }
            Outcome::Passed { cases, .. } => {
                panic!("{name}: mutant survived the oracle on all {cases} scenarios");
            }
        }
    }
}
