//! Golden-trace regression for the deterministic execution pipeline.
//!
//! Each fixture runs a paper bioassay exactly as `meda run <assay>` does
//! (same seed, chip, router, and budget) with actuation recording on, and
//! digests the per-cycle actuation patterns into one line per cycle. The
//! digest is compared against a checked-in golden file, so any change to
//! the simulator, router, scheduler, RNG streams, or degradation physics
//! that shifts even one actuation pattern fails loudly.
//!
//! When a change is *intended* to alter the traces, regenerate the files:
//!
//! ```text
//! MEDA_BLESS=1 cargo test --test golden
//! ```
//!
//! then review the golden diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use meda::bioassay::RjHelper;
use meda::grid::{ChipDims, Grid};
use meda::sim::{
    AdaptiveConfig, AdaptiveRouter, BioassayRunner, Biochip, DegradationConfig, FifoScheduler,
    RunConfig,
};
use meda_rng::SeedableRng;

struct Fixture {
    assay: &'static str,
    seed: u64,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        assay: "master-mix",
        seed: 1,
    },
    Fixture {
        assay: "covid-rat",
        seed: 2,
    },
];

fn golden_path(assay: &str, seed: u64) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("{assay}-seed{seed}.trace"))
}

/// FNV-1a over the row-major actuation bits.
fn pattern_hash(pattern: &Grid<bool>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for (_, bit) in pattern.iter() {
        hash = (hash ^ u64::from(*bit)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs the fixture through the same pipeline as `meda run` (adaptive
/// router, paper chip, FIFO scheduler) and renders the digest text.
fn render_trace(fixture: &Fixture) -> String {
    let plan = RjHelper::new(ChipDims::PAPER)
        .plan(
            &meda::bioassay::benchmarks::evaluation_suite()
                .into_iter()
                .find(|sg| sg.name() == fixture.assay)
                .expect("fixture assay exists"),
        )
        .expect("fixture assay plans");
    let mut rng = meda_rng::StdRng::seed_from_u64(fixture.seed);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let outcome = BioassayRunner::new(RunConfig {
        k_max: 2_000,
        record_actuation: true,
        sensed_feedback: false,
    })
    .run_with_scheduler(
        &plan,
        &mut chip,
        &mut router,
        &mut FifoScheduler::new(),
        &mut rng,
    );

    let mut text = String::new();
    let _ = writeln!(
        text,
        "# golden trace: assay={} seed={} router=adaptive k_max=2000",
        fixture.assay, fixture.seed
    );
    let _ = writeln!(
        text,
        "# regenerate with: MEDA_BLESS=1 cargo test --test golden"
    );
    let _ = writeln!(
        text,
        "status={:?} cycles={} completed={}/{}",
        outcome.status, outcome.cycles, outcome.completed_ops, outcome.total_ops
    );
    let trace = outcome.trace.expect("recording was enabled");
    for (cycle, pattern) in trace.iter().enumerate() {
        let _ = writeln!(
            text,
            "cycle {cycle}: set={} hash={:016x}",
            pattern.count_set(),
            pattern_hash(pattern)
        );
    }
    text
}

#[test]
fn execution_traces_match_golden_files() {
    let bless = std::env::var_os("MEDA_BLESS").is_some();
    for fixture in FIXTURES {
        let path = golden_path(fixture.assay, fixture.seed);
        let actual = render_trace(fixture);
        if bless {
            std::fs::write(&path, &actual).expect("write golden file");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {} — generate it with MEDA_BLESS=1 cargo test --test golden",
                path.display()
            )
        });
        if actual != expected {
            let divergence = actual
                .lines()
                .zip(expected.lines())
                .position(|(a, e)| a != e)
                .map_or_else(
                    || "line counts differ".to_string(),
                    |i| {
                        format!(
                            "first divergence at line {}:\n  golden: {}\n  actual: {}",
                            i + 1,
                            expected.lines().nth(i).unwrap_or(""),
                            actual.lines().nth(i).unwrap_or("")
                        )
                    },
                );
            panic!(
                "{} trace diverged from {} — {divergence}\n\
                 If the change is intended, re-bless with MEDA_BLESS=1 cargo test --test golden",
                fixture.assay,
                path.display()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fleet-engine golden traces.
// ---------------------------------------------------------------------------

use meda::sim::{AdaptivePool, FaultPlan, FleetConfig, FleetRunner};

/// Runs the master-mix fixture through the fleet engine and renders the
/// same digest body as [`render_trace`] (no header comments).
fn render_fleet_body(seed: u64, width: usize) -> String {
    let plan = RjHelper::new(ChipDims::PAPER)
        .plan(&meda::bioassay::benchmarks::master_mix())
        .expect("master mix plans");
    let mut rng = meda_rng::StdRng::seed_from_u64(seed);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
    let mut pool = AdaptivePool::new(AdaptiveConfig::paper());
    let run = RunConfig {
        k_max: 2_000,
        record_actuation: true,
        sensed_feedback: false,
    };
    let outcome = FleetRunner::new(FleetConfig::concurrent(width, run)).run(
        &plan,
        &mut chip,
        &mut pool,
        &mut FifoScheduler::new(),
        &FaultPlan::none(),
        &mut rng,
    );

    let mut text = String::new();
    let _ = writeln!(
        text,
        "status={:?} cycles={} completed={}/{}",
        outcome.status, outcome.cycles, outcome.completed_ops, outcome.total_ops
    );
    let trace = outcome.trace.expect("recording was enabled");
    for (cycle, pattern) in trace.iter().enumerate() {
        let _ = writeln!(
            text,
            "cycle {cycle}: set={} hash={:016x}",
            pattern.count_set(),
            pattern_hash(pattern)
        );
    }
    text
}

/// The serial-equivalence pin: the fleet engine at width 1 must reproduce
/// the *checked-in* master-mix golden trace byte for byte (not merely
/// match a fresh serial run), so the serial path cannot drift under the
/// fleet refactor without failing a reviewed fixture.
#[test]
fn serial_fleet_reproduces_the_master_mix_golden_trace() {
    let path = golden_path("master-mix", 1);
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — generate it with MEDA_BLESS=1 cargo test --test golden",
            path.display()
        )
    });
    let golden_body: String = golden
        .lines()
        .filter(|l| !l.starts_with('#'))
        .map(|l| format!("{l}\n"))
        .collect();
    let fleet_body = render_fleet_body(1, 1);
    assert_eq!(
        fleet_body, golden_body,
        "width-1 fleet trace diverged from the serial golden fixture"
    );
}

/// The concurrent fixture: master mix at fleet width 4, pinned like the
/// serial traces (re-bless with `MEDA_BLESS=1 cargo test --test golden`).
#[test]
fn concurrent_fleet_trace_matches_golden_file() {
    let path = golden_path("fleet-master-mix-n4", 1);
    let mut actual = String::new();
    let _ = writeln!(
        actual,
        "# golden trace: assay=master-mix seed=1 router=adaptive-pool fleet_width=4 k_max=2000"
    );
    let _ = writeln!(
        actual,
        "# regenerate with: MEDA_BLESS=1 cargo test --test golden"
    );
    actual.push_str(&render_fleet_body(1, 4));
    if std::env::var_os("MEDA_BLESS").is_some() {
        std::fs::write(&path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {} — generate it with MEDA_BLESS=1 cargo test --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "fleet trace diverged — if intended, re-bless with MEDA_BLESS=1 cargo test --test golden"
    );
}
