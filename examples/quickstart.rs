//! Quickstart: synthesize one adaptive routing strategy and execute a
//! complete bioassay on a degrading MEDA biochip.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use meda::bioassay::{benchmarks, RjHelper};
use meda::core::{ActionConfig, RoutingMdp};
use meda::grid::{ChipDims, Rect};
use meda::sim::{
    AdaptiveConfig, AdaptiveRouter, BioassayRunner, Biochip, DegradationConfig, RunConfig,
};
use meda::synth::{synthesize, Query};
use meda_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: one routing job, by hand. -------------------------------
    // Route a 4×4 droplet across a 20×20 hazard area on a pristine chip.
    let start = Rect::new(1, 1, 4, 4);
    let goal = Rect::new(17, 17, 20, 20);
    let bounds = Rect::new(1, 1, 20, 20);
    let field = meda::core::UniformField::pristine();

    let mdp = RoutingMdp::build(start, goal, bounds, &field, &ActionConfig::default())?;
    let strategy = synthesize(&mdp, Query::MinExpectedCycles)?;
    println!(
        "routing job {start} -> {goal}: model has {} states, optimal expected time {:.1} cycles",
        mdp.stats().states,
        strategy.value_at_init()
    );

    // Walk the strategy's nominal (all-success) path.
    let mut droplet = start;
    let mut path = vec![droplet];
    while let Some(action) = strategy.decide(droplet) {
        droplet = action.apply(droplet);
        path.push(droplet);
    }
    println!(
        "nominal path: {} steps, first {} then {} ... arriving at {droplet}",
        path.len() - 1,
        strategy.decide(start).expect("start has an action"),
        strategy
            .decide(path[1])
            .map_or("-".into(), |a| a.to_string()),
    );

    // --- Part 2: a whole bioassay on a degrading chip. -------------------
    let dims = ChipDims::PAPER; // the paper's 60×30 fabricated chip
    let plan = RjHelper::new(dims).plan(&benchmarks::covid_rat())?;
    println!(
        "\nbioassay '{}': {} operations, {} routing jobs",
        plan.name(),
        plan.operations().len(),
        plan.total_jobs()
    );

    let mut rng = meda_rng::StdRng::seed_from_u64(42);
    let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let runner = BioassayRunner::new(RunConfig::default());

    for run in 1..=3 {
        let outcome = runner.run(&plan, &mut chip, &mut router, &mut rng);
        println!(
            "run {run}: {:?} in {} cycles (chip wear: {} total actuations, \
             {} strategy re-syntheses so far)",
            outcome.status,
            outcome.cycles,
            chip.total_actuations(),
            router.resynth_count()
        );
    }

    Ok(())
}
