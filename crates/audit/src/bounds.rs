//! Certified `[lo, hi]` value bounds by interval iteration over the
//! maximal-end-component quotient (DESIGN.md §14).
//!
//! The Bellman-residual certificate ([`crate::bellman_certificate`]) only
//! proves a vector is an ε-fixed-point — it says **nothing** about the
//! distance to the true value. The `Pmax` operator can have a whole family
//! of fixed points (one per end component the process can linger in;
//! Haddad & Monmège), so a solver can converge, residual-certify, and
//! still be arbitrarily wrong. This module computes *sound* bounds
//! instead:
//!
//! - `Pmax`: graph-only qualitative analysis pins the certain states
//!   (cannot-reach-goal → 0, almost-sure-reach → 1), the MEC
//!   decomposition from `meda-core` collapses every end component to one
//!   quotient state (in-component branches become analytically factored
//!   self-loops), and on the quotient the operator has a **unique** fixed
//!   point — so the 0-seeded ascent and 1-seeded descent converge to the
//!   same limit, squeezing `v*` inside `[lo, hi]`.
//! - `Rmin`: after the `Prob1` double fixed point identifies the states
//!   with an almost-surely-reaching (proper) strategy, its witness policy
//!   is evaluated *exactly* ([`crate::eval`]) to seed the descent with a
//!   finite over-approximation (∞-seeded iteration can stall on cyclic
//!   proper policies), while the ascent starts from 0; unit step costs
//!   make every improper policy infinite, so the restricted operator has
//!   a unique fixed point and both iterates converge to it.
//!
//! Iteration stops when `hi − lo ≤ 2ε` everywhere, so reporting the
//! midpoint is within `ε` of the truth — a claim about the *value*, not
//! the trajectory. [`verify_bounds`] re-checks a claimed certificate from
//! scratch via one monotone backup (Knaster–Tarski: a post-fixed point
//! bounds the least fixed point from below on the quotient, a pre-fixed
//! point bounds it from above), which is what the corruption corpus
//! attacks.

use meda_core::{mec_decomposition, Action, Dir, MecDecomposition, NO_MEC};

use crate::eval::evaluate_pick_exact;
use crate::{ModelArtifact, ValueKind, Violation};

/// Absolute slack used when re-verifying a certificate's inequalities:
/// covers f64 rounding of the monotone backups without admitting any
/// mutation the corpus generates (those are ≥ 1e-3 off).
pub const BOUNDS_SLACK: f64 = 1e-7;

/// Iteration budget for [`compute_bounds`] (matches the solver's default).
pub const BOUNDS_MAX_ITERATIONS: usize = 100_000;

/// Sound per-state value bounds: `lo[i] ≤ v*(i) ≤ hi[i]` (up to f64
/// rounding of the monotone backups), produced by [`compute_bounds`] and
/// re-checkable from scratch by [`verify_bounds`].
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsCertificate {
    /// Operator the bounds certify.
    pub kind: ValueKind,
    /// Target half-width: iteration stops at `hi − lo ≤ 2ε`.
    pub epsilon: f64,
    /// Lower bound per state (from-below iterate).
    pub lo: Vec<f64>,
    /// Upper bound per state (from-above iterate; `∞` for `Rmin` states
    /// with no almost-surely-reaching strategy).
    pub hi: Vec<f64>,
    /// Sweeps performed (each sweep advances both iterates once).
    pub iterations: usize,
    /// Whether the width target was met within the iteration budget.
    pub converged: bool,
    /// Largest finite `hi − lo` over the states at termination.
    pub width: f64,
    /// Number of maximal end components of the model.
    pub mecs: usize,
    /// Size of the largest maximal end component (0 when none).
    pub largest_mec: usize,
}

impl BoundsCertificate {
    /// The interval width at state `i`; two infinite endpoints agree
    /// exactly, so their width is 0.
    #[must_use]
    pub fn width_at(&self, i: usize) -> f64 {
        if self.lo[i].is_infinite() && self.hi[i].is_infinite() {
            0.0
        } else {
            self.hi[i] - self.lo[i]
        }
    }

    /// Whether `value` lies within `[lo − tol, hi + tol]` at state `i`.
    /// An infinite `value` needs an infinite upper bound.
    #[must_use]
    pub fn contains(&self, i: usize, value: f64, tol: f64) -> bool {
        if value.is_nan() {
            return false;
        }
        if value.is_infinite() {
            return self.hi[i].is_infinite();
        }
        self.lo[i] - tol <= value && value <= self.hi[i] + tol
    }
}

/// Computes a sound [`BoundsCertificate`] for the artifact by interval
/// iteration (see the module docs for the construction per operator).
///
/// The artifact must have passed [`crate::audit_model`] — the qualitative
/// analyses and sweeps index the CSR arrays directly.
#[must_use]
pub fn compute_bounds(
    art: &ModelArtifact,
    kind: ValueKind,
    epsilon: f64,
    max_iterations: usize,
) -> BoundsCertificate {
    let telemetry = meda_telemetry::global();
    let _span = telemetry.span("audit.bounds");
    let mec = {
        let _mec_span = telemetry.span("audit.bounds.mec");
        mec_decomposition(
            &art.state_choice_start,
            &art.choice_branch_start,
            &art.branch_target,
        )
    };
    telemetry.add("audit.bounds.mecs", mec.mecs() as u64);
    let mut cert = match kind {
        ValueKind::Reachability => pmax_bounds(art, &mec, epsilon, max_iterations),
        ValueKind::ExpectedCycles => rmin_bounds(art, epsilon, max_iterations),
    };
    cert.mecs = mec.mecs();
    cert.largest_mec = mec.largest();
    telemetry.add("audit.bounds.iterations", cert.iterations as u64);
    cert
}

/// Re-derives every soundness obligation of a claimed certificate from
/// scratch — qualitative sets, MEC quotient, and one monotone backup per
/// bound — so a corrupted `[lo, hi]` is caught even though it may be a
/// perfectly consistent-looking pair of vectors:
///
/// - both vectors sized, finite where required, `lo ≤ hi`;
/// - `Pmax`: the upper bound is a pre-fixed point of the plain operator
///   (`T(hi) ≤ hi` ⟹ `hi ≥ lfp = v*`), and the lower bound, projected
///   onto the MEC quotient, is a post-fixed point of the quotient
///   operator, whose fixed point is unique (`lo ≤ T_q(lo)` ⟹ `lo ≤ v*`);
/// - `Rmin`: `hi` must be `∞` exactly outside the `Prob1` set, and on it
///   both bounds must satisfy the corresponding inequality of the
///   `Prob1`-restricted operator (unique fixed point under unit costs);
/// - the final width must meet the `2ε` target.
#[must_use]
pub fn verify_bounds(art: &ModelArtifact, cert: &BoundsCertificate) -> Vec<Violation> {
    let n = art.states;
    let mut violations = Vec::new();
    for (which, v) in [("bounds.lo", &cert.lo), ("bounds.hi", &cert.hi)] {
        if v.len() != n {
            violations.push(Violation::BoundsLength {
                which,
                expected: n,
                found: v.len(),
            });
        }
    }
    if !violations.is_empty() {
        return violations;
    }
    for i in 0..n {
        let (lo, hi) = (cert.lo[i], cert.hi[i]);
        for v in [lo, hi] {
            let bad = v.is_nan()
                || match cert.kind {
                    ValueKind::Reachability => !(-BOUNDS_SLACK..=1.0 + BOUNDS_SLACK).contains(&v),
                    ValueKind::ExpectedCycles => v < -BOUNDS_SLACK,
                };
            if bad {
                violations.push(Violation::BoundOutOfRange { state: i, value: v });
            }
        }
        let slack = crossing_slack(lo, hi);
        if !(lo.is_infinite() && hi.is_infinite()) && lo > hi + slack {
            violations.push(Violation::BoundsCrossed { state: i, lo, hi });
        }
    }
    if !violations.is_empty() {
        return violations;
    }
    match cert.kind {
        ValueKind::Reachability => verify_pmax(art, cert, &mut violations),
        ValueKind::ExpectedCycles => verify_rmin(art, cert, &mut violations),
    }
    let width = (0..n).map(|i| cert.width_at(i)).fold(0.0_f64, f64::max);
    // NaN widths must also trip the violation, hence the explicit is_nan arm.
    if width.is_nan() || width > 2.0 * cert.epsilon + BOUNDS_SLACK {
        violations.push(Violation::BoundsNotConverged {
            width,
            epsilon: cert.epsilon,
        });
    }
    violations
}

/// Checks that a value vector lies inside the certified interval at every
/// state — the differential obligation between the (fast, unsound on its
/// own) solver and the (sound) bounds pass.
#[must_use]
pub fn bracket_violations(cert: &BoundsCertificate, values: &[f64], tol: f64) -> Vec<Violation> {
    if values.len() != cert.lo.len() || cert.lo.len() != cert.hi.len() {
        return vec![Violation::ValueLength {
            expected: cert.lo.len(),
            found: values.len(),
        }];
    }
    values
        .iter()
        .enumerate()
        .filter(|&(i, &v)| {
            let scale = if v.is_finite() { v.abs() } else { 0.0 };
            !cert.contains(i, v, tol + 1e-9 * scale)
        })
        .map(|(i, &v)| Violation::ValueOutsideBounds {
            state: i,
            value: v,
            lo: cert.lo[i],
            hi: cert.hi[i],
        })
        .collect()
}

fn crossing_slack(lo: f64, hi: f64) -> f64 {
    let scale = [lo, hi]
        .into_iter()
        .filter(|v| v.is_finite())
        .fold(0.0_f64, |a, v| a.max(v.abs()));
    BOUNDS_SLACK + 1e-9 * scale
}

// ---------------------------------------------------------------------------
// Qualitative (graph-only) analyses.
// ---------------------------------------------------------------------------

/// States from which some path reaches a goal state — backward BFS over
/// the reversed branch relation. The complement is the exact `Pmax = 0`
/// set.
fn can_reach_goal(art: &ModelArtifact) -> Vec<bool> {
    let n = art.states;
    let branches = art.branch_target.len();
    // Reverse adjacency by counting sort: rev_src groups branch sources by
    // their target.
    let mut rev_start = vec![0u32; n + 1];
    for &t in &art.branch_target {
        rev_start[t as usize + 1] += 1;
    }
    for i in 1..=n {
        rev_start[i] += rev_start[i - 1];
    }
    let mut cursor = rev_start.clone();
    let mut rev_src = vec![0u32; branches];
    for i in 0..n {
        for c in art.choice_range(i) {
            for b in art.branch_range(c) {
                let t = art.branch_target[b] as usize;
                rev_src[cursor[t] as usize] =
                    u32::try_from(i).expect("state index exceeds the u32 address space");
                cursor[t] += 1;
            }
        }
    }
    let mut reach = vec![false; n];
    let mut queue: Vec<u32> = Vec::new();
    for (i, &goal) in art.goal_flags.iter().enumerate() {
        if goal {
            reach[i] = true;
            queue.push(u32::try_from(i).expect("state index exceeds the u32 address space"));
        }
    }
    while let Some(t) = queue.pop() {
        let t = t as usize;
        for &s in &rev_src[rev_start[t] as usize..rev_start[t + 1] as usize] {
            if !reach[s as usize] {
                reach[s as usize] = true;
                queue.push(s);
            }
        }
    }
    reach
}

/// The `Prob1` set — states with a strategy reaching the goal almost
/// surely — by the standard greatest/least double fixed point, plus a
/// *witness* choice per member recorded in the final inner pass. The
/// witness policy is proper: every recorded choice keeps all its branches
/// inside the set and has positive probability of progressing toward a
/// state added earlier, so following it reaches the goal with
/// probability 1.
fn prob1(art: &ModelArtifact) -> (Vec<bool>, Vec<Option<usize>>) {
    let n = art.states;
    let mut u = vec![true; n];
    loop {
        let mut v = vec![false; n];
        let mut witness = vec![None; n];
        for (i, &goal) in art.goal_flags.iter().enumerate() {
            if goal {
                v[i] = true;
            }
        }
        loop {
            let mut changed = false;
            for i in 0..n {
                if v[i] || !u[i] {
                    continue;
                }
                for c in art.choice_range(i) {
                    let mut all_in_u = true;
                    let mut some_in_v = false;
                    for b in art.branch_range(c) {
                        let t = art.branch_target[b] as usize;
                        if !u[t] {
                            all_in_u = false;
                            break;
                        }
                        if v[t] {
                            some_in_v = true;
                        }
                    }
                    if all_in_u && some_in_v {
                        v[i] = true;
                        witness[i] = Some(c);
                        changed = true;
                        break;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if v == u {
            return (v, witness);
        }
        u = v;
    }
}

// ---------------------------------------------------------------------------
// Pmax: interval iteration on the MEC quotient.
// ---------------------------------------------------------------------------

/// Quotient bookkeeping: non-MEC states are singleton quotient states,
/// every MEC collapses to one. `pin` fixes the quotient states decided by
/// the qualitative analyses; only unpinned ones iterate.
struct PmaxQuotient {
    q_of: Vec<u32>,
    q_start: Vec<u32>,
    q_members: Vec<u32>,
    pin: Vec<Option<f64>>,
}

fn pmax_quotient(art: &ModelArtifact, mec: &MecDecomposition) -> PmaxQuotient {
    let n = art.states;
    let mut q_of = vec![0u32; n];
    let mut mec_q = vec![NO_MEC; mec.mecs()];
    let mut q_count = 0u32;
    for (i, q) in q_of.iter_mut().enumerate() {
        let m = mec.mec_of[i];
        if m == NO_MEC {
            *q = q_count;
            q_count += 1;
        } else if mec_q[m as usize] == NO_MEC {
            mec_q[m as usize] = q_count;
            *q = q_count;
            q_count += 1;
        } else {
            *q = mec_q[m as usize];
        }
    }
    let qn = q_count as usize;
    let mut q_start = vec![0u32; qn + 1];
    for &q in &q_of {
        q_start[q as usize + 1] += 1;
    }
    for k in 1..=qn {
        q_start[k] += q_start[k - 1];
    }
    let mut cursor = q_start.clone();
    let mut q_members = vec![0u32; n];
    for (i, &q) in q_of.iter().enumerate() {
        q_members[cursor[q as usize] as usize] =
            u32::try_from(i).expect("state index exceeds the u32 address space");
        cursor[q as usize] += 1;
    }
    // Qualitative pins: Pmax, being constant within a MEC (members are
    // mutually almost-surely reachable), is well-defined per quotient
    // state — derive it from the first member.
    let reach = can_reach_goal(art);
    let (p1, _) = prob1(art);
    let mut pin = vec![None; qn];
    for (q, p) in pin.iter_mut().enumerate() {
        let first = q_members[q_start[q] as usize] as usize;
        if art.goal_flags[first] || p1[first] {
            *p = Some(1.0);
        } else if !reach[first] {
            *p = Some(0.0);
        }
    }
    PmaxQuotient {
        q_of,
        q_start,
        q_members,
        pin,
    }
}

/// One quotient backup of the `Pmax` operator at quotient state `q`,
/// evaluated simultaneously on both iterate vectors. Exiting choices only
/// (in-MEC choices are self-loops on the quotient and carry no
/// information); mass staying inside the quotient state is factored
/// analytically. A choice whose factored denominator vanishes to f64 zero
/// contributes the conservative `(0, 1)` pair.
fn pmax_quotient_backup(
    art: &ModelArtifact,
    mec: &MecDecomposition,
    quot: &PmaxQuotient,
    lo: &[f64],
    hi: &[f64],
    q: usize,
) -> (f64, f64) {
    let mut best_lo = 0.0_f64;
    let mut best_hi = 0.0_f64;
    let members = &quot.q_members[quot.q_start[q] as usize..quot.q_start[q + 1] as usize];
    for &i in members {
        let i = i as usize;
        for c in art.choice_range(i) {
            if mec.internal_choice[c] {
                continue;
            }
            let mut p_self = 0.0_f64;
            let mut sum_lo = 0.0_f64;
            let mut sum_hi = 0.0_f64;
            for b in art.branch_range(c) {
                let t = art.branch_target[b] as usize;
                let p = art.branch_prob[b];
                let qt = quot.q_of[t] as usize;
                if qt == q {
                    p_self += p;
                } else {
                    sum_lo += p * lo[qt];
                    sum_hi += p * hi[qt];
                }
            }
            let denom = 1.0 - p_self;
            let (vl, vh) = if denom <= 1e-12 {
                (0.0, 1.0)
            } else {
                (
                    (sum_lo / denom).clamp(0.0, 1.0),
                    (sum_hi / denom).clamp(0.0, 1.0),
                )
            };
            best_lo = best_lo.max(vl);
            best_hi = best_hi.max(vh);
        }
    }
    (best_lo, best_hi)
}

fn pmax_bounds(
    art: &ModelArtifact,
    mec: &MecDecomposition,
    epsilon: f64,
    max_iterations: usize,
) -> BoundsCertificate {
    let quot = pmax_quotient(art, mec);
    let qn = quot.pin.len();
    let mut lo: Vec<f64> = quot.pin.iter().map(|p| p.unwrap_or(0.0)).collect();
    let mut hi: Vec<f64> = quot.pin.iter().map(|p| p.unwrap_or(1.0)).collect();
    let mut iterations = 0usize;
    let mut converged = false;
    let mut width = (0..qn)
        .filter(|&q| quot.pin[q].is_none())
        .map(|q| hi[q] - lo[q])
        .fold(0.0_f64, f64::max);
    if width <= 2.0 * epsilon {
        converged = true;
    }
    while !converged && iterations < max_iterations {
        iterations += 1;
        width = 0.0;
        for q in 0..qn {
            if quot.pin[q].is_some() {
                continue;
            }
            let (vl, vh) = pmax_quotient_backup(art, mec, &quot, &lo, &hi, q);
            // Enforce monotone trajectories (sound: both new values are
            // valid bounds, and so were the old ones).
            lo[q] = lo[q].max(vl);
            hi[q] = hi[q].min(vh);
            width = width.max(hi[q] - lo[q]);
        }
        if width <= 2.0 * epsilon {
            converged = true;
        }
    }
    let lo_states: Vec<f64> = quot.q_of.iter().map(|&q| lo[q as usize]).collect();
    let hi_states: Vec<f64> = quot.q_of.iter().map(|&q| hi[q as usize]).collect();
    BoundsCertificate {
        kind: ValueKind::Reachability,
        epsilon,
        lo: lo_states,
        hi: hi_states,
        iterations,
        converged,
        width,
        mecs: 0,
        largest_mec: 0,
    }
}

fn verify_pmax(art: &ModelArtifact, cert: &BoundsCertificate, violations: &mut Vec<Violation>) {
    let n = art.states;
    // Upper bound: pre-fixed point of the plain operator on the original
    // graph — Knaster–Tarski gives `hi ≥ lfp = v*` directly.
    for i in 0..n {
        let t = crate::certify::backup(art, &cert.hi, ValueKind::Reachability, i);
        if t > cert.hi[i] + BOUNDS_SLACK {
            violations.push(Violation::BoundUnsound {
                upper: true,
                state: i,
                value: cert.hi[i],
                backup: t,
            });
        }
    }
    // Lower bound: post-fixed point on the MEC quotient, where the fixed
    // point is unique. Project by the tightest (largest) member value so a
    // per-state bound is covered by the quotient claim.
    let mec = mec_decomposition(
        &art.state_choice_start,
        &art.choice_branch_start,
        &art.branch_target,
    );
    let quot = pmax_quotient(art, &mec);
    let qn = quot.pin.len();
    let mut qlo = vec![0.0_f64; qn];
    for (i, &q) in quot.q_of.iter().enumerate() {
        qlo[q as usize] = qlo[q as usize].max(cert.lo[i]);
    }
    for q in 0..qn {
        let first = quot.q_members[quot.q_start[q] as usize] as usize;
        let t = if art.goal_flags[first] {
            1.0
        } else {
            // Under-approximating backup: vanished denominators contribute
            // 0, so acceptance is never granted generously.
            let mut best = 0.0_f64;
            let members = &quot.q_members[quot.q_start[q] as usize..quot.q_start[q + 1] as usize];
            for &i in members {
                let i = i as usize;
                for c in art.choice_range(i) {
                    if mec.internal_choice[c] {
                        continue;
                    }
                    let mut p_self = 0.0_f64;
                    let mut sum = 0.0_f64;
                    for b in art.branch_range(c) {
                        let t = art.branch_target[b] as usize;
                        let p = art.branch_prob[b];
                        if quot.q_of[t] as usize == q {
                            p_self += p;
                        } else {
                            sum += p * qlo[quot.q_of[t] as usize];
                        }
                    }
                    let denom = 1.0 - p_self;
                    if denom > 0.0 {
                        best = best.max(sum / denom);
                    }
                }
            }
            best
        };
        if qlo[q] > t + BOUNDS_SLACK {
            let worst = quot.q_members[quot.q_start[q] as usize..quot.q_start[q + 1] as usize]
                .iter()
                .map(|&i| i as usize)
                .max_by(|&a, &b| cert.lo[a].total_cmp(&cert.lo[b]))
                .unwrap_or(first);
            violations.push(Violation::BoundUnsound {
                upper: false,
                state: worst,
                value: qlo[q],
                backup: t,
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rmin: dual iterates on the Prob1-restricted domain.
// ---------------------------------------------------------------------------

/// The `Rmin` backup restricted to choices whose branches all stay inside
/// the `Prob1` set, with the self-loop mass factored analytically. Reads
/// `values` only at `Prob1` states. Returns `∞` when no restricted choice
/// remains or every denominator vanishes.
fn rmin_restricted_backup(art: &ModelArtifact, p1: &[bool], values: &[f64], i: usize) -> f64 {
    if art.goal_flags[i] {
        return 0.0;
    }
    let mut best = f64::INFINITY;
    'choices: for c in art.choice_range(i) {
        let mut p_self = 0.0_f64;
        let mut rest = 0.0_f64;
        for b in art.branch_range(c) {
            let t = art.branch_target[b] as usize;
            let p = art.branch_prob[b];
            if !p1[t] {
                continue 'choices;
            }
            if t == i {
                p_self += p;
            } else {
                rest += p * values[t];
            }
        }
        let denom = 1.0 - p_self;
        if denom > 0.0 {
            best = best.min((1.0 + rest) / denom);
        }
    }
    best
}

fn rmin_bounds(art: &ModelArtifact, epsilon: f64, max_iterations: usize) -> BoundsCertificate {
    let telemetry = meda_telemetry::global();
    let n = art.states;
    let (p1, witness) = prob1(art);
    let mut lo = vec![f64::INFINITY; n];
    let mut hi = vec![f64::INFINITY; n];
    for i in 0..n {
        if p1[i] {
            lo[i] = 0.0;
        }
        if art.goal_flags[i] {
            hi[i] = 0.0;
        }
    }
    // ∞-seeded descent stalls when the proper policy is cyclic (every
    // backup sees an infinite successor and skips), so collapse the seed
    // to the witness policy's *exact* cost first: finite on the whole
    // Prob1 set and ≥ v* by definition of the minimum.
    let mut seeded = false;
    match evaluate_pick_exact(art, &witness, ValueKind::ExpectedCycles) {
        Ok(eval) => {
            seeded = true;
            for i in 0..n {
                if p1[i] && !art.goal_flags[i] {
                    // Tiny inflation absorbs the elimination's rounding so
                    // the seed stays an upper bound.
                    hi[i] = eval.values[i] * (1.0 + 1e-12) + 1e-9;
                }
            }
        }
        Err(_) => {
            telemetry.add("audit.bounds.seed_overflow", 1);
        }
    }
    let mut iterations = 0usize;
    let mut converged = false;
    let mut width = f64::INFINITY;
    while !converged && iterations < max_iterations {
        iterations += 1;
        width = 0.0;
        for i in 0..n {
            if !p1[i] || art.goal_flags[i] {
                continue;
            }
            lo[i] = lo[i].max(rmin_restricted_backup(art, &p1, &lo, i));
            if seeded {
                hi[i] = hi[i].min(rmin_restricted_backup(art, &p1, &hi, i));
            }
            width = width.max(hi[i] - lo[i]);
        }
        if width <= 2.0 * epsilon {
            converged = true;
        }
        if !seeded {
            break; // lo alone can never close the interval
        }
    }
    BoundsCertificate {
        kind: ValueKind::ExpectedCycles,
        epsilon,
        lo,
        hi,
        iterations,
        converged,
        width,
        mecs: 0,
        largest_mec: 0,
    }
}

fn verify_rmin(art: &ModelArtifact, cert: &BoundsCertificate, violations: &mut Vec<Violation>) {
    let n = art.states;
    let (p1, _) = prob1(art);
    for i in 0..n {
        if !p1[i] {
            // No almost-surely-reaching strategy exists: the true value is
            // ∞, so any finite upper bound under-claims it.
            if cert.hi[i].is_finite() {
                violations.push(Violation::BoundUnsound {
                    upper: true,
                    state: i,
                    value: cert.hi[i],
                    backup: f64::INFINITY,
                });
            }
            continue;
        }
        let slack = |v: f64| BOUNDS_SLACK + 1e-9 * if v.is_finite() { v.abs() } else { 0.0 };
        let t_hi = rmin_restricted_backup(art, &p1, &cert.hi, i);
        if t_hi > cert.hi[i] + slack(cert.hi[i]) {
            violations.push(Violation::BoundUnsound {
                upper: true,
                state: i,
                value: cert.hi[i],
                backup: t_hi,
            });
        }
        let t_lo = rmin_restricted_backup(art, &p1, &cert.lo, i);
        if cert.lo[i] > t_lo + slack(cert.lo[i]) {
            violations.push(Violation::BoundUnsound {
                upper: false,
                state: i,
                value: cert.lo[i],
                backup: t_lo,
            });
        }
    }
}

/// The packaged unsoundness demonstration replayed by `meda audit
/// selftest-unsound` and the CI `audit-sound-selftest` stage.
///
/// Returns the end-component trap (Haddad–Monmège flavor): states 0 and 1
/// can shuttle probability between themselves forever, and state 1 can
/// also gamble 50/50 between the goal (2) and a dead state (3). True
/// `Pmax` is 0.5 from 0 and 1, but **any** constant `v0 = v1 = c ≥ 0.5`
/// is an *exact* fixed point of the plain operator — residual 0 — because
/// the shuttle end component reproduces whatever value it is assigned.
///
/// The returned value vector `(0.9, 0.9, 1, 0)` therefore passes
/// [`crate::bellman_certificate`] while sitting 0.4 above the truth, and
/// the returned strategy is greedy with respect to those bogus values (at
/// state 1 the shuttle backs up 0.9 while the gamble backs up 0.5), so it
/// loops forever and never reaches the goal. The plain
/// [`crate::audit_solution`] accepts the whole solution;
/// [`crate::audit_solution_sound`] must reject both the values and the
/// strategy.
#[must_use]
pub fn unsound_vi_fixture() -> (ModelArtifact, Vec<f64>, Vec<Option<Action>>) {
    let artifact = ModelArtifact {
        states: 4,
        init: 0,
        // State 3 is the dead side of the gamble: absorbing, non-goal,
        // declared as the sink so the structural audit stays clean.
        sink: Some(3),
        goal_flags: vec![false, false, true, false],
        // state 0: one choice {0.5→1, 0.5→0}; state 1: shuttle
        // {0.5→0, 0.5→1} and gamble {0.5→2, 0.5→3}; 2 goal, 3 dead.
        state_choice_start: vec![0, 1, 3, 3, 3],
        choice_action: vec![
            Action::Move(Dir::E),
            Action::Move(Dir::W),
            Action::Move(Dir::N),
        ],
        choice_branch_start: vec![0, 2, 4, 6],
        branch_target: vec![1, 0, 0, 1, 2, 3],
        branch_prob: vec![0.5; 6],
    };
    let bogus_values = vec![0.9, 0.9, 1.0, 0.0];
    let bogus_strategy = vec![
        Some(Action::Move(Dir::E)),
        Some(Action::Move(Dir::W)),
        None,
        None,
    ];
    (artifact, bogus_values, bogus_strategy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CERTIFICATE_EPSILON;

    fn east() -> Action {
        Action::Move(Dir::E)
    }

    fn corridor() -> ModelArtifact {
        let west = Action::Move(Dir::W);
        ModelArtifact {
            states: 3,
            init: 0,
            sink: None,
            goal_flags: vec![false, false, true],
            state_choice_start: vec![0, 1, 3, 3],
            choice_action: vec![east(), east(), west],
            choice_branch_start: vec![0, 2, 4, 6],
            branch_target: vec![1, 0, 2, 1, 0, 1],
            branch_prob: vec![0.8, 0.2, 0.8, 0.2, 0.8, 0.2],
        }
    }

    fn ec_trap() -> ModelArtifact {
        unsound_vi_fixture().0
    }

    #[test]
    fn corridor_pmax_bounds_converge_to_one() {
        let art = corridor();
        let cert = compute_bounds(
            &art,
            ValueKind::Reachability,
            CERTIFICATE_EPSILON,
            BOUNDS_MAX_ITERATIONS,
        );
        assert!(cert.converged, "width {}", cert.width);
        for i in 0..3 {
            assert!(cert.lo[i] > 1.0 - 1e-9, "lo[{i}] = {}", cert.lo[i]);
            assert!((cert.hi[i] - 1.0).abs() < 1e-9);
        }
        assert!(verify_bounds(&art, &cert).is_empty());
    }

    #[test]
    fn corridor_rmin_bounds_bracket_the_exact_value() {
        let art = corridor();
        let cert = compute_bounds(
            &art,
            ValueKind::ExpectedCycles,
            CERTIFICATE_EPSILON,
            BOUNDS_MAX_ITERATIONS,
        );
        assert!(cert.converged);
        assert!(
            cert.lo[0] <= 2.5 && 2.5 <= cert.hi[0],
            "[{}, {}]",
            cert.lo[0],
            cert.hi[0]
        );
        assert!(cert.lo[1] <= 1.25 && 1.25 <= cert.hi[1]);
        assert!(cert.width <= 2.0 * CERTIFICATE_EPSILON);
        assert!(verify_bounds(&art, &cert).is_empty());
    }

    #[test]
    fn ec_trap_bounds_find_the_true_half() {
        let art = ec_trap();
        let cert = compute_bounds(
            &art,
            ValueKind::Reachability,
            CERTIFICATE_EPSILON,
            BOUNDS_MAX_ITERATIONS,
        );
        assert!(cert.converged);
        assert!(cert.mecs >= 1, "the shuttle must be detected as a MEC");
        assert!(
            cert.contains(0, 0.5, 1e-9),
            "[{}, {}]",
            cert.lo[0],
            cert.hi[0]
        );
        assert!(cert.hi[0] < 0.5 + 1e-6);
        assert!(verify_bounds(&art, &cert).is_empty());
    }

    #[test]
    fn ec_trap_spurious_fixed_point_certifies_residual_but_fails_bounds() {
        // The unsoundness demonstration the CI self-test stage replays:
        // v = (0.9, 0.9, 1, 0) has residual 0 — the plain certificate
        // accepts it — yet it is 0.4 above the truth. The sound pass must
        // reject it as a claimed certificate and as a bracketed value.
        let art = ec_trap();
        let bogus = vec![0.9, 0.9, 1.0, 0.0];
        let residual = crate::bellman_certificate(&art, &bogus, ValueKind::Reachability);
        assert!(
            residual.certifies(CERTIFICATE_EPSILON),
            "the residual certificate is fooled by the EC fixed point"
        );
        let cert = compute_bounds(
            &art,
            ValueKind::Reachability,
            CERTIFICATE_EPSILON,
            BOUNDS_MAX_ITERATIONS,
        );
        let bracket = bracket_violations(&cert, &bogus, CERTIFICATE_EPSILON);
        assert!(
            bracket
                .iter()
                .any(|v| matches!(v, Violation::ValueOutsideBounds { .. })),
            "sound bounds must reject the spurious fixed point"
        );
        // And a forged certificate claiming [0.9, 0.9] as a lower bound is
        // caught by the quotient post-fixed-point check.
        let mut forged = cert.clone();
        forged.lo[0] = 0.9;
        forged.lo[1] = 0.9;
        forged.hi[0] = 0.9;
        forged.hi[1] = 0.9;
        assert!(verify_bounds(&art, &forged)
            .iter()
            .any(|v| matches!(v, Violation::BoundUnsound { upper: false, .. })));
    }

    #[test]
    fn rmin_hopeless_states_get_infinite_bounds() {
        // Cut the corridor's goal edge: state 1's east now stays forever.
        let mut art = corridor();
        art.branch_target[2] = 1;
        art.branch_prob[2] = 0.8;
        let cert = compute_bounds(
            &art,
            ValueKind::ExpectedCycles,
            CERTIFICATE_EPSILON,
            BOUNDS_MAX_ITERATIONS,
        );
        assert!(cert.lo[0].is_infinite() && cert.hi[0].is_infinite());
        assert_eq!(cert.width_at(0), 0.0);
    }

    #[test]
    fn forged_rmin_bounds_are_rejected() {
        let art = corridor();
        let cert = compute_bounds(
            &art,
            ValueKind::ExpectedCycles,
            CERTIFICATE_EPSILON,
            BOUNDS_MAX_ITERATIONS,
        );
        assert!(verify_bounds(&art, &cert).is_empty());

        let mut inflated = cert.clone();
        inflated.lo[0] += 0.5; // claims the strategy needs more cycles
        inflated.hi[0] += 0.5;
        assert!(verify_bounds(&art, &inflated)
            .iter()
            .any(|v| matches!(v, Violation::BoundUnsound { upper: false, .. })));

        let mut deflated = cert.clone();
        deflated.lo[0] -= 0.5;
        deflated.hi[0] -= 0.5; // claims the strategy is cheaper than possible
        assert!(verify_bounds(&art, &deflated)
            .iter()
            .any(|v| matches!(v, Violation::BoundUnsound { upper: true, .. })));

        let mut crossed = cert.clone();
        crossed.lo[0] = crossed.hi[0] + 1.0;
        assert!(verify_bounds(&art, &crossed)
            .iter()
            .any(|v| matches!(v, Violation::BoundsCrossed { .. })));
    }
}
