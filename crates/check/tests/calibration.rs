//! Calibration of the sim-vs-MDP oracle against the audit corruption
//! corpus: every mutation class `meda-audit`'s corpus tests inject must
//! also be caught by [`meda_check::oracle::sim_vs_mdp`] on generated
//! scenarios — within the default case budget, with a shrunk catching
//! witness no larger than a 6×6 chip.
//!
//! The property is *inverted* so the shrinker works for us: "the oracle
//! catches the mutant" is treated as the failure we minimize. A class
//! whose property never "fails" is a class the oracle cannot detect —
//! that is the calibration bug this test exists to expose.

use meda_audit::ModelArtifact;
use meda_check::oracle::{routing_scenario, sim_vs_mdp, McParams, RoutingScenario};
use meda_check::{cases_from_env, run_property, Config, Outcome};
use meda_core::Action;
use meda_rng::{Rng, SeedableRng, StdRng};
use meda_synth::{max_reach_probability, SolverOptions};

/// States reachable from the initial state following only the strategy's
/// chosen actions — the closure the strategy mutations pick their victim
/// from (mirrors `audit_corpus.rs`).
fn strategy_closure(art: &ModelArtifact, choice: &[Option<Action>]) -> Vec<usize> {
    let mut seen = vec![false; art.states];
    let mut stack = vec![art.init];
    seen[art.init] = true;
    while let Some(i) = stack.pop() {
        let Some(action) = choice[i] else { continue };
        let Some(c) = art
            .choice_range(i)
            .find(|&c| art.choice_action[c] == action)
        else {
            continue;
        };
        for b in art.branch_range(c) {
            let t = art.branch_target[b] as usize;
            if t < art.states && !seen[t] {
                seen[t] = true;
                stack.push(t);
            }
        }
    }
    (0..art.states).filter(|&i| seen[i]).collect()
}

type Apply = fn(&mut ModelArtifact, &mut Vec<Option<Action>>, &mut StdRng) -> bool;

/// The eight corruption classes of the audit corpus, re-specified here so
/// the calibration cannot silently drift from the corpus it calibrates
/// against.
const MUTATIONS: &[(&str, Apply)] = &[
    ("offset-nonmonotone", |art, _, rng| {
        if art.states < 2 {
            return false;
        }
        let i = rng.gen_range(1..art.states);
        if art.state_choice_start[i] == 0 {
            return false;
        }
        art.state_choice_start[i] = 0;
        true
    }),
    ("offset-semantic-shift", |art, _, rng| {
        if art.choice_branch_start.len() < 3 {
            return false;
        }
        let c = rng.gen_range(1..art.choice_branch_start.len() - 1);
        art.choice_branch_start[c] += 1;
        true
    }),
    ("probability-mass", |art, _, rng| {
        if art.branch_prob.is_empty() {
            return false;
        }
        let b = rng.gen_range(0..art.branch_prob.len());
        art.branch_prob[b] *= 1.5;
        true
    }),
    ("probability-nan", |art, _, rng| {
        if art.branch_prob.is_empty() {
            return false;
        }
        let b = rng.gen_range(0..art.branch_prob.len());
        art.branch_prob[b] = f64::NAN;
        true
    }),
    ("target-dangling", |art, _, rng| {
        if art.branch_target.is_empty() {
            return false;
        }
        let b = rng.gen_range(0..art.branch_target.len());
        art.branch_target[b] = art.states as u32;
        true
    }),
    ("goal-flip", |art, _, rng| {
        if art.states == 0 {
            return false;
        }
        let i = rng.gen_range(0..art.states);
        art.goal_flags[i] = !art.goal_flags[i];
        true
    }),
    ("strategy-erased", |art, choice, rng| {
        let candidates: Vec<usize> = strategy_closure(art, choice)
            .into_iter()
            .filter(|&i| choice[i].is_some() && !art.goal_flags[i])
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[rng.gen_range(0..candidates.len())];
        choice[i] = None;
        true
    }),
    ("strategy-foreign-action", |art, choice, rng| {
        let candidates: Vec<usize> = strategy_closure(art, choice)
            .into_iter()
            .filter(|&i| choice[i].is_some())
            .collect();
        if candidates.is_empty() {
            return false;
        }
        let i = candidates[rng.gen_range(0..candidates.len())];
        let offered: Vec<Action> = art.choice_range(i).map(|c| art.choice_action[c]).collect();
        let foreign = Action::ALL.into_iter().find(|a| !offered.contains(a));
        match foreign {
            Some(a) => {
                choice[i] = Some(a);
                true
            }
            None => false,
        }
    }),
];

#[test]
fn every_corruption_class_is_caught_with_a_small_witness() {
    for &(name, apply) in MUTATIONS {
        let gen = routing_scenario(4, 8);
        let config = Config::default().with_cases(cases_from_env(48));
        let out = run_property(
            &format!("calibration-{name}"),
            &config,
            &gen,
            move |s: &RoutingScenario| {
                let mdp = s.build().map_err(|e| format!("{e:?}"))?;
                let pristine = ModelArtifact::from(&mdp);
                let reach = max_reach_probability(&mdp, SolverOptions::default());
                let mut art = pristine.clone();
                let mut choice = reach.choice.clone();
                let mut mutation_rng = StdRng::seed_from_u64(7);
                if !apply(&mut art, &mut choice, &mut mutation_rng) {
                    return Ok(()); // Inapplicable on this scenario.
                }
                match sim_vs_mdp(s, &art, Some(&choice), &McParams::default()) {
                    // Inverted: detection is the "failure" the shrinker minimizes.
                    Err(detection) => Err(detection),
                    Ok(()) => Ok(()),
                }
            },
        );
        match out {
            Outcome::Failed(f) => {
                let s = &f.shrunk;
                assert!(
                    s.dims.width <= 6 && s.dims.height <= 6,
                    "{name}: catching witness failed to shrink below 6x6:\n{}",
                    f.report()
                );
                assert!(
                    s.start.width() <= 3 && s.start.height() <= 3,
                    "{name}: droplet failed to shrink:\n{}",
                    f.report()
                );
            }
            Outcome::Passed { cases, .. } => {
                panic!("{name}: mutant survived the oracle on all {cases} scenarios");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Separation-oracle calibration: a fleet run with the fluidic screening
// disabled must be *caught* by the separation audit.
// ---------------------------------------------------------------------------

/// A head-on crossing on a small chip: two independent operations route
/// toward each other along the same row. With the engine's screening
/// disabled they pass through each other; the audit (at the default ring)
/// must flag that.
#[derive(Debug, Clone)]
struct CrossingCase {
    dims: meda_grid::ChipDims,
    row: i32,
    size: u32,
}

fn crossing_case() -> meda_check::Gen<CrossingCase> {
    use meda_check::{choose_i32, choose_u32};
    choose_u32(8, 14)
        .zip(choose_u32(6, 10))
        .flat_map(|&(w, h)| {
            choose_u32(1, 2).flat_map(move |&size| {
                choose_i32(1, h as i32 - size as i32 + 1).map(move |&row| CrossingCase {
                    dims: meda_grid::ChipDims::new(w, h),
                    row,
                    size,
                })
            })
        })
}

fn crossing_plan(case: &CrossingCase) -> meda_bioassay::BioassayPlan {
    use meda_bioassay::{BioassayPlan, MoType, PlannedMo, RoutingJob};
    use meda_grid::Rect;
    let s = case.size;
    let bounds = case.dims.bounds();
    let left = Rect::with_size(1, case.row, s, s);
    let right = Rect::with_size(case.dims.width as i32 - s as i32 + 1, case.row, s, s);
    let mo = |id: usize, start: Rect, goal: Rect| PlannedMo {
        id,
        op: MoType::Magnetic,
        pre: vec![],
        inputs: vec![],
        jobs: vec![RoutingJob::new(start, goal, bounds)],
        outputs: vec![goal],
    };
    BioassayPlan::from_parts("crossing", vec![mo(0, left, right), mo(1, right, left)])
}

#[test]
fn disabled_screening_is_caught_by_the_separation_audit() {
    use meda_sim::{
        BaselineRouter, Biochip, ClonePool, DegradationConfig, FaultPlan, FifoScheduler,
        FleetConfig, FleetRunner, FluidicConstraints, RunConfig,
    };
    let config = Config::default().with_cases(cases_from_env(32));
    let out = run_property(
        "calibration-fleet-separation",
        &config,
        &crossing_case(),
        |case: &CrossingCase| {
            let plan = crossing_plan(case);
            let mut rng = StdRng::seed_from_u64(5);
            let mut chip = Biochip::generate(case.dims, &DegradationConfig::pristine(), &mut rng);
            let mut pool = ClonePool::new(BaselineRouter::new());
            let outcome = FleetRunner::new(FleetConfig {
                constraints: FluidicConstraints::disabled(),
                record_movers: true,
                ..FleetConfig::concurrent(
                    2,
                    RunConfig {
                        k_max: 200,
                        ..RunConfig::default()
                    },
                )
            })
            .run(
                &plan,
                &mut chip,
                &mut pool,
                &mut FifoScheduler::new(),
                &FaultPlan::none(),
                &mut rng,
            );
            let log = outcome.movers.as_deref().unwrap_or(&[]);
            match FluidicConstraints::default().audit(log) {
                // Inverted: detection is the "failure" the shrinker minimizes.
                Some(v) => Err(format!("caught: {v:?}")),
                None => Ok(()),
            }
        },
    );
    match out {
        Outcome::Failed(f) => {
            let s = &f.shrunk;
            assert!(
                s.dims.width <= 8 && s.dims.height <= 6,
                "catching witness failed to shrink to the minimal crossing:\n{}",
                f.report()
            );
            assert_eq!(s.size, 1, "droplet failed to shrink:\n{}", f.report());
        }
        Outcome::Passed { cases, .. } => {
            panic!("screening-disabled fleet evaded the separation audit on all {cases} cases");
        }
    }
}

// ---------------------------------------------------------------------------
// Cache-transparency calibration: the load-time audit that oracle 8
// (`cache_transparency`) trusts must actually reject a corrupted entry —
// a forged value under the original (totality/closure-clean) choice
// structure, exactly the corruption the strategy audit alone cannot see.
// ---------------------------------------------------------------------------

#[test]
fn corrupted_cache_entry_is_rejected_on_load() {
    use meda_synth::{canonicalize, PersistentCache, Query};
    use std::fs;
    use std::path::PathBuf;

    let gen = routing_scenario(4, 6);
    let mut rng = StdRng::seed_from_u64(13);
    let dir = PathBuf::from(format!(
        "target/test-calibration-cache/{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);

    // The generator occasionally produces unreachable goals whose jobs
    // refuse to synthesize; scan a few scenarios for a cacheable one.
    let mut exercised = false;
    for _ in 0..32 {
        let tree = gen.generate(&mut rng);
        let s = tree.value();
        let (cjob, _tf) = canonicalize(
            s.start,
            s.goal,
            s.bounds(),
            &s.field(),
            &[],
            &s.config,
            Query::MinExpectedCycles,
        );
        let Some(canon) = cjob.synthesize() else {
            continue;
        };
        let mut cache = PersistentCache::open(&dir, 4).expect("open cache");
        cache.insert(&cjob, canon).expect("persist entry");
        drop(cache);

        // Flip one hex digit of the first persisted value: the choice
        // structure stays audit-clean, only the value payload is forged.
        let path = dir.join(format!("{:016x}.json", cjob.digest()));
        let text = fs::read_to_string(&path).expect("read entry");
        let idx = text.find("\"values\":[\"").expect("values field") + "\"values\":[\"".len();
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'0' { b'f' } else { b'0' };
        fs::write(&path, &bytes).expect("rewrite entry");

        let mut warm = PersistentCache::open(&dir, 4).expect("reopen cache");
        assert!(
            warm.get(&cjob).is_none(),
            "forged entry was served from the warm cache"
        );
        assert_eq!(warm.stats().rejected, 1, "{:?}", warm.stats());
        assert_eq!(warm.stats().hits(), 0, "{:?}", warm.stats());
        // The store-level sweep (`meda serve --check-cache`) must flag the
        // same file.
        let errors = warm
            .validate_all()
            .expect_err("store audit missed the forgery");
        assert!(errors.iter().any(|(p, _)| p == &path), "{errors:?}");
        exercised = true;
        break;
    }
    let _ = fs::remove_dir_all(&dir);
    assert!(exercised, "no generated scenario synthesized in 32 tries");
}
