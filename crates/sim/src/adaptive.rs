use std::sync::Arc;
use std::time::{Duration, Instant};

use meda_bioassay::{BioassayPlan, RoutingJob};
use meda_core::{
    hazard_digest, Action, ActionConfig, HazardBox, HazardedField, HealthField, RoutingMdp,
};
use meda_grid::Rect;
use meda_synth::{
    canonicalize, canonicalize_strategy, materialize, synthesize, synthesize_with, LibraryKey,
    PersistentCache, Query, RoutingStrategy, SolverOptions, StrategyLibrary,
};

use crate::Router;

/// Configuration of the adaptive formal-synthesis router.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdaptiveConfig {
    /// Microfluidic action classes available to synthesis.
    pub actions: ActionConfig,
    /// Primary synthesis query (Algorithm 2 uses `Rmin`).
    pub query: Query,
    /// Whether to re-synthesize when the health matrix changes within the
    /// job's hazard bounds (the hybrid scheduler of Section VI-D). With
    /// `false`, the strategy synthesized at job start is used throughout —
    /// the "static synthesis" ablation.
    pub resynthesize: bool,
    /// Whether to keep and consult the strategy library (Section VI-D's
    /// hybrid scheduling). With `false` every job synthesizes from scratch
    /// — the pure-online scheduling ablation.
    pub use_library: bool,
}

impl AdaptiveConfig {
    /// The paper's configuration: all action classes, `Rmin` query,
    /// re-synthesis on health change, hybrid library scheduling.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            actions: ActionConfig::default(),
            query: Query::MinExpectedCycles,
            resynthesize: true,
            use_library: true,
        }
    }

    /// The pure-online scheduling ablation: synthesize on demand for every
    /// job, never caching (Section VI-D's strawman).
    #[must_use]
    pub fn pure_online() -> Self {
        Self {
            use_library: false,
            ..Self::paper()
        }
    }
}

/// The adaptive router of Section VI: per routing job it induces the MDP
/// from the current health matrix, synthesizes an optimal strategy
/// (Algorithm 2), and follows it; when the sensed health within the hazard
/// bounds changes, it re-synthesizes (Algorithm 3's hybrid scheduling,
/// with the [`StrategyLibrary`] serving repeat jobs).
///
/// If the `Rmin` query is infeasible (the goal is not almost-surely
/// reachable, e.g. a fault cluster blocks the only corridor), the router
/// falls back to the `Pmax` strategy, which still maximizes the chance of
/// getting through; only `Pmax = 0` makes it give up.
#[derive(Debug)]
pub struct AdaptiveRouter {
    config: AdaptiveConfig,
    library: StrategyLibrary,
    job: Option<RoutingJob>,
    digest: u64,
    strategy: Option<Arc<RoutingStrategy>>,
    resynth_count: u64,
    synthesis_time: Duration,
    /// Fleet hazard zones (peer corridors). Empty on the serial path, in
    /// which case every digest and synthesis below reduces byte-identically
    /// to the hazard-free behaviour.
    hazards: Vec<HazardBox>,
    /// Whether the superseded strategy's values still lower-bound the next
    /// Rmin fixed point. Health only degrades, so this is normally true —
    /// but *releasing* a hazard box improves the field, and a warm seed
    /// above the new fixed point would trip the solver's soundness guard.
    /// Cleared by a weakening [`AdaptiveRouter::set_hazards`], restored by
    /// the next completed synthesis.
    warm_valid: bool,
    /// Opt-in persistent content-addressed cache (DESIGN.md §16). `None`
    /// on the default path, which therefore stays byte-identical to the
    /// pre-cache router — golden `meda run`/`meda fleet` traces depend on
    /// this.
    cache: Option<PersistentCache>,
}

impl AdaptiveRouter {
    /// Creates an adaptive router. `AdaptiveConfig::default()` disables
    /// re-synthesis and the library; pass [`AdaptiveConfig::paper`] for the
    /// paper's hybrid setup.
    #[must_use]
    pub fn new(config: AdaptiveConfig) -> Self {
        Self {
            config,
            library: StrategyLibrary::new(),
            job: None,
            digest: 0,
            strategy: None,
            resynth_count: 0,
            synthesis_time: Duration::ZERO,
            hazards: Vec::new(),
            warm_valid: true,
            cache: None,
        }
    }

    /// Creates an adaptive router backed by a persistent content-addressed
    /// strategy cache: in-memory library misses consult the canonical
    /// cache (answering translated/symmetric repeats of earlier jobs —
    /// even from previous processes), and cold syntheses are persisted
    /// canonically for the next caller. Value-transparent by construction
    /// (proven by meda-check oracle 8): a warm answer carries the same
    /// evaluated value as cold synthesis, validated on load by the
    /// meda-audit totality/closure pass.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn with_cache(
        config: AdaptiveConfig,
        cache_dir: impl Into<std::path::PathBuf>,
        capacity: usize,
    ) -> std::io::Result<Self> {
        let mut router = Self::new(config);
        router.cache = Some(PersistentCache::open(cache_dir, capacity)?);
        Ok(router)
    }

    /// Persistent-cache statistics, if the cache is enabled.
    #[must_use]
    pub fn cache_stats(&self) -> Option<meda_synth::CacheStats> {
        self.cache.as_ref().map(PersistentCache::stats)
    }

    /// The combined health + hazard digest over `bounds` — the quantity
    /// whose change triggers a (warm prioritized) re-solve. With no hazard
    /// intersecting the bounds this is exactly the health digest, keeping
    /// the serial path bit-identical.
    fn scoped_digest(&self, health: &HealthField, bounds: Rect) -> u64 {
        health.digest(bounds) ^ hazard_digest(&self.hazards, bounds)
    }

    /// Pre-populates the strategy library offline for every routed job of a
    /// planned bioassay, assuming a fully healthy chip — the offline half
    /// of the paper's hybrid scheduling (Section VI-D: "a library of
    /// pre-synthesized strategies is first created offline … assuming no
    /// degradation"). Returns the number of strategies stored.
    pub fn warm_up(&mut self, plan: &BioassayPlan, health: &HealthField) -> usize {
        let mut stored = 0;
        for mo in plan.operations() {
            for job in &mo.jobs {
                if job.is_dispense() || job.goal.contains_rect(job.start) {
                    continue;
                }
                if self.synthesize_for(job, job.start, health, None).is_some() {
                    stored += 1;
                }
            }
        }
        stored
    }

    /// Total wall-clock time spent in strategy synthesis (library hits are
    /// free) — the online overhead the hybrid scheduler exists to hide.
    #[must_use]
    pub fn synthesis_time(&self) -> Duration {
        self.synthesis_time
    }

    /// Number of mid-job re-syntheses triggered by health changes.
    #[must_use]
    pub fn resynth_count(&self) -> u64 {
        self.resynth_count
    }

    /// The strategy library (hit/miss statistics for the hybrid-scheduler
    /// ablation).
    #[must_use]
    pub fn library(&self) -> &StrategyLibrary {
        &self.library
    }

    fn synthesize_for(
        &mut self,
        job: &RoutingJob,
        start: Rect,
        health: &HealthField,
        previous: Option<&RoutingStrategy>,
    ) -> Option<Arc<RoutingStrategy>> {
        // Peer-corridor hazards fold into the library key: a corridor
        // shift changes the digest exactly like a health change, so stale
        // strategies are never replayed against a moved hazard.
        let digest = self.scoped_digest(health, job.bounds);
        let key = LibraryKey {
            start,
            goal: job.goal,
            bounds: job.bounds,
            health_digest: digest,
        };
        let telemetry = meda_telemetry::global();
        if self.config.use_library {
            if let Some(hit) = self.library.get(&key) {
                telemetry.add("synth.library.hits", 1);
                // The hit was synthesized under a field with this very
                // digest, so its values are consistent with the current
                // field again.
                self.warm_valid = true;
                return Some(hit);
            }
            telemetry.add("synth.library.misses", 1);
        }
        // Library miss: with the persistent cache enabled, canonicalize the
        // job (translation + D4) and try a content-addressed lookup before
        // paying for synthesis. A hit is rehydrated into this job's frame;
        // a miss remembers the canonical context so the cold result can be
        // persisted for the next caller.
        let canonical_ctx = if self.cache.is_some() {
            let (cjob, tf) = canonicalize(
                start,
                job.goal,
                job.bounds,
                health,
                &self.hazards,
                &self.config.actions,
                self.config.query,
            );
            let hit = self.cache.as_mut().and_then(|cache| cache.get(&cjob));
            if let Some(canon) = hit {
                let hazarded;
                let field: &dyn meda_core::ForceProvider =
                    if self.hazards.iter().any(|b| b.rect.intersects(job.bounds)) {
                        hazarded = HazardedField::new(health, &self.hazards);
                        &hazarded
                    } else {
                        health
                    };
                if let Ok(mdp) =
                    RoutingMdp::build(start, job.goal, job.bounds, field, &self.config.actions)
                {
                    if let Some(strategy) = materialize(&canon, &tf, mdp) {
                        self.warm_valid = true;
                        return Some(if self.config.use_library {
                            self.library.insert(key, strategy)
                        } else {
                            Arc::new(strategy)
                        });
                    }
                }
            }
            Some((cjob, tf))
        } else {
            None
        };
        let previous = previous.filter(|_| self.warm_valid);
        let _job_span = telemetry.span("synth.job");
        let t0 = Instant::now();
        let result = (|| {
            let hazarded;
            let field: &dyn meda_core::ForceProvider =
                if self.hazards.iter().any(|b| b.rect.intersects(job.bounds)) {
                    hazarded = HazardedField::new(health, &self.hazards);
                    &hazarded
                } else {
                    health
                };
            let mdp =
                RoutingMdp::build(start, job.goal, job.bounds, field, &self.config.actions).ok()?;
            let mut options = SolverOptions::default();
            if self.config.query == Query::MinExpectedCycles {
                // Re-synthesis after a health patch runs as a warm
                // prioritized re-solve: health only degrades, so the
                // superseded strategy's Rmin values lower-bound the new
                // fixed point, and the priority queue drains only the
                // patched region. Only valid for this query direction —
                // Pmax seeds are rejected by the solver.
                if let Some(prev) = previous.filter(|p| p.query() == Query::MinExpectedCycles) {
                    options = SolverOptions::patched(Some(prev.warm_start_seed(&mdp)));
                }
            }
            let strategy = synthesize_with(&mdp, self.config.query, options)
                .or_else(|_| synthesize(&mdp, Query::MaxReachProbability))
                .ok()?;
            if strategy.query() == Query::MaxReachProbability && strategy.value_at_init() <= 0.0 {
                return None;
            }
            Some(strategy)
        })();
        self.synthesis_time += t0.elapsed();
        self.warm_valid = true;
        let strategy = result?;
        if let (Some(cache), Some((cjob, tf))) = (self.cache.as_mut(), canonical_ctx.as_ref()) {
            if let Ok(canon_mdp) = cjob.build_mdp() {
                if let Some(canon) = canonicalize_strategy(&strategy, tf, canon_mdp) {
                    // Persistence failure is non-fatal: the cache only
                    // ever costs a miss, never correctness.
                    let _ = cache.insert(cjob, canon);
                }
            }
        }
        if self.config.use_library {
            Some(self.library.insert(key, strategy))
        } else {
            Some(Arc::new(strategy))
        }
    }
}

impl Router for AdaptiveRouter {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn begin_job(&mut self, job: &RoutingJob, health: &HealthField) -> bool {
        self.digest = self.scoped_digest(health, job.bounds);
        self.strategy = self.synthesize_for(job, job.start, health, None);
        self.job = Some(*job);
        self.strategy.is_some()
    }

    fn next_action(&mut self, droplet: Rect, health: &HealthField) -> Option<Action> {
        let job = self.job?;
        if self.config.resynthesize {
            let digest = self.scoped_digest(health, job.bounds);
            if digest != self.digest {
                self.digest = digest;
                // Re-synthesize from the droplet's *current* location,
                // warm-started from the superseded strategy's values.
                let previous = self.strategy.clone();
                if let Some(strategy) =
                    self.synthesize_for(&job, droplet, health, previous.as_deref())
                {
                    self.strategy = Some(strategy);
                    self.resynth_count += 1;
                }
                // If re-synthesis fails, keep following the stale strategy:
                // worse than fresh, better than freezing.
            }
        }
        let strategy = Arc::clone(self.strategy.as_ref()?);
        strategy.decide(droplet).or_else(|| {
            // The droplet drifted off the synthesized state set (e.g. a
            // partial ordinal move under a stale strategy); re-synthesize
            // from here, seeded with the stale strategy's values.
            let refreshed = self.synthesize_for(&job, droplet, health, Some(&strategy))?;
            let action = refreshed.decide(droplet);
            self.strategy = Some(refreshed);
            action
        })
    }

    fn set_hazards(&mut self, boxes: &[HazardBox]) {
        // A purely-strengthening shift (every old box survives at least as
        // strongly) keeps the old values as valid Rmin lower bounds; any
        // release or weakening forces the next synthesis to run cold.
        let strengthening = self.hazards.iter().all(|o| {
            boxes
                .iter()
                .any(|n| n.rect == o.rect && n.factor <= o.factor)
        });
        if !strengthening {
            self.warm_valid = false;
        }
        self.hazards = boxes.to_vec();
        // The next `next_action` sees a changed scoped digest and re-solves
        // from the droplet's current position — warm via the prioritized
        // sweep when the shift only tightened the field, cold otherwise.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_degradation::HealthLevel;
    use meda_grid::{Cell, ChipDims, Grid};

    fn full_health(dims: ChipDims) -> HealthField {
        HealthField::new(Grid::new(dims, HealthLevel::full(2)), 2)
    }

    fn job() -> RoutingJob {
        RoutingJob::new(
            Rect::new(1, 1, 3, 3),
            Rect::new(12, 1, 14, 3),
            Rect::new(1, 1, 16, 8),
        )
    }

    #[test]
    fn follows_synthesized_strategy_to_goal() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &health));
        let mut droplet = Rect::new(1, 1, 3, 3);
        let mut steps = 0;
        while !job().goal.contains_rect(droplet) {
            let a = r.next_action(droplet, &health).expect("action available");
            droplet = a.apply(droplet);
            steps += 1;
            assert!(steps < 100, "router is cycling");
        }
        // Pristine chip: double steps make this ~⌈11/2⌉ cycles.
        assert!(steps <= 11);
    }

    #[test]
    fn avoids_dead_wall_when_gap_exists() {
        let dims = ChipDims::new(20, 10);
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        for y in 1..=6 {
            grid[Cell::new(8, y)] = HealthLevel::new(0, 2);
        }
        let health = HealthField::new(grid, 2);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &health), "gap at rows 7-8 is routable");
        // March the droplet with *successful* outcomes; it must never be
        // commanded into the dead column.
        let mut droplet = Rect::new(1, 1, 3, 3);
        for _ in 0..100 {
            if job().goal.contains_rect(droplet) {
                return;
            }
            let a = r.next_action(droplet, &health).expect("action");
            droplet = a.apply(droplet);
        }
        panic!("never reached the goal");
    }

    #[test]
    fn fully_blocked_job_reports_infeasible() {
        let dims = ChipDims::new(20, 10);
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        for y in 1..=10 {
            grid[Cell::new(8, y)] = HealthLevel::new(0, 2);
        }
        let health = HealthField::new(grid, 2);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(!r.begin_job(&job(), &health));
    }

    #[test]
    fn resynthesizes_on_health_change() {
        let dims = ChipDims::new(20, 10);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &full_health(dims)));
        // Degrade a cell inside the bounds mid-job.
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        grid[Cell::new(6, 2)] = HealthLevel::new(1, 2);
        let changed = HealthField::new(grid, 2);
        let _ = r.next_action(Rect::new(2, 1, 4, 3), &changed);
        assert_eq!(r.resynth_count(), 1);
    }

    #[test]
    fn static_config_never_resynthesizes() {
        let dims = ChipDims::new(20, 10);
        let mut r = AdaptiveRouter::new(AdaptiveConfig {
            resynthesize: false,
            ..AdaptiveConfig::paper()
        });
        assert!(r.begin_job(&job(), &full_health(dims)));
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        grid[Cell::new(6, 2)] = HealthLevel::new(1, 2);
        let changed = HealthField::new(grid, 2);
        let _ = r.next_action(Rect::new(2, 1, 4, 3), &changed);
        assert_eq!(r.resynth_count(), 0);
    }

    #[test]
    fn warm_up_prefills_the_library() {
        let dims = ChipDims::new(60, 30);
        let plan = meda_bioassay::RjHelper::new(dims)
            .plan(&meda_bioassay::benchmarks::master_mix())
            .unwrap();
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        let stored = r.warm_up(&plan, &health);
        assert!(stored > 0);
        assert_eq!(r.library().len(), stored);
        // The first real job on the still-healthy chip is a library hit.
        let job = plan
            .operations()
            .iter()
            .flat_map(|mo| mo.jobs.iter())
            .find(|j| !j.is_dispense() && !j.goal.contains_rect(j.start))
            .copied()
            .unwrap();
        let hits_before = r.library().hits();
        assert!(r.begin_job(&job, &health));
        assert!(r.library().hits() > hits_before);
    }

    #[test]
    fn pure_online_never_stores_strategies() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::pure_online());
        assert!(r.begin_job(&job(), &health));
        assert!(r.begin_job(&job(), &health));
        assert!(r.library().is_empty());
        assert_eq!(r.library().hits(), 0);
        assert!(r.synthesis_time() > std::time::Duration::ZERO);
    }

    #[test]
    fn hazard_shift_triggers_resynthesis_like_a_health_change() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &health));
        // A peer corridor appears inside the bounds mid-job: the scoped
        // digest changes and the next action re-solves warm.
        r.set_hazards(&[meda_core::HazardBox::soft(Rect::new(6, 1, 9, 6), 0.3)]);
        let _ = r.next_action(Rect::new(2, 1, 4, 3), &health);
        assert_eq!(r.resynth_count(), 1);
        // Releasing the corridor is another shift.
        r.set_hazards(&[]);
        let _ = r.next_action(Rect::new(3, 1, 5, 3), &health);
        assert_eq!(r.resynth_count(), 2);
    }

    #[test]
    fn hazards_outside_the_bounds_do_not_perturb_the_job() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &health));
        r.set_hazards(&[meda_core::HazardBox::wall(Rect::new(18, 9, 19, 10))]);
        let _ = r.next_action(Rect::new(2, 1, 4, 3), &health);
        assert_eq!(r.resynth_count(), 0, "far-away hazard must be invisible");
    }

    #[test]
    fn hazard_wall_still_reaches_the_goal_through_the_gap() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        // Wall off rows 1..=6 of column 8 with a hazard instead of dead
        // cells: same detour behaviour as `avoids_dead_wall_when_gap_exists`
        // — the job stays feasible and completes via the row 7–8 gap.
        r.set_hazards(&[meda_core::HazardBox::wall(Rect::new(8, 1, 8, 6))]);
        assert!(r.begin_job(&job(), &health), "hazard must not kill the job");
        let mut droplet = Rect::new(1, 1, 3, 3);
        for _ in 0..100 {
            if job().goal.contains_rect(droplet) {
                return;
            }
            let a = r.next_action(droplet, &health).expect("action");
            droplet = a.apply(droplet);
        }
        panic!("never reached the goal");
    }

    #[test]
    fn persistent_cache_serves_translated_jobs_across_router_instances() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let dir = std::path::Path::new("target")
            .join("test-adaptive-cache")
            .join(std::process::id().to_string());
        let _ = std::fs::remove_dir_all(&dir);

        let mut cold = AdaptiveRouter::with_cache(AdaptiveConfig::paper(), &dir, 8).unwrap();
        assert!(cold.begin_job(&job(), &health));
        let stats = cold.cache_stats().unwrap();
        assert_eq!(stats.inserts, 1, "cold synthesis persisted");

        // A different router process (fresh library!) routes a translated
        // copy of the same job: canonical cache hit, no synthesis.
        let translated = RoutingJob::new(
            Rect::new(3, 2, 5, 4),
            Rect::new(14, 2, 16, 4),
            Rect::new(3, 2, 18, 9),
        );
        let mut warm = AdaptiveRouter::with_cache(AdaptiveConfig::paper(), &dir, 8).unwrap();
        assert!(warm.begin_job(&translated, &health));
        let stats = warm.cache_stats().unwrap();
        assert_eq!(stats.hits(), 1, "translated job answered from disk");
        assert_eq!(stats.inserts, 0);
        // The warm strategy routes the translated job to its goal.
        let mut droplet = translated.start;
        for _ in 0..100 {
            if translated.goal.contains_rect(droplet) {
                return;
            }
            let a = warm.next_action(droplet, &health).expect("action");
            droplet = a.apply(droplet);
        }
        panic!("never reached the goal");
    }

    #[test]
    fn default_router_never_touches_a_cache() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &health));
        assert!(
            r.cache_stats().is_none(),
            "default path must stay cache-free"
        );
    }

    #[test]
    fn library_serves_repeat_jobs() {
        let dims = ChipDims::new(20, 10);
        let health = full_health(dims);
        let mut r = AdaptiveRouter::new(AdaptiveConfig::paper());
        assert!(r.begin_job(&job(), &health));
        assert!(r.begin_job(&job(), &health));
        assert!(r.library().hits() >= 1);
    }
}
