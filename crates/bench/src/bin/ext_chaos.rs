//! Extension: closed sensing loop under chaos — probability of success
//! and graceful degradation vs sensor-fault rate.
//!
//! Every run closes the loop ([`RunConfig::sensed_feedback`]): the router
//! is driven by droplet positions reconstructed from the sensed **Y**
//! matrix, which a [`FaultPlan`] corrupts with stuck-at sensor bits. Four
//! control stacks face identical chips and fault plans:
//!
//!   1. baseline: degradation-unaware shortest path,
//!   2. recovery: reactive stall-triggered re-route,
//!   3. adaptive: the paper's formal-synthesis router,
//!   4. supervised-adaptive: adaptive under the [`Supervisor`]'s
//!      escalation ladder (re-sense → re-synthesize → detour → abort the
//!      operation and continue).
//!
//! The headline: with faulty sensors the unsupervised stacks are
//! all-or-nothing, while the supervised stack aborts only the poisoned
//! operation and completes the rest — higher mean completion at the same
//! fault rate.
//!
//! [`RunConfig::sensed_feedback`]: meda_sim::RunConfig
//! [`FaultPlan`]: meda_sim::FaultPlan
//! [`Supervisor`]: meda_sim::Supervisor
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row, BenchReport};
use meda_bioassay::{benchmarks, RjHelper};
use meda_grid::ChipDims;
use meda_sim::experiment::{chaos_sweep, ChaosVariant};
use meda_sim::DegradationConfig;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let full = std::env::args().any(|a| a == "--full");
    let bless = std::env::args().any(|a| a == "--bless");
    let trials: u32 = if smoke {
        2
    } else if full {
        10
    } else {
        4
    };
    let rates: &[f64] = if smoke {
        &[0.0, 0.02]
    } else {
        &[0.0, 0.01, 0.02, 0.05]
    };

    banner(
        "Extension — sensed-feedback chaos sweep (supervised recovery)",
        "Sensed feedback on: routers see Y-matrix reconstructions, not \
         ground truth. Stuck-at sensor bits corrupt Y at the given per-MC \
         rate. PoS counts fully-completed bioassays; 'compl' is the mean \
         fraction of microfluidic operations completed per trial.",
    );
    println!("trials per cell: {trials}\n");

    let dims = ChipDims::PAPER;
    let plan = RjHelper::new(dims)
        .plan(&benchmarks::multiplex_invitro((4, 4)))
        .expect("benchmark plans cleanly");
    let config = DegradationConfig::paper();

    let widths = [10, 22, 6, 7, 26];
    header(
        &[
            "stuck",
            "stack",
            "PoS",
            "compl",
            "ladder (rs/rsy/det/abort)",
        ],
        &widths,
    );

    let points = chaos_sweep(
        &plan,
        dims,
        &config,
        &ChaosVariant::ALL,
        rates,
        trials,
        2_000,
        616,
    );
    for &rate in rates {
        for point in points
            .iter()
            .filter(|p| (p.stuck_rate - rate).abs() < f64::EPSILON)
        {
            let ladder = if point.variant == ChaosVariant::SupervisedAdaptive {
                format!(
                    "{}/{}/{}/{}",
                    point.rungs.resense,
                    point.rungs.resynth,
                    point.rungs.detour,
                    point.rungs.aborted_ops
                )
            } else {
                "-".to_string()
            };
            row(
                &[
                    format!("{:.0}%", rate * 100.0),
                    point.variant.name().to_string(),
                    format!("{:.2}", point.pos),
                    format!("{:.3}", point.mean_completion),
                    ladder,
                ],
                &widths,
            );
        }
        println!();
    }

    println!(
        "Reading: with clean sensors every stack completes; as stuck bits \
         corrupt Y, the unsupervised stacks lose whole bioassays to one \
         wedged estimate, while the supervisor's ladder re-senses and \
         detours — and when a job is truly unrecoverable, aborts only \
         that operation, salvaging the independent lane."
    );

    let mode = if smoke { "smoke" } else { "full" };
    let mut report = BenchReport::new("chaos", mode);
    report.note = "sensed-feedback chaos sweep: PoS and mean completed-operation \
                   fraction per stuck-sensor rate and control stack; all values \
                   are deterministic given the seeded RNG, so any drift means \
                   behaviour changed"
        .to_string();
    for point in &points {
        let prefix = format!(
            "stuck{:.0}pct.{}",
            point.stuck_rate * 100.0,
            point.variant.name().replace(['-', ' '], "_")
        );
        report.push(format!("{prefix}.pos"), point.pos);
        report.push(format!("{prefix}.mean_completion"), point.mean_completion);
    }
    let written = report.write(bless).expect("write bench report");
    println!();
    for path in written {
        println!("Wrote {}", path.display());
    }
    if !bless {
        println!("(baseline BENCH_chaos.json untouched — pass --bless to refresh it)");
    }
}
