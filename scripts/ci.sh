#!/usr/bin/env bash
# Offline CI gate: formatting, lints, tier-1 build + tests, bench smoke.
# Everything runs without network access (the workspace has zero
# third-party dependencies — see DESIGN.md §6).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace --quiet

echo "==> meda-lint (determinism + robustness lint, fails on any finding)"
cargo run --release -p meda-lint

echo "==> audit smoke (meda audit over a freshly synthesized assay model)"
cargo run --release -- audit covid-rat

echo "==> check smoke (meda-check differential oracle suite)"
# Default smoke budget is small; set MEDA_CHECK_CASES for an extended run.
cargo run --release -- check --smoke

echo "==> bench smoke (bench_synthesis --smoke)"
cargo run --release -p meda-bench --bin bench_synthesis -- --smoke

echo "==> chaos smoke (ext_chaos --smoke)"
cargo run --release -p meda-bench --bin ext_chaos -- --smoke

echo "ci.sh: all checks passed"
