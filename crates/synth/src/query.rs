use std::fmt;

/// A synthesis query over the reach-avoid objective
/// `φ : □(¬hazard) ∧ ◇goal` (Section VI-C).
///
/// # Examples
///
/// ```
/// use meda_synth::Query;
///
/// assert_eq!(
///     Query::MaxReachProbability.to_string(),
///     "Pmax=? [ G !hazard & F goal ]"
/// );
/// assert_eq!(
///     Query::MinExpectedCycles.to_string(),
///     "R{cycles}min=? [ G !hazard & F goal ]"
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Query {
    /// `φ_p : Pmax=? [□¬hazard ∧ ◇goal]` — maximize the probability of
    /// reaching the goal without entering the hazard zone.
    MaxReachProbability,
    /// `φ_r : Rmin=? [□¬hazard ∧ ◇goal]` with the cycle-count reward `r_k`
    /// — minimize the expected number of cycles to the goal. This is the
    /// query Algorithm 2 uses.
    #[default]
    MinExpectedCycles,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MaxReachProbability => write!(f, "Pmax=? [ G !hazard & F goal ]"),
            Self::MinExpectedCycles => write!(f, "R{{cycles}}min=? [ G !hazard & F goal ]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_algorithm_2_query() {
        assert_eq!(Query::default(), Query::MinExpectedCycles);
    }

    #[test]
    fn display_is_prism_like() {
        assert!(Query::MaxReachProbability.to_string().starts_with("Pmax"));
        assert!(Query::MinExpectedCycles.to_string().contains("min=?"));
    }
}
