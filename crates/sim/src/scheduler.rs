use meda_bioassay::{BioassayPlan, MoId};
use meda_core::{ForceProvider, HealthField};
use meda_grid::Rect;

/// Runtime microfluidic-operation scheduler: picks which *ready* operation
/// (all input droplets parked on chip) executes next.
///
/// The paper's evaluation executes operations in plan order; its conclusion
/// calls out "a scheduler that can optimize the order in which the
/// microfluidic operations are executed in runtime" as the natural next
/// step. [`FifoScheduler`] is the paper's behaviour;
/// [`HealthAwareScheduler`] is that extension.
pub trait MoScheduler {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Chooses one of `ready` (non-empty, ascending ids) to execute next.
    fn pick(&mut self, ready: &[MoId], plan: &BioassayPlan, health: &HealthField) -> MoId;
}

/// Plan-order scheduling: always the lowest-id ready operation — the
/// execution order of the paper's experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Creates the FIFO scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl MoScheduler for FifoScheduler {
    fn name(&self) -> &str {
        "fifo"
    }

    fn pick(&mut self, ready: &[MoId], _plan: &BioassayPlan, _health: &HealthField) -> MoId {
        ready[0]
    }
}

/// Health-aware scheduling (the paper's future-work extension): among the
/// ready operations, execute the one whose routing corridors are currently
/// healthiest, deferring work through degraded regions until they must run.
///
/// Deferral helps in two ways: an op scheduled later may find its corridor
/// re-planned around (the adaptive router sees fresher health), and
/// spreading execution across chip regions evens out wear between parallel
/// branches.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthAwareScheduler;

impl HealthAwareScheduler {
    /// Creates the health-aware scheduler.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Mean per-cell relative force over the union of the operation's job
    /// corridors — the health score used for ordering.
    #[must_use]
    pub fn corridor_health(plan: &BioassayPlan, mo: MoId, health: &HealthField) -> f64 {
        let jobs = plan.jobs_for(mo);
        let mut total = 0.0;
        let mut count = 0u32;
        for job in jobs {
            let bounds: Rect = job.bounds;
            total += health.mean_force(bounds) * bounds.area() as f64;
            count += bounds.area();
        }
        if count == 0 {
            1.0
        } else {
            total / f64::from(count)
        }
    }
}

impl MoScheduler for HealthAwareScheduler {
    fn name(&self) -> &str {
        "health-aware"
    }

    fn pick(&mut self, ready: &[MoId], plan: &BioassayPlan, health: &HealthField) -> MoId {
        // Seed the scan with the first ready MO instead of unwrapping a
        // `max_by` — the engine's contract makes `ready` non-empty, and
        // `>=` keeps the *last* maximum, matching `Iterator::max_by` (the
        // FIFO-tiebreak tests depend on that).
        let mut best = ready[0];
        let mut best_health = Self::corridor_health(plan, best, health);
        for &mo in &ready[1..] {
            let h = Self::corridor_health(plan, mo, health);
            if h.total_cmp(&best_health).is_ge() {
                best = mo;
                best_health = h;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_bioassay::{benchmarks, RjHelper};
    use meda_degradation::HealthLevel;
    use meda_grid::{Cell, ChipDims, Grid};

    fn setup() -> (BioassayPlan, HealthField) {
        let dims = ChipDims::PAPER;
        let plan = RjHelper::new(dims)
            .plan(&benchmarks::multiplex_invitro((4, 4)))
            .unwrap();
        let health = HealthField::new(Grid::new(dims, HealthLevel::full(2)), 2);
        (plan, health)
    }

    #[test]
    fn fifo_picks_lowest_id() {
        let (plan, health) = setup();
        let mut s = FifoScheduler::new();
        assert_eq!(s.pick(&[2, 5, 7], &plan, &health), 2);
        assert_eq!(s.name(), "fifo");
    }

    #[test]
    fn health_aware_matches_fifo_on_a_uniform_chip() {
        // With identical corridor health, max_by keeps the last maximum;
        // either way the pick must be a ready op.
        let (plan, health) = setup();
        let mut s = HealthAwareScheduler::new();
        let pick = s.pick(&[4, 5], &plan, &health);
        assert!(pick == 4 || pick == 5);
    }

    #[test]
    fn health_aware_prefers_the_healthier_corridor() {
        let (plan, _) = setup();
        // The multiplex assay's two mixes (ids 4 and 5) run in the south
        // and north halves; degrade the south corridor.
        let dims = ChipDims::PAPER;
        let mut grid = Grid::new(dims, HealthLevel::full(2));
        for cell in plan.jobs_for(4)[0].bounds.cells() {
            grid[Cell::new(cell.x, cell.y)] = HealthLevel::new(1, 2);
        }
        let health = HealthField::new(grid, 2);
        let mut s = HealthAwareScheduler::new();
        assert_eq!(s.pick(&[4, 5], &plan, &health), 5);
        let h4 = HealthAwareScheduler::corridor_health(&plan, 4, &health);
        let h5 = HealthAwareScheduler::corridor_health(&plan, 5, &health);
        assert!(h4 < h5);
    }
}
