//! Extension: full-assay makespan under concurrent fleet routing — the
//! headline throughput number the serial scheduler left on the table.
//!
//! For each evaluation assay (CEP and COVID-PCR, the two largest planned
//! benchmarks) the fleet engine runs the whole bioassay at N ∈ {1, 2, 4, 8}
//! concurrent micro-operations on the same paper-degraded 60×30 chip with
//! the same seeds. N = 1 is bit-identical to the serial
//! [`BioassayRunner`](meda_sim::BioassayRunner) path, so the N = 1 row *is*
//! the serial baseline; the higher-N rows route concurrently under the
//! fluidic-separation screen with peer corridors priced as soft hazards.
//!
//! Emitted metrics (meda-bench/1):
//!
//! - `{assay}.n{N}.makespan_cycles` — deterministic completion cycles
//!   (any drift is a behaviour change);
//! - `{assay}.n{N}.peak_active` — the concurrency the dispatcher actually
//!   achieved;
//! - `{assay}.n{N}.serial_vs_concurrent_makespan_dominance` — serial
//!   cycles / concurrent cycles for N ≥ 2. `bench_compare` fails a
//!   same-mode run the moment any of these drops below 1.0: concurrent
//!   routing must strictly beat the serial makespan.
//!
//! In full (non-smoke) mode the bin also self-checks the claims directly —
//! every cell completes, and every N ≥ 2 dominance ratio is strictly above
//! 1.0 — and exits nonzero on violation, so CI catches a throughput
//! regression even before `bench_compare` diffs the committed baseline.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row, BenchReport};
use meda_bioassay::{benchmarks, RjHelper, SequencingGraph};
use meda_grid::ChipDims;
use meda_rng::{SeedableRng, StdRng};
use meda_sim::{
    AdaptiveConfig, AdaptivePool, Biochip, DegradationConfig, FaultPlan, FifoScheduler,
    FleetConfig, FleetRunner, RunConfig,
};

/// Cycle budget per run: generous — CEP serial completes well under 2 000
/// cycles; a cell that needs more than 6 000 is a regression worth failing.
const K_MAX: u64 = 6_000;

/// Chip/run seed shared by every cell so serial-vs-concurrent deltas are
/// routing effects, not landscape luck.
const SEED: u64 = 616;

fn assays(smoke: bool) -> Vec<SequencingGraph> {
    if smoke {
        vec![benchmarks::cep()]
    } else {
        vec![
            benchmarks::cep(),
            benchmarks::covid_pcr(),
            benchmarks::multiplex_invitro((4, 4)),
        ]
    }
}

fn fleet_sizes(smoke: bool) -> &'static [usize] {
    if smoke {
        &[1, 4]
    } else {
        &[1, 2, 4, 8]
    }
}

fn makespan(plan_sg: &SequencingGraph, n: usize) -> (u64, usize, bool) {
    let plan = RjHelper::new(ChipDims::PAPER)
        .plan(plan_sg)
        .expect("benchmark plans cleanly");
    let run = RunConfig {
        k_max: K_MAX,
        ..RunConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
    let mut pool = AdaptivePool::new(AdaptiveConfig::paper());
    let outcome = FleetRunner::new(FleetConfig::concurrent(n, run)).run(
        &plan,
        &mut chip,
        &mut pool,
        &mut FifoScheduler::new(),
        &FaultPlan::none(),
        &mut rng,
    );
    (outcome.cycles, outcome.peak_active, outcome.is_success())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bless = std::env::args().any(|a| a == "--bless");

    banner(
        "Extension — full-assay makespan, serial vs concurrent fleet",
        "Whole-bioassay completion cycles at N concurrent micro-operations \
         on the paper-degraded 60×30 chip. N=1 replays the serial engine \
         bit for bit; higher N dispatches independent operations together \
         under the fluidic-separation screen, with peer corridors priced \
         as soft hazards in each droplet's synthesis.",
    );

    let mode = if smoke { "smoke" } else { "full" };
    let mut report = BenchReport::new("makespan", mode);
    report.note = "full-assay makespan cycles per (assay, fleet size) plus \
                   serial-vs-concurrent dominance ratios for N >= 2; all runs are \
                   seeded and deterministic, so any cycle drift means routing \
                   behaviour changed"
        .to_string();

    let widths = [12, 4, 10, 8, 10, 9];
    header(
        &["assay", "N", "cycles", "peak", "speedup", "complete"],
        &widths,
    );

    let mut violations: Vec<String> = Vec::new();
    for sg in assays(smoke) {
        let name = sg.name().replace(['-', ' '], "_");
        let mut serial_cycles = 0u64;
        for &n in fleet_sizes(smoke) {
            let (cycles, peak, complete) = makespan(&sg, n);
            if n == 1 {
                serial_cycles = cycles;
            }
            let speedup = serial_cycles as f64 / cycles as f64;
            row(
                &[
                    name.clone(),
                    n.to_string(),
                    cycles.to_string(),
                    peak.to_string(),
                    format!("{speedup:.2}x"),
                    if complete { "yes" } else { "NO" }.to_string(),
                ],
                &widths,
            );

            report.push(format!("{name}.n{n}.makespan_cycles"), cycles as f64);
            report.push(format!("{name}.n{n}.peak_active"), peak as f64);
            if n > 1 {
                report.push(
                    format!("{name}.n{n}.serial_vs_concurrent_makespan_dominance"),
                    speedup,
                );
                if !smoke && speedup <= 1.0 {
                    violations.push(format!(
                        "{name}: N={n} makespan {cycles} does not beat serial {serial_cycles}"
                    ));
                }
            }
            if !complete {
                violations.push(format!(
                    "{name}: N={n} did not complete within {K_MAX} cycles"
                ));
            }
        }
        println!();
    }

    println!(
        "Reading: the serial scheduler pays the full sum of per-operation \
         routes; the fleet overlaps independent branches of the dependency \
         graph, so makespan drops as N grows until the chip's separation \
         ring and shared lanes bound the parallelism."
    );

    let written = report.write(bless).expect("write bench report");
    println!();
    for path in written {
        println!("Wrote {}", path.display());
    }
    if !bless {
        println!("(baseline BENCH_makespan.json untouched — pass --bless to refresh it)");
    }
    if !violations.is_empty() {
        eprintln!("\nmakespan self-check FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
