//! Ablation: scheduling schemes of Section VI-D — pure-online synthesis
//! vs the hybrid strategy library, cold and warm (offline pre-synthesis).
//! Measures the per-run synthesis overhead the hybrid scheme hides.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_bioassay::{benchmarks, RjHelper};
use meda_core::HealthField;
use meda_degradation::HealthLevel;
use meda_grid::{ChipDims, Grid};
use meda_rng::SeedableRng;
use meda_sim::{
    AdaptiveConfig, AdaptiveRouter, BioassayRunner, Biochip, DegradationConfig, RunConfig,
};

fn main() {
    banner(
        "Ablation — scheduling schemes (Section VI-D, DESIGN.md §5.3)",
        "Three back-to-back executions per scheme on a degrading chip; \
         synthesis time is the online overhead between operations.",
    );

    let dims = ChipDims::PAPER;
    let helper = RjHelper::new(dims);
    let runner = BioassayRunner::new(RunConfig {
        k_max: 3_000,
        record_actuation: false,
        sensed_feedback: false,
    });

    let widths = [16, 24, 10, 8, 8, 14];
    header(
        &["bioassay", "scheme", "cycles", "hits", "misses", "synth ms"],
        &widths,
    );

    for sg in [benchmarks::covid_rat(), benchmarks::serial_dilution()] {
        let plan = helper.plan(&sg).expect("benchmark plans cleanly");
        for scheme in [
            "pure-online",
            "hybrid (cold)",
            "hybrid (warm)",
            "static (no resynth)",
        ] {
            let mut rng = meda_rng::StdRng::seed_from_u64(777);
            let mut chip = Biochip::generate(dims, &DegradationConfig::paper(), &mut rng);
            let mut router = match scheme {
                "pure-online" => AdaptiveRouter::new(AdaptiveConfig::pure_online()),
                "static (no resynth)" => AdaptiveRouter::new(AdaptiveConfig {
                    resynthesize: false,
                    ..AdaptiveConfig::paper()
                }),
                _ => AdaptiveRouter::new(AdaptiveConfig::paper()),
            };
            if scheme == "hybrid (warm)" {
                // Offline pre-synthesis against a pristine health matrix.
                let pristine = HealthField::new(Grid::new(dims, HealthLevel::full(2)), 2);
                router.warm_up(&plan, &pristine);
            }
            let offline_time = router.synthesis_time();

            let mut cycles = 0;
            for _ in 0..3 {
                let outcome = runner.run(&plan, &mut chip, &mut router, &mut rng);
                assert!(outcome.is_success(), "{scheme}: {:?}", outcome.status);
                cycles += outcome.cycles;
            }
            let online_ms = (router.synthesis_time() - offline_time).as_secs_f64() * 1e3;
            row(
                &[
                    sg.name().to_string(),
                    scheme.to_string(),
                    format!("{cycles}"),
                    format!("{}", router.library().hits()),
                    format!("{}", router.library().misses()),
                    format!("{online_ms:.1}"),
                ],
                &widths,
            );
        }
    }

    println!(
        "\nReading: the warm hybrid serves the first (still-healthy) \
         execution from the offline library; once degradation changes the \
         health digest, all schemes re-synthesize — the library wins \
         whenever health is stable between repeats, at zero quality cost \
         (cycle counts match)."
    );
}
