//! Fig. 15 — probability of successful bioassay completion (PoS) versus
//! the cycle budget k_max, for the six benchmark bioassays on a reused
//! (progressively degrading) 60×30 biochip, baseline vs adaptive routing.
#![forbid(unsafe_code)]

use meda_bench::{banner, bar, header, row};
use meda_bioassay::{benchmarks, RjHelper};
use meda_grid::ChipDims;
use meda_rng::SeedableRng;
use meda_sim::experiment::pos_sweep;
use meda_sim::{
    AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip, DegradationConfig,
    RunConfig,
};

fn main() {
    // Heavier run when --full is passed (the committed defaults keep
    // `cargo run` to a few minutes).
    let full = std::env::args().any(|a| a == "--full");
    let (chips, runs) = if full { (8, 10) } else { (3, 6) };

    banner(
        "Fig. 15 — probability of successful completion vs k_max",
        "Each chip (c ~ U(200,500), τ ~ U(0.5,0.9)) executes the bioassay \
         back-to-back; PoS is the fraction of runs finishing within k_max. \
         Budgets are multiples of the pristine-chip baseline run length.",
    );
    println!("chips per point: {chips}, runs per chip: {runs}\n");

    let dims = ChipDims::PAPER;
    let helper = RjHelper::new(dims);
    let degradation = DegradationConfig::paper();

    for sg in benchmarks::evaluation_suite() {
        let plan = helper.plan(&sg).expect("benchmark plans cleanly");

        // Calibrate the nominal run length on a pristine chip.
        let mut rng = meda_rng::StdRng::seed_from_u64(99);
        let mut pristine = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
        let mut cal_router = BaselineRouter::new();
        let nominal = BioassayRunner::new(RunConfig {
            k_max: 100_000,
            record_actuation: false,
            sensed_feedback: false,
        })
        .run(&plan, &mut pristine, &mut cal_router, &mut rng)
        .cycles;

        let k_values: Vec<u64> = [11u64, 13, 15, 20, 30, 40]
            .iter()
            .map(|m| nominal * m / 10)
            .collect();

        let baseline = pos_sweep(
            &plan,
            dims,
            &degradation,
            BaselineRouter::new,
            &k_values,
            runs,
            chips,
            150,
        );
        let adaptive = pos_sweep(
            &plan,
            dims,
            &degradation,
            || AdaptiveRouter::new(AdaptiveConfig::paper()),
            &k_values,
            runs,
            chips,
            150,
        );

        println!(
            "\nbioassay: {} (pristine run ≈ {nominal} cycles)",
            sg.name()
        );
        let widths = [8, 10, 22, 10, 22];
        header(&["k_max", "baseline", "", "adaptive", ""], &widths);
        for (b, a) in baseline.iter().zip(&adaptive) {
            row(
                &[
                    format!("{}", b.k_max),
                    format!("{:.2}", b.pos),
                    bar(b.pos, 20),
                    format!("{:.2}", a.pos),
                    bar(a.pos, 20),
                ],
                &widths,
            );
        }
    }

    println!(
        "\nPaper shape: adaptive routing reaches high PoS at budgets where \
         the baseline is still failing, with the gap widest on the long \
         bioassays (Serial Dilution, NuIP)."
    );
}
