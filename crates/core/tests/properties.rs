//! Property tests for the droplet/actuation model, driven by `meda-check`:
//! Table II frontier invariants, Section V-B probability laws, guard
//! soundness, and MDP structure. Failures shrink to minimal droplets and
//! persist to the shared corpus for replay-first on subsequent runs.

use meda_check::{
    cases_from_env, check, choose_u32, default_corpus_dir, element, f64_range, Config, Gen,
};
use meda_core::{
    frontier_set, transitions, Action, ActionConfig, Dir, ForceProvider, RawField, RoutingMdp,
    UniformField,
};
use meda_grid::{ChipDims, Grid, Rect};

fn config() -> Config {
    Config::default()
        .with_cases(cases_from_env(256))
        .with_corpus(default_corpus_dir())
}

/// Droplets anchored well inside a notional chip, up to 8×8.
fn droplet() -> Gen<Rect> {
    let anchor = choose_u32(5, 29).zip(choose_u32(5, 29));
    let extent = choose_u32(0, 7).zip(choose_u32(0, 7));
    anchor.zip(extent).map(|&((xa, ya), (w, h))| {
        let (xa, ya) = (xa as i32, ya as i32);
        Rect::new(xa, ya, xa + w as i32, ya + h as i32)
    })
}

fn force() -> Gen<f64> {
    f64_range(0.0, 1.0)
}

fn action() -> Gen<Action> {
    element(Action::ALL.to_vec())
}

fn ensure(cond: bool, message: &str) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(message.into())
    }
}

/// Table II size formulas: cardinal frontiers span the full facing
/// edge; ordinal frontiers the shifted edge; morphing frontiers one
/// cell less.
#[test]
fn frontier_sizes_match_table_ii() {
    check("core-frontier-sizes", &config(), &droplet(), |&delta| {
        let w = delta.width();
        let h = delta.height();
        for action in Action::ALL {
            for dir in Dir::ALL {
                let Some(fr) = frontier_set(delta, action, dir) else {
                    continue;
                };
                let expected = match action {
                    Action::Move(_) | Action::MoveDouble(_) | Action::MoveOrdinal(_) => {
                        if dir.is_vertical() {
                            w
                        } else {
                            h
                        }
                    }
                    Action::Widen(_) => h - 1,
                    Action::Heighten(_) => w - 1,
                };
                ensure(fr.area() == expected, &format!("{action} {dir}: size"))?;
                // Frontiers are always a single row or column.
                ensure(
                    fr.width() == 1 || fr.height() == 1,
                    &format!("{action} {dir}: not a line"),
                )?;
                // And they never overlap the current droplet.
                ensure(
                    !fr.intersects(delta),
                    &format!("{action} {dir}: overlaps droplet"),
                )?;
            }
        }
        Ok(())
    });
}

/// The success outcome of an action always contains every frontier it
/// pulls with (the pulling MCs end up under the droplet) — except the
/// double step, whose first-step frontier lies under the intermediate.
#[test]
fn frontiers_end_up_under_the_droplet() {
    let gen = droplet().zip(action());
    check(
        "core-frontier-landing",
        &config(),
        &gen,
        |&(delta, action)| {
            if !action.is_applicable(delta) {
                return Ok(());
            }
            let target = match action {
                Action::MoveDouble(_) => action
                    .intermediate(delta)
                    .ok_or("double move without intermediate")?,
                _ => action.apply(delta),
            };
            for dir in Dir::ALL {
                if let Some(fr) = frontier_set(delta, action, dir) {
                    ensure(
                        target.contains_rect(fr),
                        &format!("{action} {dir}: frontier escapes target"),
                    )?;
                }
            }
            Ok(())
        },
    );
}

/// Probabilities over outcomes always form a distribution, for any
/// force field value.
#[test]
fn outcome_probabilities_form_a_distribution() {
    let gen = droplet().zip(force()).zip(action());
    check(
        "core-outcome-distribution",
        &config(),
        &gen,
        |&((delta, force), action)| {
            let field = UniformField::new(force);
            let outcomes = transitions(delta, action, &field);
            let total: f64 = outcomes.iter().map(|o| o.probability).sum();
            ensure((total - 1.0).abs() < 1e-9, "mass not 1")?;
            for o in &outcomes {
                ensure(
                    o.probability >= -1e-12 && o.probability <= 1.0 + 1e-12,
                    "probability out of range",
                )?;
                // Every outcome preserves droplet area except morphing.
                match action {
                    Action::Widen(_) | Action::Heighten(_) => {}
                    _ => ensure(o.droplet.area() == delta.area(), "area not preserved")?,
                }
            }
            Ok(())
        },
    );
}

/// Monotonicity: more force never decreases the success probability.
#[test]
fn success_probability_is_monotone_in_force() {
    let gen = droplet().zip(action()).zip(force().zip(force()));
    check(
        "core-success-monotone",
        &config(),
        &gen,
        |&((delta, action), (f1, f2))| {
            if !action.is_applicable(delta) {
                return Ok(());
            }
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            let p = |f: f64| {
                transitions(delta, action, &UniformField::new(f))
                    .iter()
                    .find(|o| o.droplet == action.apply(delta))
                    .map_or(0.0, |o| o.probability)
            };
            ensure(p(lo) <= p(hi) + 1e-12, "success probability decreased")
        },
    );
}

/// Guard soundness: an enabled action's successful outcome stays within
/// the bounds, and morphing preserves the half-perimeter and the aspect
/// limit.
#[test]
fn enabled_actions_respect_bounds_and_aspect() {
    let gen = droplet().zip(action()).zip(choose_u32(0, 5));
    check(
        "core-guard-soundness",
        &config(),
        &gen,
        |&((delta, action), margin)| {
            let bounds = delta.expand(margin as i32 + 2);
            let config = ActionConfig::default();
            if !action.is_enabled(delta, bounds, &config) {
                return Ok(());
            }
            let out = action.apply(delta);
            ensure(bounds.contains_rect(out), "outcome escapes bounds")?;
            match action {
                Action::Widen(_) | Action::Heighten(_) => {
                    ensure(
                        out.width() + out.height() == delta.width() + delta.height(),
                        "half-perimeter changed",
                    )?;
                    // The paper's guard is one-directional: it bounds the
                    // ratio in the direction the morph grows (so a morph
                    // may still *correct* an already-extreme droplet).
                    let grown = match action {
                        Action::Widen(_) => out.aspect_ratio(),
                        _ => 1.0 / out.aspect_ratio(),
                    };
                    ensure(
                        grown <= config.aspect_ratio_max + 1e-9,
                        "aspect guard violated",
                    )
                }
                Action::MoveDouble(d) => {
                    let extent = if d.is_vertical() {
                        delta.height()
                    } else {
                        delta.width()
                    };
                    ensure(extent >= 4, "double move on a thin droplet")
                }
                _ => Ok(()),
            }
        },
    );
}

/// The mean frontier force is the arithmetic mean of the per-cell
/// forces, with off-chip cells contributing zero.
#[test]
fn mean_force_is_clipped_average() {
    let gen = choose_u32(1, 11)
        .zip(choose_u32(1, 11))
        .zip(choose_u32(1, 5));
    check("core-mean-force", &config(), &gen, |&((xa, ya), len)| {
        let dims = ChipDims::new(10, 10);
        let field = RawField::new(Grid::new(dims, 0.8));
        let fr = Rect::with_size(xa as i32, ya as i32, 1, len);
        let on_chip = fr.intersection(dims.bounds()).map_or(0, |c| c.area());
        let expected = 0.8 * f64::from(on_chip) / f64::from(fr.area());
        ensure(
            (field.mean_force(fr) - expected).abs() < 1e-12,
            "mean force != clipped average",
        )
    });
}

/// Routing MDPs are well-formed for arbitrary geometry: states within
/// bounds, distributions normalized, goal states absorbing.
#[test]
fn routing_mdp_is_well_formed() {
    let gen = choose_u32(6, 13)
        .zip(choose_u32(6, 13))
        .zip(choose_u32(2, 3).zip(f64_range(0.05, 1.0)));
    let small = config().with_cases(cases_from_env(24));
    check(
        "core-mdp-well-formed",
        &small,
        &gen,
        |&((w, h), (droplet, force))| {
            let bounds = Rect::new(1, 1, w as i32, h as i32);
            let start = Rect::with_size(1, 1, droplet, droplet);
            let goal = Rect::with_size(
                w as i32 - droplet as i32 + 1,
                h as i32 - droplet as i32 + 1,
                droplet,
                droplet,
            );
            let mdp = RoutingMdp::build(
                start,
                goal,
                bounds,
                &UniformField::new(force),
                &ActionConfig::default(),
            )
            .map_err(|e| format!("build failed: {e:?}"))?;
            for i in mdp.state_indices() {
                ensure(bounds.contains_rect(mdp.state(i)), "state escapes bounds")?;
                if mdp.is_goal(i) {
                    ensure(mdp.choices(i).is_empty(), "goal state not absorbing")?;
                }
                for (_, branch) in mdp.choices(i) {
                    let total: f64 = branch.iter().map(|(_, p)| p).sum();
                    ensure((total - 1.0).abs() < 1e-9, "distribution not normalized")?;
                }
            }
            let stats = mdp.stats();
            ensure(
                stats.transitions >= stats.choices,
                "fewer transitions than choices",
            )
        },
    );
}
