//! `meda-lint` — an in-tree lexical lint pass enforcing the MEDA
//! workspace's determinism and robustness invariants.
//!
//! The workspace promises bit-identical reproducibility (same seed, same
//! trace — DESIGN.md §2) and panic-free library code. Neither invariant is
//! expressible in clippy: they are *policy* about which std types and
//! idioms this particular codebase may use where. `meda-lint` walks every
//! `.rs` file in the workspace and enforces five rules ([`Rule`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `no-unwrap` | no `.unwrap()` / `.expect(` in non-test library code |
//! | `hash-order` | no `HashMap` / `HashSet` where iteration order can leak into results |
//! | `wall-clock` | no `Instant` / `SystemTime` outside `perf.rs` / bench bins |
//! | `float-eq` | no `==` / `!=` against float literals |
//! | `forbid-unsafe` | `#![forbid(unsafe_code)]` in every crate root |
//!
//! Intentional exceptions live in `lint-allow.toml` at the workspace root
//! — each with a mandatory reason — rather than inline suppressions, so
//! the full exception surface is reviewable in one place.
//!
//! Run it as `cargo run -p meda-lint`; it exits nonzero on any finding,
//! and `scripts/ci.sh` runs it on every CI pass. There are no third-party
//! dependencies, per the workspace policy the lint itself protects.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allow;
mod rules;
mod scan;

pub use allow::{apply_allowlist, parse_allowlist, AllowEntry};
pub use rules::{check_file, classify, Finding, Rule, Scope};
pub use scan::{scan, ScannedFile};

use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", ".git", ".claude"];

/// The result of linting a workspace.
#[derive(Debug)]
pub struct LintReport {
    /// Findings that survived the allowlist, ordered by file then line.
    pub findings: Vec<Finding>,
    /// Number of findings suppressed by allowlist entries.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing — stale, should be pruned.
    pub unused_allows: Vec<AllowEntry>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Lints every `.rs` file under `root`, applying `root/lint-allow.toml`
/// when present.
///
/// # Errors
///
/// Returns an error when the tree cannot be read or the allowlist fails to
/// parse (a broken allowlist must fail the run, not allow everything).
pub fn lint_workspace(root: &Path) -> Result<LintReport, String> {
    let allow_path = root.join("lint-allow.toml");
    let entries = if allow_path.is_file() {
        let text = std::fs::read_to_string(&allow_path)
            .map_err(|e| format!("{}: {e}", allow_path.display()))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };

    let mut files = Vec::new();
    collect_rust_files(root, &mut files).map_err(|e| format!("walking {}: {e}", root.display()))?;
    files.sort();

    let mut findings = Vec::new();
    for file in &files {
        let rel = relative_path(root, file);
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("{}: {e}", file.display()))?;
        let scanned = scan(&source);
        findings.extend(check_file(&rel, classify(&rel), &scanned, &source));
    }
    let (kept, suppressed, unused_allows) = apply_allowlist(findings, &entries);
    Ok(LintReport {
        findings: kept,
        suppressed,
        unused_allows,
        files_scanned: files.len(),
    })
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), std::io::Error> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                collect_rust_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes (stable across platforms,
/// matches allowlist entries).
fn relative_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The workspace root this crate was compiled in — `CARGO_MANIFEST_DIR` is
/// `crates/lint`, so the root is two levels up. Used by the CLI default
/// and the self-lint test, both of which run against this repo.
#[must_use]
pub fn compiled_workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(path: &str, source: &str) -> Vec<Finding> {
        let scanned = scan(source);
        check_file(path, classify(path), &scanned, source)
    }

    #[test]
    fn unwrap_in_lib_is_flagged() {
        let found = lint_str("crates/x/src/a.rs", "fn f() { g().unwrap(); }\n");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::NoUnwrap);
        assert_eq!(found[0].line, 1);
    }

    #[test]
    fn expect_in_lib_is_flagged_with_raw_excerpt() {
        let found = lint_str(
            "crates/x/src/a.rs",
            "fn f() {\n    g().expect(\"the sky is falling\");\n}\n",
        );
        assert_eq!(found.len(), 1);
        assert!(found[0].excerpt.contains("the sky is falling"));
    }

    #[test]
    fn unwrap_in_tests_examples_and_cfg_test_is_exempt() {
        assert!(lint_str("crates/x/tests/a.rs", "fn f() { g().unwrap(); }\n").is_empty());
        assert!(lint_str("examples/a.rs", "fn f() { g().unwrap(); }\n").is_empty());
        let source = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn f() { g().unwrap(); }\n}\n";
        assert!(lint_str("crates/x/src/a.rs", source).is_empty());
    }

    #[test]
    fn unwrap_after_cfg_test_module_is_still_flagged() {
        let source = "#[cfg(test)]\nmod tests {\n    fn f() { g().unwrap(); }\n}\nfn g() { h().unwrap(); }\n";
        let found = lint_str("crates/x/src/a.rs", source);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 5);
    }

    #[test]
    fn unwrap_in_comments_and_strings_is_ignored() {
        let source = "// call .unwrap() here\nfn f() { let s = \".unwrap()\"; }\n";
        assert!(lint_str("crates/x/src/a.rs", source).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(lint_str("crates/x/src/a.rs", "fn f() { g().unwrap_or(0); }\n").is_empty());
    }

    #[test]
    fn hash_map_flagged_in_lib_and_bin_but_not_bench_or_tests() {
        let count = |path, src: &str| {
            lint_str(path, src)
                .iter()
                .filter(|f| f.rule == Rule::HashOrder)
                .count()
        };
        let src = "use std::collections::HashMap;\n";
        assert_eq!(count("crates/x/src/a.rs", src), 1);
        assert_eq!(count("src/main.rs", src), 1);
        assert_eq!(count("crates/bench/src/bin/b.rs", src), 0);
        assert_eq!(count("crates/x/tests/a.rs", src), 0);
    }

    #[test]
    fn wall_clock_flagged_outside_perf() {
        let count = |path, src: &str| {
            lint_str(path, src)
                .iter()
                .filter(|f| f.rule == Rule::WallClock)
                .count()
        };
        let src = "use std::time::Instant;\n";
        assert_eq!(count("crates/x/src/a.rs", src), 1);
        assert_eq!(count("crates/x/src/perf.rs", src), 0);
        assert_eq!(count("crates/bench/src/bin/b.rs", src), 0);
    }

    #[test]
    fn lossy_cast_flagged_only_in_the_kernel_set() {
        let narrowing = "fn f(x: usize) -> u32 { x as u32 }\n";
        let found = lint_str("crates/core/src/mec.rs", narrowing);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::LossyCast);
        // Widening casts in a kernel file are fine.
        assert!(lint_str(
            "crates/core/src/mec.rs",
            "fn f(x: u32) -> usize { x as usize }\n"
        )
        .is_empty());
        assert!(lint_str(
            "crates/core/src/mec.rs",
            "fn f(x: u32) -> f64 { x as f64 }\n"
        )
        .is_empty());
        // The same narrowing cast outside the hot-path set is out of scope.
        assert!(lint_str("crates/grid/src/rect.rs", narrowing).is_empty());
        // An identifier merely starting with a target name is not a cast.
        assert!(lint_str(
            "crates/core/src/mec.rs",
            "fn f(x: U32x4) -> U32x4 { x as U32x4 }\n"
        )
        .is_empty());
    }

    #[test]
    fn unchecked_index_flagged_only_in_the_kernel_set() {
        let indexed = "fn f(xs: &[f64], i: usize) -> f64 { xs[i] }\n";
        let found = lint_str("crates/audit/src/bounds.rs", indexed);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::UncheckedIndex);
        // Attributes, macros, and slice types don't trip the detector.
        for benign in [
            "#[must_use]\n",
            "fn f() -> Vec<u32> { vec![1, 2] }\n",
            "fn f(xs: &[u32]) {}\n",
            "fn f(xs: &[f64], i: usize) -> Option<f64> { xs.get(i).copied() }\n",
        ] {
            assert!(
                lint_str("crates/audit/src/bounds.rs", benign).is_empty(),
                "false positive on {benign:?}"
            );
        }
        // Indexing outside the hot-path set is out of scope for this rule.
        assert!(lint_str("crates/grid/src/rect.rs", indexed).is_empty());
    }

    #[test]
    fn float_eq_against_literal_is_flagged() {
        assert_eq!(
            lint_str("crates/x/src/a.rs", "fn f(x: f64) -> bool { x == 0.0 }\n").len(),
            1
        );
        assert_eq!(
            lint_str("crates/x/src/a.rs", "fn f(x: f64) -> bool { 1e-6 != x }\n").len(),
            1
        );
        // Integer equality and ordering comparisons are fine.
        assert!(lint_str("crates/x/src/a.rs", "fn f(x: u32) -> bool { x == 3 }\n").is_empty());
        assert!(lint_str("crates/x/src/a.rs", "fn f(x: f64) -> bool { x <= 0.5 }\n").is_empty());
        // Variable-vs-variable is out of lexical scope, documented.
        assert!(lint_str(
            "crates/x/src/a.rs",
            "fn f(a: f64, b: f64) -> bool { a == b }\n"
        )
        .is_empty());
    }

    #[test]
    fn crate_root_without_forbid_unsafe_is_flagged() {
        let found = lint_str("crates/x/src/lib.rs", "pub fn f() {}\n");
        assert!(found.iter().any(|f| f.rule == Rule::ForbidUnsafe));
        let ok = lint_str(
            "crates/x/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}\n",
        );
        assert!(ok.is_empty());
        // Non-root files don't need the attribute.
        assert!(lint_str("crates/x/src/a.rs", "pub fn f() {}\n").is_empty());
    }

    #[test]
    fn allowlist_roundtrip() {
        let toml = "# comment\n[[allow]]\nrule = \"no-unwrap\"\nfile = \"crates/x/src/a.rs\"\npattern = \"four edges\"\nreason = \"fixed-size array\"\n";
        let entries = parse_allowlist(toml).unwrap();
        assert_eq!(entries.len(), 1);
        let f_hit = Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            rule: Rule::NoUnwrap,
            excerpt: ".expect(\"four edges\")".into(),
        };
        let f_miss = Finding {
            excerpt: ".expect(\"other\")".into(),
            ..f_hit.clone()
        };
        let (kept, suppressed, unused) = apply_allowlist(vec![f_hit, f_miss.clone()], &entries);
        assert_eq!(kept, vec![f_miss]);
        assert_eq!(suppressed, 1);
        assert!(unused.is_empty());
    }

    #[test]
    fn allowlist_requires_reason() {
        let toml = "[[allow]]\nrule = \"no-unwrap\"\nfile = \"a.rs\"\n";
        assert!(parse_allowlist(toml).is_err());
    }

    #[test]
    fn the_workspace_is_lint_clean() {
        // The acceptance bar for the whole repo: zero findings (after the
        // declared allowlist), proven on every `cargo test` run.
        let report = lint_workspace(&compiled_workspace_root()).unwrap();
        assert!(
            report.files_scanned > 20,
            "workspace walk found too few files"
        );
        assert!(
            report.findings.is_empty(),
            "lint findings:\n{}",
            report
                .findings
                .iter()
                .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule.name(), f.excerpt))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
