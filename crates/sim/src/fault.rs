use meda_rng::Rng;

use meda_grid::{Cell, ChipDims, Rect};

/// How faulty microelectrodes are placed across the biochip
/// (Section VII-A/C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultMode {
    /// No injected faults; MCs only wear through normal degradation.
    #[default]
    None,
    /// Faulty MCs are placed uniformly at random.
    Uniform,
    /// Faulty MCs appear as randomly placed `2 × 2` clusters — the pattern
    /// the Section III-C correlation study predicts, and the harder case
    /// because clusters act as roadblocks.
    Clustered,
}

impl FaultMode {
    /// Selects the faulty cells for a chip, targeting `fraction` of all MCs
    /// (clusters of 4 for [`FaultMode::Clustered`], rounding up to whole
    /// clusters; duplicates between overlapping clusters collapse).
    ///
    /// # Panics
    ///
    /// Panics if `fraction ∉ [0, 1]`.
    pub fn place(self, dims: ChipDims, fraction: f64, rng: &mut impl Rng) -> Vec<Cell> {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fault fraction must be in [0, 1]"
        );
        let target = (dims.cell_count() as f64 * fraction).round() as usize;
        let mut cells = Vec::new();
        match self {
            FaultMode::None => {}
            FaultMode::Uniform => {
                let mut chosen = std::collections::HashSet::new();
                while chosen.len() < target {
                    let x = rng.gen_range(1..=dims.width as i32);
                    let y = rng.gen_range(1..=dims.height as i32);
                    chosen.insert(Cell::new(x, y));
                }
                cells.extend(chosen);
            }
            FaultMode::Clustered => {
                let mut chosen = std::collections::HashSet::new();
                while chosen.len() < target {
                    let x = rng.gen_range(1..=dims.width as i32 - 1);
                    let y = rng.gen_range(1..=dims.height as i32 - 1);
                    for cell in Rect::new(x, y, x + 1, y + 1).cells() {
                        chosen.insert(cell);
                    }
                }
                cells.extend(chosen);
            }
        }
        cells.sort_unstable();
        cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_rng::SeedableRng;
    use meda_rng::StdRng;

    const DIMS: ChipDims = ChipDims {
        width: 30,
        height: 20,
    };

    #[test]
    fn none_places_nothing() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(FaultMode::None.place(DIMS, 0.5, &mut rng).is_empty());
    }

    #[test]
    fn uniform_hits_the_target_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let cells = FaultMode::Uniform.place(DIMS, 0.1, &mut rng);
        assert_eq!(cells.len(), 60);
        assert!(cells.iter().all(|&c| DIMS.contains(c)));
    }

    #[test]
    fn uniform_cells_are_unique() {
        let mut rng = StdRng::seed_from_u64(3);
        let cells = FaultMode::Uniform.place(DIMS, 0.2, &mut rng);
        let unique: std::collections::HashSet<_> = cells.iter().collect();
        assert_eq!(unique.len(), cells.len());
    }

    #[test]
    fn clustered_cells_come_in_2x2_blocks() {
        let mut rng = StdRng::seed_from_u64(4);
        let cells = FaultMode::Clustered.place(DIMS, 0.05, &mut rng);
        assert!(cells.len() >= 30);
        let set: std::collections::HashSet<_> = cells.iter().copied().collect();
        // Every faulty cell has at least one faulty neighbour in a 2×2
        // arrangement (diagonal + the two adjacent cells of some block).
        for &c in &cells {
            let has_block_neighbor = [(1, 0), (-1, 0), (0, 1), (0, -1)]
                .iter()
                .any(|&(dx, dy)| set.contains(&Cell::new(c.x + dx, c.y + dy)));
            assert!(has_block_neighbor, "isolated faulty cell {c}");
        }
    }

    #[test]
    fn clustered_cells_stay_on_chip() {
        let mut rng = StdRng::seed_from_u64(5);
        let cells = FaultMode::Clustered.place(DIMS, 0.3, &mut rng);
        assert!(cells.iter().all(|&c| DIMS.contains(c)));
    }

    #[test]
    fn zero_fraction_places_nothing() {
        let mut rng = StdRng::seed_from_u64(6);
        assert!(FaultMode::Uniform.place(DIMS, 0.0, &mut rng).is_empty());
        assert!(FaultMode::Clustered.place(DIMS, 0.0, &mut rng).is_empty());
    }
}
