//! Property-based tests for the microelectrode-cell circuit model:
//! RC-waveform laws and sensing monotonicity over the capacitance range.

use meda_cell::{CellParams, HealthReading, RcWaveform, ScanChain, SensingCircuit};
use meda_grid::{ChipDims, Grid, Rect};
use proptest::prelude::*;

proptest! {
    /// The RC waveform is monotone in time and in capacitance, and the
    /// crossing time scales exactly linearly with C (t = RC·ln(V/(V−Vth))).
    #[test]
    fn rc_waveform_laws(
        r_mohm in 0.1f64..10.0, c_pf in 0.1f64..100.0, scale in 1.1f64..5.0
    ) {
        let r = r_mohm * 1e6;
        let c = c_pf * 1e-12;
        let w = RcWaveform::new(r, c, 3.3);
        let tau = w.time_constant();
        prop_assert!(w.voltage_at(tau) < w.voltage_at(2.0 * tau));
        // 1 − 1/e at one time constant.
        prop_assert!((w.voltage_at(tau) / 3.3 - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        // Crossing time linear in C.
        let w2 = RcWaveform::new(r, c * scale, 3.3);
        let t1 = w.crossing_time(1.65).unwrap();
        let t2 = w2.crossing_time(1.65).unwrap();
        prop_assert!((t2 / t1 - scale).abs() < 1e-9);
        // Capacitance recovery inverts exactly.
        let c_est = RcWaveform::capacitance_from_crossing(r, 3.3, 1.65, t1).unwrap();
        prop_assert!((c_est - c).abs() / c < 1e-9);
    }

    /// The 2-bit reading is monotone non-increasing in capacitance over the
    /// whole degradation range, and hits each paper level in its band.
    #[test]
    fn sensing_is_monotone_in_capacitance(step in 0.0f64..1.0) {
        let params = CellParams::paper();
        let circuit = SensingCircuit::new(params);
        let lo = params.cap_healthy;
        let hi = params.cap_degraded + 1e-18;
        let mid = lo + (hi - lo) * step;
        let readings = [circuit.sense(lo), circuit.sense(mid), circuit.sense(hi)];
        prop_assert!(readings[0] >= readings[1] && readings[1] >= readings[2]);
        prop_assert_eq!(readings[0], HealthReading::Healthy);
        prop_assert_eq!(readings[2], HealthReading::Degraded);
    }

    /// Scan-chain round trips preserve arbitrary patterns.
    #[test]
    fn scan_chain_roundtrips(
        w in 1u32..12, h in 1u32..12,
        rects in proptest::collection::vec((0i32..12, 0i32..12, 0i32..4, 0i32..4), 0..5)
    ) {
        let dims = ChipDims::new(w, h);
        let chain = ScanChain::new(dims);
        let mut pattern = Grid::new(dims, false);
        for (xa, ya, dw, dh) in rects {
            pattern.fill_rect(Rect::new(xa + 1, ya + 1, xa + 1 + dw, ya + 1 + dh), true);
        }
        let restored = chain.deserialize(&chain.serialize(&pattern)).unwrap();
        prop_assert_eq!(restored, pattern);
    }

    /// Droplet-presence sensing is invariant to the MC's health state: a
    /// degraded electrode must never masquerade as a droplet (or hide one).
    #[test]
    fn droplet_sensing_is_health_invariant(step in 0.0f64..1.0) {
        let params = CellParams::paper();
        let circuit = SensingCircuit::new(params);
        let cap = params.cap_healthy + (params.cap_degraded - params.cap_healthy) * step;
        prop_assert!(circuit.sense_droplet(cap, true));
        prop_assert!(!circuit.sense_droplet(cap, false));
    }
}
