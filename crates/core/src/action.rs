use std::fmt;

use meda_grid::Rect;

use crate::ActionConfig;

/// A cardinal direction (north, south, east, west).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dir {
    /// North: `y + 1`.
    N,
    /// South: `y − 1`.
    S,
    /// East: `x + 1`.
    E,
    /// West: `x − 1`.
    W,
}

impl Dir {
    /// All four cardinal directions.
    pub const ALL: [Dir; 4] = [Dir::N, Dir::S, Dir::E, Dir::W];

    /// Unit displacement `(dx, dy)` of the direction.
    #[must_use]
    pub const fn delta(self) -> (i32, i32) {
        match self {
            Dir::N => (0, 1),
            Dir::S => (0, -1),
            Dir::E => (1, 0),
            Dir::W => (-1, 0),
        }
    }

    /// Whether the direction is vertical (N or S).
    #[must_use]
    pub const fn is_vertical(self) -> bool {
        matches!(self, Dir::N | Dir::S)
    }
}

impl fmt::Display for Dir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Dir::N => "N",
            Dir::S => "S",
            Dir::E => "E",
            Dir::W => "W",
        };
        f.write_str(s)
    }
}

/// An ordinal (diagonal) direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ordinal {
    /// North-east.
    NE,
    /// North-west.
    NW,
    /// South-east.
    SE,
    /// South-west.
    SW,
}

impl Ordinal {
    /// All four ordinal directions.
    pub const ALL: [Ordinal; 4] = [Ordinal::NE, Ordinal::NW, Ordinal::SE, Ordinal::SW];

    /// The vertical cardinal component (N or S).
    #[must_use]
    pub const fn vertical(self) -> Dir {
        match self {
            Ordinal::NE | Ordinal::NW => Dir::N,
            Ordinal::SE | Ordinal::SW => Dir::S,
        }
    }

    /// The horizontal cardinal component (E or W).
    #[must_use]
    pub const fn horizontal(self) -> Dir {
        match self {
            Ordinal::NE | Ordinal::SE => Dir::E,
            Ordinal::NW | Ordinal::SW => Dir::W,
        }
    }

    /// Unit displacement `(dx, dy)`.
    #[must_use]
    pub const fn delta(self) -> (i32, i32) {
        let (dx, _) = self.horizontal().delta();
        let (_, dy) = self.vertical().delta();
        (dx, dy)
    }
}

impl fmt::Display for Ordinal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Ordinal::NE => "NE",
            Ordinal::NW => "NW",
            Ordinal::SE => "SE",
            Ordinal::SW => "SW",
        };
        f.write_str(s)
    }
}

/// A microfluidic action of the controller (Section V-B):
/// `𝒜 = 𝒜_d ∪ 𝒜_dd ∪ 𝒜_dd' ∪ 𝒜_↓ ∪ 𝒜_↑`.
///
/// * [`Move`](Action::Move) — single-step cardinal movement (`a_N` …);
/// * [`MoveDouble`](Action::MoveDouble) — double-step cardinal movement
///   (`a_NN` …), guarded by droplet extent ≥ 4 along the movement axis;
/// * [`MoveOrdinal`](Action::MoveOrdinal) — diagonal movement (`a_NE` …);
/// * [`Widen`](Action::Widen) — morphing `a_↓·`: +1 width, −1 height,
///   growing toward the named corner;
/// * [`Heighten`](Action::Heighten) — morphing `a_↑·`: +1 height, −1 width.
///
/// Morphing preserves the droplet's half-perimeter `w + h`, so the set of
/// shapes reachable from a `w×h` droplet is `{(w', h') : w' + h' = w + h}`
/// clipped by the aspect-ratio guard.
///
/// # Examples
///
/// ```
/// use meda_core::{Action, Dir, Ordinal};
/// use meda_grid::Rect;
///
/// let d = Rect::new(3, 2, 7, 5);
/// assert_eq!(Action::Move(Dir::E).apply(d), Rect::new(4, 2, 8, 5));
/// assert_eq!(Action::MoveDouble(Dir::N).apply(d), Rect::new(3, 4, 7, 7));
/// // a_↓NE: widen toward the north-east.
/// let widened = Action::Widen(Ordinal::NE).apply(d);
/// assert_eq!(widened, Rect::new(3, 3, 8, 5));
/// assert_eq!(widened.width(), d.width() + 1);
/// assert_eq!(widened.height(), d.height() - 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Action {
    /// Single-step cardinal movement `a_d`.
    Move(Dir),
    /// Double-step cardinal movement `a_dd`.
    MoveDouble(Dir),
    /// Ordinal (diagonal) movement `a_dd'`.
    MoveOrdinal(Ordinal),
    /// Morphing `a_↓·`: increases width, decreases height.
    Widen(Ordinal),
    /// Morphing `a_↑·`: increases height, decreases width.
    Heighten(Ordinal),
}

impl Action {
    /// All 20 microfluidic actions in a stable order.
    pub const ALL: [Action; 20] = [
        Action::Move(Dir::N),
        Action::Move(Dir::S),
        Action::Move(Dir::E),
        Action::Move(Dir::W),
        Action::MoveDouble(Dir::N),
        Action::MoveDouble(Dir::S),
        Action::MoveDouble(Dir::E),
        Action::MoveDouble(Dir::W),
        Action::MoveOrdinal(Ordinal::NE),
        Action::MoveOrdinal(Ordinal::NW),
        Action::MoveOrdinal(Ordinal::SE),
        Action::MoveOrdinal(Ordinal::SW),
        Action::Widen(Ordinal::NE),
        Action::Widen(Ordinal::NW),
        Action::Widen(Ordinal::SE),
        Action::Widen(Ordinal::SW),
        Action::Heighten(Ordinal::NE),
        Action::Heighten(Ordinal::NW),
        Action::Heighten(Ordinal::SE),
        Action::Heighten(Ordinal::SW),
    ];

    /// The droplet location after *successful* execution, `a(δ)`.
    ///
    /// # Panics
    ///
    /// Panics if a morphing action is applied to a droplet too thin to
    /// morph (height/width 1); guard with [`Action::is_enabled`] first.
    #[must_use]
    pub fn apply(self, delta: Rect) -> Rect {
        let Rect { xa, ya, xb, yb } = delta;
        match self {
            Action::Move(d) => {
                let (dx, dy) = d.delta();
                delta.translate(dx, dy)
            }
            Action::MoveDouble(d) => {
                let (dx, dy) = d.delta();
                delta.translate(2 * dx, 2 * dy)
            }
            Action::MoveOrdinal(o) => {
                let (dx, dy) = o.delta();
                delta.translate(dx, dy)
            }
            Action::Widen(o) => match o {
                Ordinal::NE => Rect::new(xa, ya + 1, xb + 1, yb),
                Ordinal::NW => Rect::new(xa - 1, ya + 1, xb, yb),
                Ordinal::SE => Rect::new(xa, ya, xb + 1, yb - 1),
                Ordinal::SW => Rect::new(xa - 1, ya, xb, yb - 1),
            },
            Action::Heighten(o) => match o {
                Ordinal::NE => Rect::new(xa + 1, ya, xb, yb + 1),
                Ordinal::NW => Rect::new(xa, ya, xb - 1, yb + 1),
                Ordinal::SE => Rect::new(xa + 1, ya - 1, xb, yb),
                Ordinal::SW => Rect::new(xa, ya - 1, xb - 1, yb),
            },
        }
    }

    /// Evaluates the action's guard (Section V-B) for droplet `delta` within
    /// `bounds` under `config`:
    ///
    /// * shape guards `g_↑ : (y_b−y_a+2)/(x_b−x_a) ≤ r` and
    ///   `g_↓ : (x_b−x_a+2)/(y_b−y_a) ≤ r`;
    /// * double-step guards `g_NN/g_SS : h ≥ 4`, `g_EE/g_WW : w ≥ 4`;
    /// * the successful outcome must stay inside `bounds` (the hazard-bound
    ///   guard — failed moves leave the droplet in place, so this implies
    ///   `□¬hazard` along every outcome);
    /// * the action class must be enabled in `config`.
    #[must_use]
    pub fn is_enabled(self, delta: Rect, bounds: Rect, config: &ActionConfig) -> bool {
        self.class_enabled(delta, config) && bounds.contains_rect(self.apply(delta))
    }

    /// The configuration- and shape-dependent part of the guard — all of
    /// [`Action::is_enabled`] except the hazard-bound check. Depends on
    /// `delta` only through its shape, so bulk consumers (the MDP builder)
    /// evaluate it once per `(width, height)` rather than per state.
    #[must_use]
    pub fn class_enabled(self, delta: Rect, config: &ActionConfig) -> bool {
        let w = (delta.xb - delta.xa) as f64 + 1.0;
        let h = (delta.yb - delta.ya) as f64 + 1.0;
        match self {
            Action::Move(_) => true,
            Action::MoveDouble(d) => {
                config.double_step && if d.is_vertical() { h >= 4.0 } else { w >= 4.0 }
            }
            Action::MoveOrdinal(_) => config.ordinal,
            Action::Widen(_) => {
                // g_↓: (x_b − x_a + 2) / (y_b − y_a) ≤ r; h = 1 disables.
                config.morphing && h > 1.0 && (w + 1.0) / (h - 1.0) <= config.aspect_ratio_max
            }
            Action::Heighten(_) => {
                config.morphing && w > 1.0 && (h + 1.0) / (w - 1.0) <= config.aspect_ratio_max
            }
        }
    }

    /// Whether the action is geometrically applicable to `delta` at all:
    /// morphing needs at least two cells along the shrinking axis. Unlike
    /// [`Action::is_enabled`], this ignores bounds, aspect-ratio, and
    /// double-step guards — it is the condition under which
    /// [`Action::apply`] is defined.
    #[must_use]
    pub fn is_applicable(self, delta: Rect) -> bool {
        match self {
            Action::Widen(_) => delta.height() >= 2,
            Action::Heighten(_) => delta.width() >= 2,
            _ => true,
        }
    }

    /// The intermediate droplet of a double-step movement (shifted one
    /// step), `δ' = a_d(δ)`; `None` for other action classes.
    #[must_use]
    pub fn intermediate(self, delta: Rect) -> Option<Rect> {
        match self {
            Action::MoveDouble(d) => Some(Action::Move(d).apply(delta)),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Move(d) => write!(f, "a_{d}"),
            Action::MoveDouble(d) => write!(f, "a_{d}{d}"),
            Action::MoveOrdinal(o) => write!(f, "a_{o}"),
            Action::Widen(o) => write!(f, "a_v{o}"),
            Action::Heighten(o) => write!(f, "a_^{o}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const D: Rect = Rect {
        xa: 3,
        ya: 2,
        xb: 7,
        yb: 5,
    };

    #[test]
    fn moves_translate_without_reshaping() {
        for d in Dir::ALL {
            let moved = Action::Move(d).apply(D);
            assert_eq!(moved.width(), D.width());
            assert_eq!(moved.height(), D.height());
            let (dx, dy) = d.delta();
            assert_eq!(moved, D.translate(dx, dy));
        }
    }

    #[test]
    fn double_moves_translate_two_units() {
        assert_eq!(Action::MoveDouble(Dir::E).apply(D), D.translate(2, 0));
        assert_eq!(Action::MoveDouble(Dir::S).apply(D), D.translate(0, -2));
    }

    #[test]
    fn ordinal_moves_translate_diagonally() {
        assert_eq!(Action::MoveOrdinal(Ordinal::NE).apply(D), D.translate(1, 1));
        assert_eq!(
            Action::MoveOrdinal(Ordinal::SW).apply(D),
            D.translate(-1, -1)
        );
    }

    #[test]
    fn widen_increases_width_decreases_height() {
        for o in Ordinal::ALL {
            let m = Action::Widen(o).apply(D);
            assert_eq!(m.width(), D.width() + 1, "{o}");
            assert_eq!(m.height(), D.height() - 1, "{o}");
        }
    }

    #[test]
    fn heighten_increases_height_decreases_width() {
        for o in Ordinal::ALL {
            let m = Action::Heighten(o).apply(D);
            assert_eq!(m.width(), D.width() - 1, "{o}");
            assert_eq!(m.height(), D.height() + 1, "{o}");
        }
    }

    #[test]
    fn morphing_preserves_half_perimeter() {
        for o in Ordinal::ALL {
            for a in [Action::Widen(o), Action::Heighten(o)] {
                let m = a.apply(D);
                assert_eq!(m.width() + m.height(), D.width() + D.height());
            }
        }
    }

    #[test]
    fn paper_guard_example() {
        // For r = 3/2 and δ = (3,2,7,5): g_↑ = 1 while g_↓ = 0.
        let config = ActionConfig {
            aspect_ratio_max: 1.5,
            ..ActionConfig::default()
        };
        let bounds = Rect::new(-10, -10, 20, 20);
        assert!(Action::Heighten(Ordinal::NE).is_enabled(D, bounds, &config));
        assert!(!Action::Widen(Ordinal::NE).is_enabled(D, bounds, &config));
    }

    #[test]
    fn double_step_guard_requires_extent_4() {
        let config = ActionConfig::default();
        let bounds = Rect::new(-10, -10, 20, 20);
        let wide_flat = Rect::new(0, 0, 4, 1); // 5×2
        assert!(Action::MoveDouble(Dir::E).is_enabled(wide_flat, bounds, &config));
        assert!(!Action::MoveDouble(Dir::N).is_enabled(wide_flat, bounds, &config));
    }

    #[test]
    fn bounds_guard_disables_exit() {
        let config = ActionConfig::default();
        let bounds = Rect::new(1, 1, 10, 10);
        let at_edge = Rect::new(8, 4, 10, 6);
        assert!(!Action::Move(Dir::E).is_enabled(at_edge, bounds, &config));
        assert!(Action::Move(Dir::W).is_enabled(at_edge, bounds, &config));
        assert!(!Action::MoveOrdinal(Ordinal::NE).is_enabled(at_edge, bounds, &config));
    }

    #[test]
    fn thin_droplets_cannot_morph() {
        let config = ActionConfig {
            aspect_ratio_max: 100.0,
            ..ActionConfig::default()
        };
        let bounds = Rect::new(-10, -10, 20, 20);
        let flat = Rect::new(0, 0, 4, 0); // height 1
        assert!(!Action::Widen(Ordinal::NE).is_enabled(flat, bounds, &config));
        let thin = Rect::new(0, 0, 0, 4); // width 1
        assert!(!Action::Heighten(Ordinal::NE).is_enabled(thin, bounds, &config));
    }

    #[test]
    fn intermediate_only_for_double_steps() {
        assert_eq!(
            Action::MoveDouble(Dir::N).intermediate(D),
            Some(D.translate(0, 1))
        );
        assert_eq!(Action::Move(Dir::N).intermediate(D), None);
        assert_eq!(Action::Widen(Ordinal::NE).intermediate(D), None);
    }

    #[test]
    fn all_actions_unique_and_complete() {
        let mut set = std::collections::HashSet::new();
        for a in Action::ALL {
            assert!(set.insert(a));
        }
        assert_eq!(set.len(), 20);
    }

    #[test]
    fn display_names_follow_paper() {
        assert_eq!(Action::Move(Dir::N).to_string(), "a_N");
        assert_eq!(Action::MoveDouble(Dir::E).to_string(), "a_EE");
        assert_eq!(Action::MoveOrdinal(Ordinal::SW).to_string(), "a_SW");
    }
}
