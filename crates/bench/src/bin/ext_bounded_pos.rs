//! Extension: analytic vs simulated bounded probability of success.
//! `Pmax=? [ F≤k goal ]` via backward induction is the per-job analytic
//! counterpart of the paper's Fig. 15 PoS metric; this harness
//! cross-validates it against Monte-Carlo simulation of the very same
//! model — solver and simulator must agree within sampling error.
#![forbid(unsafe_code)]

use meda_bench::{banner, bar, header, row};
use meda_core::{transitions, ActionConfig, ForceProvider, RawField, RoutingMdp};
use meda_grid::{Cell, ChipDims, Grid, Rect};
use meda_rng::StdRng;
use meda_rng::{Rng, SeedableRng};
use meda_synth::bounded_reach_probability;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let trials = if full { 40_000 } else { 8_000 };

    banner(
        "Extension — bounded PoS: analytic vs Monte-Carlo",
        "One 3×3 routing job across a 14×7 zone with a degraded band; the \
         backward-induction P[F≤k] must match the simulated completion \
         rate under the time-dependent optimal policy.",
    );
    println!("Monte-Carlo trials per budget: {trials}\n");

    // A field with a worn band across the middle.
    let dims = ChipDims::new(14, 7);
    let mut grid = Grid::new(dims, 0.95);
    for y in 3..=5 {
        for x in 6..=9 {
            grid[Cell::new(x, y)] = 0.35;
        }
    }
    let field = RawField::new(grid);
    let start = Rect::new(1, 3, 3, 5);
    let goal = Rect::new(12, 3, 14, 5);
    let bounds = Rect::new(1, 1, 14, 7);
    let mdp = RoutingMdp::build(start, goal, bounds, &field, &ActionConfig::moves_only())
        .expect("geometry is consistent");

    let horizon = 40;
    let table = bounded_reach_probability(&mdp, horizon);

    let widths = [8, 12, 12, 10, 22];
    header(&["budget", "analytic", "simulated", "abs err", ""], &widths);
    let mut rng = StdRng::seed_from_u64(4242);
    for budget in [6usize, 8, 10, 12, 16, 24, 40] {
        let analytic = table.at(mdp.init(), budget);
        // Simulate under the same time-dependent optimal policy.
        let mut successes = 0u32;
        for _ in 0..trials {
            let mut droplet = start;
            let mut left = budget;
            while left > 0 {
                let Some(i) = mdp.state_index(droplet) else {
                    break;
                };
                if mdp.is_goal(i) {
                    break;
                }
                let Some(action) = table.action_at(i, left) else {
                    break;
                };
                let outcomes = transitions(droplet, action, &field);
                let mut roll: f64 = rng.gen();
                for o in &outcomes {
                    if roll < o.probability {
                        droplet = o.droplet;
                        break;
                    }
                    roll -= o.probability;
                }
                left -= 1;
            }
            if mdp.state_index(droplet).is_some_and(|i| mdp.is_goal(i)) {
                successes += 1;
            }
        }
        let simulated = f64::from(successes) / f64::from(trials as u32);
        row(
            &[
                format!("{budget}"),
                format!("{analytic:.4}"),
                format!("{simulated:.4}"),
                format!("{:.4}", (analytic - simulated).abs()),
                bar(analytic, 20),
            ],
            &widths,
        );
    }

    let b99 = table.budget_for(mdp.init(), 0.99);
    println!(
        "\nbudget for 99% success: {} cycles (vs {} Manhattan distance)",
        b99.map_or("beyond horizon".into(), |b| b.to_string()),
        (goal.xa - start.xa).abs() + (goal.ya - start.ya).abs()
    );
    println!(
        "\nReading: analytic and simulated values agree to Monte-Carlo \
         noise (≈1/√trials), cross-validating the synthesis engine against \
         the simulator — and giving bioassay designers an exact answer to \
         the Fig. 15 question per routing job: how much budget buys how \
         much certainty. Field mean force: {:.2}.",
        field.mean_force(bounds)
    );
}
