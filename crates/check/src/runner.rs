//! The property runner: case loop, greedy shrinking, corpus persistence.
//!
//! # Corpus lifecycle
//!
//! When a property fails, the runner writes a `.case` file into the
//! configured corpus directory recording the property name, the failing
//! `(seed, case)` pair, and the fully shrunk value's `Debug` rendering.
//! Because generation is deterministic (see [`crate::gen`]), the pair is a
//! complete serialization: replaying it regenerates the exact failing
//! value. On every subsequent run the corpus is replayed *first* — a still
//! failing entry short-circuits the run (regressions stay loud), and an
//! entry that now passes is deleted (the bug is fixed, the corpus stays
//! tidy). Corpus files are plain text and meant to be committed alongside
//! the fix that retires them.

use std::fmt::Debug;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use meda_rng::{SeedableRng, StdRng};

use crate::gen::Gen;
use crate::tree::Tree;

/// Default number of cases when neither the caller nor the
/// `MEDA_CHECK_CASES` environment variable says otherwise.
const DEFAULT_CASES: usize = 64;

/// Hard cap on property evaluations spent shrinking one failure.
const DEFAULT_MAX_SHRINK_EVALS: usize = 4096;

/// Stream-splitting constant (splitmix64 increment) for per-case seeds.
const CASE_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Reads the extended-budget override: `MEDA_CHECK_CASES=N` scales every
/// default-budget property run up (or down) without code changes.
#[must_use]
pub fn cases_from_env(default: usize) -> usize {
    std::env::var("MEDA_CHECK_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases to run (after corpus replay).
    pub cases: usize,
    /// Base seed; case `i` derives its own independent stream.
    pub seed: u64,
    /// Budget of property evaluations for the shrink search.
    pub max_shrink_evals: usize,
    /// Where failing cases persist; `None` disables persistence.
    pub corpus: Option<PathBuf>,
    /// Replay the corpus only — skip the random case loop.
    pub replay_only: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cases: cases_from_env(DEFAULT_CASES),
            seed: 0x4D45_4441,
            max_shrink_evals: DEFAULT_MAX_SHRINK_EVALS,
            corpus: None,
            replay_only: false,
        }
    }
}

impl Config {
    /// Overrides the case budget (still subject to `MEDA_CHECK_CASES`
    /// only if the caller routed it through [`cases_from_env`]).
    #[must_use]
    pub fn with_cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the base seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables failure persistence + replay under `dir`.
    #[must_use]
    pub fn with_corpus(mut self, dir: impl Into<PathBuf>) -> Self {
        self.corpus = Some(dir.into());
        self
    }

    /// Replay persisted failures only; no new random cases.
    #[must_use]
    pub fn replay_only(mut self) -> Self {
        self.replay_only = true;
        self
    }
}

/// A fully shrunk property failure.
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// Property name (also the corpus key).
    pub property: String,
    /// Base seed of the run that found it.
    pub seed: u64,
    /// Case index within that run.
    pub case: usize,
    /// The originally generated counterexample.
    pub original: T,
    /// The counterexample after greedy shrinking.
    pub shrunk: T,
    /// Number of successful shrink steps taken.
    pub shrink_steps: usize,
    /// The property's failure message at the shrunk value.
    pub message: String,
}

impl<T: Debug> Failure<T> {
    /// Human-readable multi-line report, including replay instructions.
    #[must_use]
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "property '{}' failed", self.property);
        let _ = writeln!(
            out,
            "  seed {:#x}, case {} (replay: corpus entry or Config::with_seed)",
            self.seed, self.case
        );
        let _ = writeln!(out, "  original: {:?}", self.original);
        let _ = writeln!(
            out,
            "  shrunk ({} steps): {:?}",
            self.shrink_steps, self.shrunk
        );
        let _ = writeln!(out, "  failure: {}", self.message);
        out
    }
}

/// Result of running one property.
#[derive(Debug, Clone)]
pub enum Outcome<T> {
    /// Every case (and corpus replay) passed.
    Passed {
        /// Random cases executed.
        cases: usize,
        /// Corpus entries replayed (all passing; stale entries removed).
        replayed: usize,
    },
    /// A case failed; the failure is fully shrunk (and persisted when a
    /// corpus directory is configured).
    Failed(Box<Failure<T>>),
}

impl<T> Outcome<T> {
    /// Whether the property passed.
    #[must_use]
    pub fn is_pass(&self) -> bool {
        matches!(self, Outcome::Passed { .. })
    }
}

/// The independent RNG stream for `(seed, case)`.
fn case_rng(seed: u64, case: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (case as u64).wrapping_mul(CASE_STREAM))
}

/// Runs `prop` over `config.cases` generated values, replaying the corpus
/// first and shrinking + persisting any failure. Returns instead of
/// panicking, so meta-tests (and the CLI) can inspect the outcome;
/// test-suite callers usually want [`check`].
pub fn run_property<T, P>(name: &str, config: &Config, gen: &Gen<T>, prop: P) -> Outcome<T>
where
    T: Clone + Debug + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    let mut replayed = 0;
    for entry in corpus_entries(config, name) {
        let mut rng = case_rng(entry.seed, entry.case);
        let tree = gen.generate(&mut rng);
        match prop(tree.value()) {
            Ok(()) => {
                // Fixed: retire the corpus entry.
                let _ = std::fs::remove_file(&entry.path);
                replayed += 1;
            }
            Err(message) => {
                let failure =
                    shrink_failure(name, entry.seed, entry.case, &tree, &prop, message, config);
                persist(config, &failure);
                return Outcome::Failed(Box::new(failure));
            }
        }
    }
    if config.replay_only {
        return Outcome::Passed { cases: 0, replayed };
    }
    for case in 0..config.cases {
        let mut rng = case_rng(config.seed, case);
        let tree = gen.generate(&mut rng);
        if let Err(message) = prop(tree.value()) {
            let failure = shrink_failure(name, config.seed, case, &tree, &prop, message, config);
            persist(config, &failure);
            return Outcome::Failed(Box::new(failure));
        }
    }
    Outcome::Passed {
        cases: config.cases,
        replayed,
    }
}

/// Runs [`run_property`] and panics with a readable report on failure —
/// the `#[test]` entry point.
///
/// # Panics
///
/// Panics when the property fails; the message contains the seed, case
/// index, original and shrunk counterexamples, and the failure text.
pub fn check<T, P>(name: &str, config: &Config, gen: &Gen<T>, prop: P)
where
    T: Clone + Debug + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    if let Outcome::Failed(failure) = run_property(name, config, gen, prop) {
        panic!("{}", failure.report());
    }
}

/// Greedy descent through the shrink tree: repeatedly move to the first
/// child that still fails, until no child fails or the eval budget runs
/// out. Returns the fully shrunk failure.
fn shrink_failure<T, P>(
    name: &str,
    seed: u64,
    case: usize,
    tree: &Tree<T>,
    prop: &P,
    first_message: String,
    config: &Config,
) -> Failure<T>
where
    T: Clone + Debug + 'static,
    P: Fn(&T) -> Result<(), String>,
{
    let original = tree.value().clone();
    let mut current = tree.clone();
    let mut message = first_message;
    let mut steps = 0;
    let mut evals = 0;
    'descend: loop {
        for child in current.children() {
            if evals >= config.max_shrink_evals {
                break 'descend;
            }
            evals += 1;
            if let Err(m) = prop(child.value()) {
                current = child;
                message = m;
                steps += 1;
                continue 'descend;
            }
        }
        break;
    }
    Failure {
        property: name.to_string(),
        seed,
        case,
        original,
        shrunk: current.value().clone(),
        shrink_steps: steps,
        message,
    }
}

/// One parsed corpus file.
struct CorpusEntry {
    path: PathBuf,
    seed: u64,
    case: usize,
}

/// Corpus filename for a property + case (name sanitized to kebab).
fn corpus_file(dir: &Path, name: &str, case: usize) -> PathBuf {
    let slug: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    dir.join(format!("{slug}-{case}.case"))
}

/// Reads, parses, and sorts this property's corpus entries. IO errors are
/// treated as an absent corpus — replay is best-effort by design.
fn corpus_entries(config: &Config, name: &str) -> Vec<CorpusEntry> {
    let Some(dir) = config.corpus.as_deref() else {
        return Vec::new();
    };
    let Ok(read) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut paths: Vec<PathBuf> = read
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let field = |key: &str| -> Option<String> {
            text.lines()
                .find_map(|l| l.strip_prefix(&format!("{key}=")).map(str::to_string))
        };
        if field("property").as_deref() != Some(name) {
            continue;
        }
        let (Some(seed), Some(case)) = (
            field("seed").and_then(|s| s.parse().ok()),
            field("case").and_then(|s| s.parse().ok()),
        ) else {
            continue;
        };
        out.push(CorpusEntry { path, seed, case });
    }
    out
}

/// Writes the failure to the corpus (best effort; tests still fail loudly
/// through the returned [`Outcome`] even if persistence is impossible).
fn persist<T: Debug>(config: &Config, failure: &Failure<T>) {
    let Some(dir) = config.corpus.as_deref() else {
        return;
    };
    let _ = std::fs::create_dir_all(dir);
    let path = corpus_file(dir, &failure.property, failure.case);
    let esc = |s: &str| s.replace('\\', "\\\\").replace('\n', "\\n");
    let body = format!(
        "property={}\nseed={}\ncase={}\nshrunk={}\nmessage={}\n",
        failure.property,
        failure.seed,
        failure.case,
        esc(&format!("{:?}", failure.shrunk)),
        esc(&failure.message),
    );
    let _ = std::fs::write(path, body);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{choose, vec_of};

    fn no_corpus() -> Config {
        Config {
            cases: 100,
            seed: 1,
            ..Config::default()
        }
    }

    #[test]
    fn passing_property_passes() {
        let g = choose(0, 100);
        let out = run_property("unit-pass", &no_corpus(), &g, |&v| {
            if (0..=100).contains(&v) {
                Ok(())
            } else {
                Err(format!("out of range: {v}"))
            }
        });
        assert!(out.is_pass());
    }

    #[test]
    fn failing_property_shrinks_to_the_boundary() {
        // "All values are < 37" fails and must shrink to exactly 37.
        let g = choose(0, 1000);
        let out = run_property("unit-boundary", &no_corpus(), &g, |&v| {
            if v < 37 {
                Ok(())
            } else {
                Err(format!("{v} >= 37"))
            }
        });
        match out {
            Outcome::Failed(f) => assert_eq!(f.shrunk, 37, "{}", f.report()),
            Outcome::Passed { .. } => panic!("property should fail"),
        }
    }

    #[test]
    fn failing_vec_property_shrinks_to_minimal_witness() {
        // "No vector sums to >= 50": minimal witness is a single element
        // vector [50] (element shrunk to the boundary, length to 1).
        let g = vec_of(choose(0, 30), 0, 8);
        let out = run_property("unit-vecsum", &no_corpus(), &g, |v: &Vec<i64>| {
            let s: i64 = v.iter().sum();
            if s < 50 {
                Ok(())
            } else {
                Err(format!("sum {s} >= 50"))
            }
        });
        match out {
            Outcome::Failed(f) => {
                let s: i64 = f.shrunk.iter().sum();
                assert!(s >= 50);
                assert!(s <= 60, "poorly shrunk: {:?}", f.shrunk);
                assert!(f.shrunk.len() <= 3, "poorly shrunk: {:?}", f.shrunk);
            }
            Outcome::Passed { .. } => panic!("property should fail"),
        }
    }

    #[test]
    fn corpus_roundtrip_replays_then_retires() {
        let dir = std::env::temp_dir().join(format!("meda-check-corpus-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = Config {
            cases: 50,
            seed: 99,
            corpus: Some(dir.clone()),
            ..Config::default()
        };
        let g = choose(0, 1000);
        // 1. Failing run persists a corpus entry.
        let out = run_property("unit-corpus", &config, &g, |&v| {
            if v < 500 {
                Ok(())
            } else {
                Err("too big".into())
            }
        });
        assert!(!out.is_pass());
        let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(files.len(), 1);
        // 2. Replay-only run sees the failure again without new cases.
        let replay = Config {
            replay_only: true,
            ..config.clone()
        };
        let out = run_property("unit-corpus", &replay, &g, |&v| {
            if v < 500 {
                Ok(())
            } else {
                Err("too big".into())
            }
        });
        assert!(!out.is_pass());
        // 3. Once the property is "fixed", replay passes and retires it.
        let out = run_property("unit-corpus", &replay, &g, |_| Ok(()));
        match out {
            Outcome::Passed { replayed, cases } => {
                assert_eq!(replayed, 1);
                assert_eq!(cases, 0);
            }
            Outcome::Failed(f) => panic!("{}", f.report()),
        }
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn runs_are_deterministic_given_a_seed() {
        let g = vec_of(choose(0, 1000), 0, 10);
        let run = || match run_property("unit-det", &no_corpus(), &g, |v: &Vec<i64>| {
            if v.iter().sum::<i64>() < 1800 {
                Ok(())
            } else {
                Err("sum".into())
            }
        }) {
            Outcome::Failed(f) => format!("{:?}", f.shrunk),
            Outcome::Passed { .. } => "pass".into(),
        };
        assert_eq!(run(), run());
    }
}
