use meda_rng::Rng;

use crate::DegradationParams;

/// Actuation regime of the PCB degradation experiment (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActuationMode {
    /// Each electrode actuated for 1 s — degradation dominated by charge
    /// trapping in the dielectric layer (Fig. 5(a)).
    ChargeTrapping,
    /// Each electrode actuated for 5 s — excessive actuation adds residual
    /// charge and the capacitance grows much faster (Fig. 5(b)).
    ResidualCharge,
    /// AC actuation voltage: alternating polarity lets trapped charge
    /// escape, slowing degradation substantially (the paper cites this
    /// mitigation but uses DC, as mainstream commercial DMFBs do, for
    /// simpler and cheaper control electronics).
    AcActuation,
}

impl ActuationMode {
    /// Capacitance-growth multiplier relative to the charge-trapping
    /// baseline. The paper observes the 5 s regime growing "much faster";
    /// we use 4× (the per-actuation stress time ratio, 5 s vs ~1 s with
    /// settling).
    #[must_use]
    pub const fn growth_factor(self) -> f64 {
        match self {
            Self::ChargeTrapping => 1.0,
            Self::ResidualCharge => 4.0,
            Self::AcActuation => 0.25,
        }
    }
}

/// One capacitance read-out of the PCB experiment: the electrode is
/// actuated, and the charging time through the series 1 MΩ resistor is
/// measured on an oscilloscope and inverted to an effective capacitance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcbMeasurement {
    /// Cumulative number of actuations the electrode has undergone.
    pub actuations: u64,
    /// Measured effective capacitance in farads.
    pub capacitance: f64,
}

/// Synthetic stand-in for the fabricated PCB-based DMFB testbed of Fig. 4.
///
/// The paper stresses electrodes of three sizes (2/3/4 mm) at 200 Vpp
/// through R = 1 MΩ and observes the effective capacitance growing linearly
/// with the number of actuations (Fig. 5). This generator produces the same
/// observable: `C(n) = C₀ · (1 + β·n) + noise`, with
/// `β = −ln τ / c · growth_factor` so that the implied voltage derate
/// `V(n)/Va = C₀ / C(n) ≈ τ^(n/c)` reproduces the exponential degradation
/// model the paper fits in Fig. 6.
///
/// # Examples
///
/// ```
/// use meda_degradation::{ActuationMode, PcbExperiment};
/// use meda_rng::SeedableRng;
///
/// let mut rng = meda_rng::StdRng::seed_from_u64(7);
/// let exp = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping);
/// let series = exp.run(&mut rng, 10, 100);
/// assert_eq!(series.len(), 10);
/// // Capacitance grows with actuation count.
/// assert!(series.last().unwrap().capacitance > series[0].capacitance);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcbExperiment {
    /// Electrode side length in millimeters (2, 3 or 4 on the fabricated
    /// board).
    pub electrode_mm: f64,
    /// Pristine effective capacitance in farads.
    pub base_capacitance: f64,
    /// Underlying degradation constants for this electrode.
    pub params: DegradationParams,
    /// Actuation regime.
    pub mode: ActuationMode,
    /// Relative 1-σ measurement noise of the oscilloscope read-out.
    pub noise: f64,
    /// Actuation source peak-to-peak voltage (paper: 200 Vpp).
    pub vpp: f64,
    /// Series resistance (paper: 1 MΩ).
    pub resistance: f64,
}

impl PcbExperiment {
    /// The 2 × 2 mm² electrode with the paper's fitted `(τ₂, c₂)`.
    #[must_use]
    pub fn paper_2mm(mode: ActuationMode) -> Self {
        Self::sized(2.0, DegradationParams::PAPER_2MM, mode)
    }

    /// The 3 × 3 mm² electrode with the paper's fitted `(τ₃, c₃)`.
    #[must_use]
    pub fn paper_3mm(mode: ActuationMode) -> Self {
        Self::sized(3.0, DegradationParams::PAPER_3MM, mode)
    }

    /// The 4 × 4 mm² electrode with the paper's fitted `(τ₄, c₄)`.
    #[must_use]
    pub fn paper_4mm(mode: ActuationMode) -> Self {
        Self::sized(4.0, DegradationParams::PAPER_4MM, mode)
    }

    fn sized(mm: f64, params: DegradationParams, mode: ActuationMode) -> Self {
        // Parallel-plate estimate with a ~100 µm dielectric gap and ε_r ≈ 4
        // (solder-mask + film): C₀ = ε·A/d; yields tens of pF, the scale an
        // oscilloscope RC read-out resolves.
        let area = (mm * 1e-3) * (mm * 1e-3);
        let base_capacitance = 4.0 * 8.854e-12 * area / 100e-6;
        Self {
            electrode_mm: mm,
            base_capacitance,
            params,
            mode,
            noise: 0.01,
            vpp: 200.0,
            resistance: 1e6,
        }
    }

    /// Per-actuation relative capacitance growth `β`.
    #[must_use]
    pub fn growth_rate(&self) -> f64 {
        -self.params.log_slope() * self.mode.growth_factor()
    }

    /// Noise-free capacitance after `n` actuations.
    #[must_use]
    pub fn capacitance_at(&self, n: u64) -> f64 {
        self.base_capacitance * (1.0 + self.growth_rate() * n as f64)
    }

    /// Runs the stress experiment, reading the capacitance every `step`
    /// actuations (`points` read-outs in total, the first at `n = 0`).
    #[must_use]
    pub fn run(&self, rng: &mut impl Rng, points: usize, step: u64) -> Vec<PcbMeasurement> {
        (0..points)
            .map(|i| {
                let n = i as u64 * step;
                let noise = 1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0);
                PcbMeasurement {
                    actuations: n,
                    capacitance: self.capacitance_at(n) * noise,
                }
            })
            .collect()
    }

    /// Direct relative-force measurements `(n, F̄(n))` with multiplicative
    /// read-out noise — the series the paper fits in Fig. 6. (The
    /// capacitance-derived derate of [`force_samples`](Self::force_samples)
    /// tracks the same trend but only approximates the exponential to
    /// first order, so fits through it recover a biased `c`.)
    #[must_use]
    pub fn force_measurements(
        &self,
        rng: &mut impl Rng,
        points: usize,
        step: u64,
    ) -> Vec<(u64, f64)> {
        (0..points)
            .map(|i| {
                let n = i as u64 * step;
                let noise = 1.0 + self.noise * (rng.gen::<f64>() * 2.0 - 1.0);
                (n, self.params.relative_force(n) * noise)
            })
            .collect()
    }

    /// Converts a capacitance series into relative-force samples
    /// `(n, F̄(n))` via `V/Va = C₀/C(n)` and `F̄ = (V/Va)²` — the measured
    /// series plotted in Fig. 6.
    #[must_use]
    pub fn force_samples(&self, series: &[PcbMeasurement]) -> Vec<(u64, f64)> {
        series
            .iter()
            .map(|m| {
                let derate = self.base_capacitance / m.capacitance;
                (m.actuations, derate * derate)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_rng::SeedableRng;
    use meda_rng::StdRng;

    #[test]
    fn capacitance_growth_is_linear() {
        let exp = PcbExperiment::paper_2mm(ActuationMode::ChargeTrapping);
        let c0 = exp.capacitance_at(0);
        let c1 = exp.capacitance_at(100);
        let c2 = exp.capacitance_at(200);
        assert!((2.0 * (c1 - c0) - (c2 - c0)).abs() < 1e-18);
    }

    #[test]
    fn residual_mode_grows_faster() {
        let trap = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping);
        let residual = PcbExperiment::paper_3mm(ActuationMode::ResidualCharge);
        assert!(residual.growth_rate() > 2.0 * trap.growth_rate());
    }

    #[test]
    fn ac_actuation_slows_degradation() {
        let dc = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping);
        let ac = PcbExperiment::paper_3mm(ActuationMode::AcActuation);
        assert!(ac.growth_rate() < 0.5 * dc.growth_rate());
    }

    #[test]
    fn bigger_electrodes_have_bigger_capacitance() {
        let c2 = PcbExperiment::paper_2mm(ActuationMode::ChargeTrapping).base_capacitance;
        let c3 = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping).base_capacitance;
        let c4 = PcbExperiment::paper_4mm(ActuationMode::ChargeTrapping).base_capacitance;
        assert!(c2 < c3 && c3 < c4);
    }

    #[test]
    fn force_samples_start_near_unity_and_decay() {
        let exp = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping);
        let mut rng = StdRng::seed_from_u64(42);
        let series = exp.run(&mut rng, 9, 100);
        let force = exp.force_samples(&series);
        assert!((force[0].1 - 1.0).abs() < 0.05);
        assert!(force.last().unwrap().1 < force[0].1);
    }

    #[test]
    fn implied_derate_tracks_exponential_model() {
        // C(n) linear with β = −lnτ/c implies V/Va = 1/(1+βn) ≈ τ^(n/c)
        // to first order; check agreement within 8% over the fitted range.
        let exp = PcbExperiment::paper_2mm(ActuationMode::ChargeTrapping);
        for n in (0..=800).step_by(100) {
            let derate = exp.base_capacitance / exp.capacitance_at(n);
            let model = exp.params.degradation(n);
            assert!(
                (derate - model).abs() < 0.08,
                "n = {n}: derate {derate:.3} vs model {model:.3}"
            );
        }
    }

    #[test]
    fn run_is_deterministic_per_seed() {
        let exp = PcbExperiment::paper_4mm(ActuationMode::ResidualCharge);
        let a = exp.run(&mut StdRng::seed_from_u64(1), 5, 50);
        let b = exp.run(&mut StdRng::seed_from_u64(1), 5, 50);
        assert_eq!(a, b);
    }
}
