/// Electrical parameters of a microelectrode cell (Table I of the paper).
///
/// The defaults of [`CellParams::paper`] reproduce Table I: a 50 × 50 µm²
/// microelectrode under silicon oil (permittivity 19 pF/m) whose healthy,
/// partially-degraded, and completely-degraded capacitances are 2.375 fF,
/// 2.380 fF and 2.385 fF respectively, sensed at VDD = 3.3 V.
///
/// The sense resistance is chosen so consecutive threshold crossings are
/// 5 ns apart — the clock skew the paper derives from its HSPICE simulation
/// (Fig. 2) — and the two DFF clock edges straddle those crossings.
///
/// # Examples
///
/// ```
/// use meda_cell::CellParams;
///
/// let p = CellParams::paper();
/// // Table I: healthy capacitance 2.375 fF.
/// assert!((p.cap_healthy - 2.375e-15).abs() < 1e-21);
/// // Gap implied by C = ε·A/d is 20 µm.
/// assert!((p.dielectric_gap() - 20e-6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Microelectrode side length in meters (Table I: 50 µm).
    pub electrode_side: f64,
    /// Filler-medium (silicon oil) permittivity in F/m (Table I: 19 pF/m).
    pub oil_permittivity: f64,
    /// Capacitance of a healthy microelectrode in farads (Table I: 2.375 fF).
    pub cap_healthy: f64,
    /// Capacitance of a partially degraded microelectrode (Table I: 2.380 fF).
    pub cap_partial: f64,
    /// Capacitance of a completely degraded microelectrode (Table I: 2.385 fF).
    pub cap_degraded: f64,
    /// Supply voltage VDD in volts (3.3 V for the TSMC 0.35 µm chip).
    pub vdd: f64,
    /// Logic threshold the DFF input crosses, in volts (VDD / 2).
    pub vth: f64,
    /// Effective sense-path resistance in ohms.
    pub r_sense: f64,
    /// Clock edge of the original DFF, in seconds after charge start.
    pub t_clk_original: f64,
    /// Skew of the added DFF's clock edge (Fig. 2: 5 ns).
    pub dff_skew: f64,
    /// Relative capacitance increase when a droplet covers the MC
    /// (water ε≈80 vs oil ε≈19 ⇒ ~4.2×), used for location sensing.
    pub droplet_cap_factor: f64,
}

impl CellParams {
    /// The Table I / Fig. 2 parameter set.
    #[must_use]
    pub fn paper() -> Self {
        let vdd: f64 = 3.3;
        let vth = vdd / 2.0;
        let cap_healthy = 2.375e-15;
        let cap_partial = 2.380e-15;
        let cap_degraded = 2.385e-15;
        // Choose R so that the crossing-time spacing between consecutive
        // degradation levels is exactly the paper's 5 ns DFF skew:
        //   Δt = R · ΔC · ln(VDD / (VDD − Vth)),  ΔC = 5 aF.
        let ln_ratio = (vdd / (vdd - vth)).ln();
        let dff_skew = 5e-9;
        let r_sense = dff_skew / ((cap_partial - cap_healthy) * ln_ratio);
        // Place the original DFF edge half a skew after the healthy
        // crossing, so healthy → 11, partial → 01, degraded → 00.
        let t_clk_original = r_sense * cap_healthy * ln_ratio + dff_skew / 2.0;
        Self {
            electrode_side: 50e-6,
            oil_permittivity: 19e-12,
            cap_healthy,
            cap_partial,
            cap_degraded,
            vdd,
            vth,
            r_sense,
            t_clk_original,
            dff_skew,
            droplet_cap_factor: 80.0 / 19.0,
        }
    }

    /// Microelectrode area `A` in m² (Table I: 2500 µm²).
    #[must_use]
    pub fn electrode_area(&self) -> f64 {
        self.electrode_side * self.electrode_side
    }

    /// Dielectric gap implied by the parallel-plate relation `d = ε·A / C`
    /// for the healthy capacitance.
    #[must_use]
    pub fn dielectric_gap(&self) -> f64 {
        self.oil_permittivity * self.electrode_area() / self.cap_healthy
    }

    /// Clock edge of the added DFF (original edge + 5 ns skew).
    #[must_use]
    pub fn t_clk_added(&self) -> f64 {
        self.t_clk_original + self.dff_skew
    }

    /// Capacitance of a healthy MC when a droplet covers it.
    #[must_use]
    pub fn cap_with_droplet(&self) -> f64 {
        self.cap_healthy * self.droplet_cap_factor
    }
}

impl Default for CellParams {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_capacitance_ordering() {
        let p = CellParams::paper();
        assert!(p.cap_healthy < p.cap_partial);
        assert!(p.cap_partial < p.cap_degraded);
    }

    #[test]
    fn electrode_area_matches_table_i() {
        let p = CellParams::paper();
        assert!((p.electrode_area() - 2500e-12).abs() < 1e-18);
    }

    #[test]
    fn added_dff_edge_is_5ns_later() {
        let p = CellParams::paper();
        assert!((p.t_clk_added() - p.t_clk_original - 5e-9).abs() < 1e-15);
    }

    #[test]
    fn droplet_capacitance_dominates_degradation_shift() {
        // Droplet presence must be detectable regardless of health, i.e. the
        // droplet factor must dwarf the degradation-induced shift.
        let p = CellParams::paper();
        assert!(p.cap_with_droplet() > 2.0 * p.cap_degraded);
    }
}
