//! Monotonic time sources — the only file in this crate allowed to touch
//! `std::time` (meda-lint's wall-clock rule exempts `*/perf.rs`).
//!
//! Nothing here ever exposes an absolute wall-clock value: the [`Clock`]
//! hands out nanosecond offsets from its own creation instant, and the
//! [`Stopwatch`] hands out durations. Both are observability-only — no
//! simulation or synthesis output may depend on them (DESIGN.md §11).

use std::time::Instant;

/// A monotonic clock that reports time as nanoseconds since its own
/// construction (the *run-relative epoch*).
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// Starts a new clock; its epoch is "now".
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since this clock's epoch, saturating at
    /// `u64::MAX` (≈ 584 years — unreachable in practice).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

/// A one-shot duration timer for instrumenting a code region without going
/// through a [`crate::Registry`] span.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating at
    /// `u64::MAX`.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let clock = Clock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn stopwatch_measures_something_nonnegative() {
        let sw = Stopwatch::start();
        let ns = sw.elapsed_ns();
        assert!(ns < u64::MAX);
    }
}
