//! Fluidic-constraint separation for concurrent fleet routing.
//!
//! When several droplets move on one chip in the same cycle, two droplets
//! that come too close risk unintended merging and make the sensed **Y**
//! matrix ambiguous (their clusters fuse). The classic DMFB fluidic
//! constraints forbid that both within a cycle (*static*) and across the
//! cycle boundary (*dynamic*, the "straddle" rule): a droplet may not enter
//! the interference ring of another droplet's old *or* new position.
//!
//! Scope: the rules apply between the *concurrently moving* droplets of
//! distinct micro-operations. Droplets parked under a hold pattern are
//! exempt blockers — the physical model has no droplet collisions and the
//! controller subtracts its own commanded holds from **Y** (see
//! `Exec::sense`), so passing over a parked droplet is well-defined; it is
//! simultaneous *motion* in close quarters that the checker must prevent.
//! Droplets of the same micro-operation are exempt too: mix and merge
//! partners are *meant* to meet.

use meda_bioassay::MoId;
use meda_grid::Rect;

/// Static + dynamic droplet-separation rules for concurrent routing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FluidicConstraints {
    /// Interference-ring width in cells: another droplet may not appear
    /// within this many cells of a mover's rectangle. The MEDA default
    /// is 2 (one guard cell plus one sensing cell).
    ring: i32,
}

impl Default for FluidicConstraints {
    fn default() -> Self {
        Self { ring: 2 }
    }
}

/// Which separation rule a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Two concurrent movers within one ring at the same cycle.
    Static,
    /// A mover within one ring of a peer's position from the previous
    /// cycle (the t→t+1 straddle rule).
    Dynamic,
}

/// A recorded separation violation (from [`FluidicConstraints::audit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeparationViolation {
    /// Cycle index into the audited position log.
    pub cycle: usize,
    /// The two offending micro-operations.
    pub mos: (MoId, MoId),
    /// Their droplet rectangles at the violating instant.
    pub rects: (Rect, Rect),
    /// Static (same cycle) or dynamic (straddling the cycle boundary).
    pub kind: ViolationKind,
}

impl FluidicConstraints {
    /// Constraints with an explicit ring width (in cells).
    #[must_use]
    pub fn new(ring: u32) -> Self {
        Self { ring: ring as i32 }
    }

    /// A disabled checker (ring 0 still forbids overlap; this admits even
    /// that) — used by the calibration meta-test to seed violations.
    #[must_use]
    pub fn disabled() -> Self {
        Self { ring: -1 }
    }

    /// The interference-ring width in cells.
    #[must_use]
    pub fn ring(&self) -> i32 {
        self.ring
    }

    /// Whether this checker enforces anything at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.ring >= 0
    }

    /// Whether two droplet rectangles satisfy the separation rule: `b`
    /// must lie strictly outside `a`'s `ring`-cell interference ring
    /// (symmetric in its arguments).
    #[must_use]
    pub fn separated(&self, a: Rect, b: Rect) -> bool {
        !self.is_enabled() || !a.expand(self.ring).intersects(b)
    }

    /// Whether a mover may step from `cur` to `next` given one concurrent
    /// peer: the new position must clear the peer's *current* ring
    /// (dynamic straddle — the peer has not vacated yet) and, when the
    /// peer is itself moving, its *next* ring (static rule at t+1). The
    /// peer's own straddle (`peer_next` vs `cur`) is checked from the
    /// peer's side when it commits its move.
    #[must_use]
    pub fn admissible_against(&self, next: Rect, peer_cur: Rect, peer_next: Option<Rect>) -> bool {
        self.separated(next, peer_cur) && peer_next.is_none_or(|p| self.separated(next, p))
    }

    /// Audits a per-cycle log of concurrently-moving droplets (MO id and
    /// post-move rectangle, as recorded by the fleet engine) against both
    /// rules. Same-MO pairs are exempt (intentional mixes/splits). Returns
    /// the first violation found, scanning cycles in order.
    #[must_use]
    pub fn audit(&self, log: &[Vec<(MoId, Rect)>]) -> Option<SeparationViolation> {
        self.audit_exempting(log, |_, _| false)
    }

    /// [`audit`](Self::audit) with an extra pair exemption. The fleet
    /// engine's callers exempt *dependency-linked* operations: a consumer's
    /// first droplet is the producer's parked output, so across the handoff
    /// boundary the log shows the same physical droplet under two MO ids
    /// one cell apart — a false dynamic "violation". Dependent operations
    /// are never concurrently in flight, so the exemption costs no
    /// detection power against genuine concurrent interference.
    #[must_use]
    pub fn audit_exempting(
        &self,
        log: &[Vec<(MoId, Rect)>],
        exempt: impl Fn(MoId, MoId) -> bool,
    ) -> Option<SeparationViolation> {
        for (cycle, movers) in log.iter().enumerate() {
            // Static rule within the cycle.
            for (i, &(mo_a, a)) in movers.iter().enumerate() {
                for &(mo_b, b) in &movers[i + 1..] {
                    if mo_a != mo_b && !exempt(mo_a, mo_b) && !self.separated(a, b) {
                        return Some(SeparationViolation {
                            cycle,
                            mos: (mo_a, mo_b),
                            rects: (a, b),
                            kind: ViolationKind::Static,
                        });
                    }
                }
            }
            // Dynamic rule across the boundary to the previous cycle: a
            // mover's new rectangle against every distinct-MO rectangle of
            // cycle-1 (where those droplets stood when this cycle began).
            if cycle == 0 {
                continue;
            }
            for &(mo_a, a) in movers {
                for &(mo_b, b) in &log[cycle - 1] {
                    if mo_a != mo_b && !exempt(mo_a, mo_b) && !self.separated(a, b) {
                        return Some(SeparationViolation {
                            cycle,
                            mos: (mo_a, mo_b),
                            rects: (a, b),
                            kind: ViolationKind::Dynamic,
                        });
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_requires_a_clear_ring() {
        let c = FluidicConstraints::default();
        let a = Rect::new(5, 5, 7, 7);
        // Two empty cells between droplets: separated.
        assert!(c.separated(a, Rect::new(10, 5, 12, 7)));
        // One empty cell: inside the 2-cell ring.
        assert!(!c.separated(a, Rect::new(9, 5, 11, 7)));
        // Touching and overlapping: clearly not.
        assert!(!c.separated(a, Rect::new(8, 5, 10, 7)));
        assert!(!c.separated(a, a));
    }

    #[test]
    fn disabled_checker_admits_everything() {
        let c = FluidicConstraints::disabled();
        let a = Rect::new(5, 5, 7, 7);
        assert!(c.separated(a, a));
        assert!(c.audit(&[vec![(0, a), (1, a)]]).is_none());
    }

    #[test]
    fn audit_catches_static_violations() {
        let c = FluidicConstraints::default();
        let log = vec![
            vec![(0, Rect::new(1, 1, 2, 2)), (1, Rect::new(10, 10, 11, 11))],
            vec![(0, Rect::new(8, 10, 9, 11)), (1, Rect::new(10, 10, 11, 11))],
        ];
        let v = c.audit(&log).expect("violation");
        assert_eq!(v.kind, ViolationKind::Static);
        assert_eq!(v.cycle, 1);
        assert_eq!(v.mos, (0, 1));
    }

    #[test]
    fn audit_catches_dynamic_straddles() {
        let c = FluidicConstraints::default();
        // Cycle 0: mover 1 sits at (10,10). Cycle 1: mover 1 left east,
        // mover 0 stepped into where mover 1 *was* — statically fine at
        // t+1, but a straddle of the boundary.
        let log = vec![
            vec![(0, Rect::new(4, 10, 5, 11)), (1, Rect::new(10, 10, 11, 11))],
            vec![(0, Rect::new(8, 10, 9, 11)), (1, Rect::new(14, 10, 15, 11))],
        ];
        let v = c.audit(&log).expect("violation");
        assert_eq!(v.kind, ViolationKind::Dynamic);
        assert_eq!(v.cycle, 1);
    }

    #[test]
    fn same_mo_partners_are_exempt() {
        let c = FluidicConstraints::default();
        let log = vec![vec![(3, Rect::new(5, 5, 6, 6)), (3, Rect::new(7, 5, 8, 6))]];
        assert!(c.audit(&log).is_none(), "mix partners may meet");
    }

    #[test]
    fn admissible_against_checks_both_peer_positions() {
        let c = FluidicConstraints::default();
        let next = Rect::new(5, 5, 6, 6);
        let far = Rect::new(12, 5, 13, 6);
        let near = Rect::new(8, 5, 9, 6);
        assert!(c.admissible_against(next, far, Some(far)));
        assert!(!c.admissible_against(next, near, Some(far)));
        assert!(!c.admissible_against(next, far, Some(near)));
        assert!(c.admissible_against(next, far, None));
    }
}
