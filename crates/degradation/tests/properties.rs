//! Property-style tests for the degradation model: monotonicity,
//! quantization soundness, and fit recovery, replayed over a
//! deterministic seeded input space.

use meda_degradation::{
    quantize_health, ActuationMode, DegradationParams, ExponentialFit, ParamDistribution,
    PcbExperiment,
};
use meda_rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 256;

fn arb_params(rng: &mut StdRng) -> DegradationParams {
    DegradationParams::new(rng.gen_range(0.1..0.99), rng.gen_range(50.0..1000.0))
}

#[test]
fn degradation_decreases_monotonically() {
    let mut rng = StdRng::seed_from_u64(0xDE60);
    for _ in 0..CASES {
        let p = arb_params(&mut rng);
        let n1 = rng.gen_range(0..5000u64);
        let n2 = rng.gen_range(0..5000u64);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        assert!(p.degradation(hi) <= p.degradation(lo) + 1e-12);
        assert!(p.relative_force(hi) <= p.relative_force(lo) + 1e-12);
    }
}

#[test]
fn degradation_stays_in_unit_interval() {
    let mut rng = StdRng::seed_from_u64(0xDE61);
    for _ in 0..CASES {
        let p = arb_params(&mut rng);
        let n = rng.gen_range(0..100_000u64);
        let d = p.degradation(n);
        assert!((0.0..=1.0).contains(&d));
        assert!((p.relative_force(n) - d * d).abs() < 1e-12);
    }
}

#[test]
fn actuations_to_reach_is_a_true_inverse() {
    let mut rng = StdRng::seed_from_u64(0xDE62);
    for _ in 0..CASES {
        let p = arb_params(&mut rng);
        let level = rng.gen_range(0.01..0.99);
        let n = p.actuations_to_reach(level).unwrap();
        assert!(p.degradation(n) <= level + 1e-9);
        if n > 0 {
            assert!(p.degradation(n - 1) > level - 1e-9);
        }
    }
}

#[test]
fn quantization_is_monotone_and_conservative() {
    let mut rng = StdRng::seed_from_u64(0xDE63);
    for _ in 0..CASES {
        let d = rng.gen_range(0.0..=1.0);
        let bits = rng.gen_range(1..=4u32) as u8;
        let h = quantize_health(d, bits);
        // Conservative: the implied estimate never exceeds the true level.
        assert!(h.as_degradation(bits) <= d + 1e-12);
        // Off by less than one bin.
        assert!(d - h.as_degradation(bits) < 1.0 / f64::from(1u16 << bits) + 1e-12);
    }
}

#[test]
fn quantization_never_increases_under_wear() {
    let mut rng = StdRng::seed_from_u64(0xDE64);
    for _ in 0..CASES {
        let p = arb_params(&mut rng);
        let bits = rng.gen_range(1..=3u32) as u8;
        let n1 = rng.gen_range(0..3000u64);
        let n2 = rng.gen_range(0..3000u64);
        let (lo, hi) = if n1 <= n2 { (n1, n2) } else { (n2, n1) };
        assert!(p.health(hi, bits) <= p.health(lo, bits));
    }
}

#[test]
fn fit_recovers_slope_from_exact_samples() {
    let mut rng = StdRng::seed_from_u64(0xDE65);
    for _ in 0..CASES {
        let p = arb_params(&mut rng);
        let step = rng.gen_range(20..200u64);
        let samples: Vec<_> = (0..=8)
            .map(|i| (i * step, p.relative_force(i * step)))
            .collect();
        // Skip degenerate data where the force underflows to ~0.
        if samples.iter().any(|&(_, f)| f <= 1e-12) {
            continue;
        }
        let fit = ExponentialFit::fit_force(&samples).unwrap();
        assert!((fit.slope - 2.0 * p.log_slope()).abs() < 1e-6 * p.log_slope().abs());
        let recovered = fit.params_for_tau(p.tau);
        assert!((recovered.c - p.c).abs() / p.c < 1e-6);
    }
}

#[test]
fn distribution_samples_stay_in_declared_ranges() {
    let mut rng = StdRng::seed_from_u64(0xDE66);
    for _ in 0..64 {
        let t1 = rng.gen_range(0.1..0.5);
        let t2 = rng.gen_range(0.5..0.9);
        let c1 = rng.gen_range(50.0..200.0);
        let c2 = rng.gen_range(200.0..500.0);
        let seed = rng.gen_range(0..1000u64);
        let dist = ParamDistribution::new((t1, t2), (c1, c2));
        let mut sample_rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let p = dist.sample(&mut sample_rng);
            assert!(p.tau >= t1 && p.tau <= t2);
            assert!(p.c >= c1 && p.c <= c2);
        }
    }
}

#[test]
fn pcb_capacitance_is_strictly_increasing() {
    // Noise-free law is strictly increasing; sampled read-outs drift
    // but the underlying model must be.
    let exp = PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping);
    let mut prev = 0.0;
    for n in (0..1000).step_by(100) {
        let c = exp.capacitance_at(n);
        assert!(c > prev);
        prev = c;
    }
    // And the generator is reproducible per seed.
    let mut rng = StdRng::seed_from_u64(0xDE67);
    for _ in 0..32 {
        let seed = rng.gen_range(0..500u64);
        let a = exp.run(&mut StdRng::seed_from_u64(seed), 5, 100);
        let b = exp.run(&mut StdRng::seed_from_u64(seed), 5, 100);
        assert_eq!(a, b);
    }
}
