//! Table IV — the worked MO→RJ decomposition example: four microfluidic
//! operations (two dispenses, a mix, a magnetic sensing op) on the 60×30
//! biochip, reproduced row by row.
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row};
use meda_bioassay::{RjHelper, SequencingGraph};
use meda_grid::ChipDims;

fn main() {
    banner(
        "Table IV — converting MOs to routing jobs (60×30 biochip)",
        "The Fig. 12 sequence graph: M1/M2 dispense 4×4 droplets, M3 mixes \
         them, M4 is a magnetic sensing operation.",
    );

    let mut sg = SequencingGraph::new("table-iv");
    let m1 = sg.dispense((17.5, 2.5), (4, 4));
    let m2 = sg.dispense((17.5, 28.5), (4, 4));
    let m3 = sg.mix(&[m1, m2], (10.5, 15.5));
    let _m4 = sg.magnetic(m3, (40.5, 15.5));

    let plan = RjHelper::new(ChipDims::PAPER)
        .plan(&sg)
        .expect("plans cleanly");

    let widths = [4, 5, 8, 14, 7, 22, 22, 22];
    header(
        &[
            "MO",
            "type",
            "RJ",
            "size (w×h)",
            "err",
            "start δs",
            "goal δg",
            "bounds δh",
        ],
        &widths,
    );
    for planned in plan.operations() {
        for (j, job) in planned.jobs.iter().enumerate() {
            let (w, h) = job.droplet_size();
            let area_err = if planned.op == meda_bioassay::MoType::Magnetic {
                // M4 carries the 6×5 approximation of area 32 (6.3%).
                format!("{:.1}%", ((w * h) as f64 - 32.0).abs() / 32.0 * 100.0)
            } else {
                "0.0%".to_string()
            };
            row(
                &[
                    format!("M{}", planned.id + 1),
                    planned.op.to_string(),
                    format!("RJ{}.{}", planned.id + 1, j),
                    format!("{} ({w}x{h})", w * h),
                    area_err,
                    job.start.to_string(),
                    job.goal.to_string(),
                    job.bounds.to_string(),
                ],
                &widths,
            );
        }
    }

    println!(
        "\nPaper rows (for comparison):\n\
         RJ1.0  (00,00,00,00) → (16,01,19,04) within (13,01,22,07)\n\
         RJ2.0  (00,00,00,00) → (16,27,19,30) within (13,24,22,30)\n\
         RJ3.0  (16,01,19,04) → (09,14,12,17) within (06,01,22,20)\n\
         RJ3.1  (16,27,19,30) → (09,14,12,17) within (06,11,22,30)\n\
         RJ4.0  (08,14,13,18) → (38,14,43,18) within (05,11,46,21)"
    );
}
