//! Sequencing graphs, microfluidic operations, and routing-job
//! decomposition (Section VI-A/B of the paper).
//!
//! A bioassay is a [`SequencingGraph`] of [`MicroOp`]s — dispense, output,
//! discard, mix, split, dilute, and magnetic-bead sensing (Table III). A
//! planner has already placed each operation at a module center location;
//! the [`RjHelper`] (Algorithm 1) decomposes every operation into
//! single-droplet [`RoutingJob`]s `(δ_s, δ_g, δ_h)`, computing droplet
//! sizes that minimize area error under `|w − h| ≤ 1` and hazard bounds via
//! the `ZONE` construction (a 3-MC safety margin around the start/goal
//! bounding box, clipped to the chip).
//!
//! The [`benchmarks`] module carries the nine bioassays used across the
//! paper's experiments: Master-Mix, CEP, Serial Dilution, NuIP, COVID-RAT,
//! COVID-PCR (Figs 15/16) and ChIP, multiplex in-vitro, gene expression
//! (the Fig. 3 correlation study). Their sequencing graphs are
//! reconstructions matching the paper's qualitative descriptions — see
//! `DESIGN.md` §3.
//!
//! # Examples
//!
//! Table IV's worked example:
//!
//! ```
//! use meda_bioassay::{MoType, RjHelper, SequencingGraph};
//! use meda_grid::{ChipDims, Rect};
//!
//! let mut sg = SequencingGraph::new("example");
//! let m1 = sg.dispense((17.5, 2.5), (4, 4));
//! let m2 = sg.dispense((17.5, 28.5), (4, 4));
//! let m3 = sg.mix(&[m1, m2], (10.5, 15.5));
//! let _m4 = sg.magnetic(m3, (40.5, 15.5));
//!
//! let plan = RjHelper::new(ChipDims::new(60, 30)).plan(&sg)?;
//! // M3 decomposes into two routing jobs with the same goal.
//! let m3_jobs = &plan.jobs_for(m3);
//! assert_eq!(m3_jobs.len(), 2);
//! assert_eq!(m3_jobs[0].goal, m3_jobs[1].goal);
//! # Ok::<(), meda_bioassay::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
mod graph;
mod helper;
mod mo;
mod placer;
mod rj;
mod sizing;
mod zone;

pub use graph::{MoId, SequencingGraph, ValidateError};
pub use helper::{BioassayPlan, PlanError, PlannedMo, RjHelper};
pub use mo::{MicroOp, MoType};
pub use placer::{AbstractOp, AssaySpec, PlaceError, Placer};
pub use rj::RoutingJob;
pub use sizing::fit_droplet_size;
pub use zone::zone;
