//! A minimal JSON value type with a writer and a recursive-descent parser.
//!
//! Kept deliberately tiny (no third-party deps is a repo invariant): objects
//! preserve insertion order via `Vec<(String, Json)>`, numbers are `f64`,
//! and the writer emits no whitespace beyond what callers add — so output
//! is byte-deterministic. Shared by the telemetry export sinks and the
//! bench baseline-comparison tooling.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Builds a number value from anything convertible to `f64` losslessly
    /// enough for metrics (`u64` counts above 2^53 lose precision; fine for
    /// observability).
    #[must_use]
    pub fn num(n: impl Into<f64>) -> Self {
        Json::Num(n.into())
    }

    /// Builds a number from a `u64` (via `f64`; counts above 2^53 round).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn u64(n: u64) -> Self {
        Json::Num(n as f64)
    }

    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a byte offset + message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        write!(f, "{}", *n as i64)
                    } else {
                        write!(f, "{n}")
                    }
                } else {
                    // JSON has no NaN/Infinity; degrade to null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected {lit:?} at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-utf8 \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // Surrogate pairs are not needed for metric names;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid utf8 in string".to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("bad number at byte {start}"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("meda-telemetry/1")),
            (
                "items".into(),
                Json::Arr(vec![Json::u64(3), Json::Bool(true), Json::Null]),
            ),
            ("pi".into(), Json::Num(3.5)),
            ("name".into(), Json::str("a \"quoted\"\nline")),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).expect("parse back");
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let v = Json::parse(" { \"a\" : [ ] , \"b\" : { } } ").expect("parse");
        assert_eq!(v.get("a"), Some(&Json::Arr(vec![])));
        assert_eq!(v.get("b"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_docs() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::u64(42).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
