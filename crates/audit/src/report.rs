//! Violation and report types shared by every audit pass.

use std::fmt;

use meda_core::Action;

/// One well-formedness violation found by the auditor.
///
/// Variants carry enough context to locate the defect without re-running
/// the audit; `Display` renders a one-line human-readable description.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// An artifact array has the wrong length relative to its companions
    /// (e.g. `state_choice_start` is not `states + 1` entries).
    ArrayLength {
        /// Name of the offending array.
        array: &'static str,
        /// Length the structure requires.
        expected: usize,
        /// Length actually found.
        found: usize,
    },
    /// A CSR offset array decreases, so a row would have negative extent.
    NonMonotoneOffsets {
        /// Name of the offset array.
        array: &'static str,
        /// Index at which the decrease occurs.
        index: usize,
        /// Offset preceding the decrease.
        prev: u32,
        /// The decreased offset.
        found: u32,
    },
    /// A CSR offset points past the end of the array it indexes into.
    OffsetOutOfRange {
        /// Name of the offset array.
        array: &'static str,
        /// Index of the out-of-range offset.
        index: usize,
        /// The offset value.
        found: u32,
        /// Exclusive upper bound the offset must respect.
        limit: usize,
    },
    /// A branch's successor index is not a valid state.
    DanglingTarget {
        /// Flat branch index.
        branch: usize,
        /// The invalid successor index.
        target: u32,
        /// Number of states in the artifact.
        states: usize,
    },
    /// A choice has an empty outcome distribution.
    EmptyBranch {
        /// Flat choice index.
        choice: usize,
        /// State owning the choice.
        state: usize,
    },
    /// A branch probability is NaN, non-positive, or above 1.
    BadProbability {
        /// Flat branch index.
        branch: usize,
        /// State owning the branch.
        state: usize,
        /// The offending probability.
        prob: f64,
    },
    /// A choice's outcome probabilities do not sum to 1 within tolerance.
    MassMismatch {
        /// Flat choice index.
        choice: usize,
        /// State owning the choice.
        state: usize,
        /// The distribution's actual mass.
        sum: f64,
    },
    /// A goal state has outgoing choices — goals must be absorbing.
    GoalNotAbsorbing {
        /// The goal state.
        state: usize,
        /// Number of choices it carries.
        choices: usize,
    },
    /// The hazard sink is flagged as a goal state.
    SinkIsGoal {
        /// The sink state.
        state: usize,
    },
    /// The hazard sink has outgoing choices — it must be absorbing.
    SinkNotAbsorbing {
        /// The sink state.
        state: usize,
        /// Number of choices it carries.
        choices: usize,
    },
    /// The hazard sink index is out of range.
    SinkOutOfRange {
        /// The sink index.
        sink: usize,
        /// Number of states.
        states: usize,
    },
    /// The initial state index is out of range.
    InitOutOfRange {
        /// The initial index.
        init: usize,
        /// Number of states.
        states: usize,
    },
    /// A state cannot be reached from the initial state — BFS construction
    /// never emits these, so their presence indicates corruption.
    UnreachableState {
        /// The unreachable state.
        state: usize,
    },
    /// A reachable non-goal, non-sink state with no choices: the droplet
    /// would deadlock there, so `Pmax[◇goal] = 0` through it.
    DeadEnd {
        /// The dead-end state.
        state: usize,
    },
    /// A value vector's length does not match the artifact.
    ValueLength {
        /// Length the artifact requires.
        expected: usize,
        /// Length actually found.
        found: usize,
    },
    /// A value vector failed its Bellman-residual certificate.
    UncertifiedValues {
        /// Largest residual `|T(v)_i − v_i|` over finite states.
        max_residual: f64,
        /// Tolerance the certificate required.
        epsilon: f64,
        /// State attaining the residual, if any.
        worst_state: Option<usize>,
        /// Number of finite/infinite disagreements.
        inconsistent: usize,
        /// Number of NaN or out-of-range values.
        out_of_range: usize,
    },
    /// The strategy's choice vector length does not match the artifact.
    StrategyLength {
        /// Length the artifact requires.
        expected: usize,
        /// Length actually found.
        found: usize,
    },
    /// The strategy leaves a reachable, still-hopeful state undecided.
    StrategyIncomplete {
        /// The undecided state.
        state: usize,
    },
    /// The strategy picks an action that is not enabled at that state.
    StrategyInvalidAction {
        /// The state with the bogus decision.
        state: usize,
        /// The action the strategy picked.
        action: Action,
    },
    /// The strategy decides at an absorbing (goal or sink) state, where no
    /// choice exists.
    StrategyChoiceAtAbsorbing {
        /// The absorbing state.
        state: usize,
    },
    /// Following the strategy escapes the artifact's state set.
    StrategyEscapes {
        /// The state whose chosen action escapes.
        state: usize,
        /// The out-of-range successor.
        target: u32,
    },
    /// A bounds-certificate vector has the wrong length.
    BoundsLength {
        /// Which vector (`"bounds.lo"` / `"bounds.hi"`).
        which: &'static str,
        /// Length the artifact requires.
        expected: usize,
        /// Length actually found.
        found: usize,
    },
    /// A bound is NaN or outside the operator's value range.
    BoundOutOfRange {
        /// The offending state.
        state: usize,
        /// The offending bound value.
        value: f64,
    },
    /// A certified interval is inverted: the lower bound exceeds the
    /// upper bound beyond tolerance.
    BoundsCrossed {
        /// The offending state.
        state: usize,
        /// The claimed lower bound.
        lo: f64,
        /// The claimed upper bound.
        hi: f64,
    },
    /// A claimed bound fails its monotone-backup soundness check: an
    /// upper bound must dominate one backup of itself (pre-fixed point),
    /// a lower bound must be dominated by one (post-fixed point, on the
    /// MEC quotient / Prob1 restriction where the fixed point is unique).
    BoundUnsound {
        /// `true` for the upper bound, `false` for the lower.
        upper: bool,
        /// The state (for quotient checks: the tightest member) at fault.
        state: usize,
        /// The claimed bound value.
        value: f64,
        /// The backup value that contradicts the claim.
        backup: f64,
    },
    /// The certified interval is wider than the advertised `2ε` target.
    BoundsNotConverged {
        /// Largest finite interval width.
        width: f64,
        /// The certificate's ε.
        epsilon: f64,
    },
    /// A value vector leaves the certified `[lo, hi]` interval — the
    /// solver's answer is provably not the true value.
    ValueOutsideBounds {
        /// The offending state.
        state: usize,
        /// The value claimed by the solver.
        value: f64,
        /// Certified lower bound at that state.
        lo: f64,
        /// Certified upper bound at that state.
        hi: f64,
    },
    /// The exact value attained by the shipped strategy at the initial
    /// state lies outside the certified interval.
    StrategyValueOutsideBounds {
        /// Exact induced-chain value at the initial state.
        value: f64,
        /// Certified lower bound at the initial state.
        lo: f64,
        /// Certified upper bound at the initial state.
        hi: f64,
    },
    /// The strategy's induced chain contains a strongly connected block
    /// too large to eliminate densely.
    StrategyChainBlockTooLarge {
        /// Size of the offending block.
        block: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArrayLength {
                array,
                expected,
                found,
            } => write!(f, "{array}: expected {expected} entries, found {found}"),
            Self::NonMonotoneOffsets {
                array,
                index,
                prev,
                found,
            } => write!(f, "{array}[{index}] = {found} decreases from {prev}"),
            Self::OffsetOutOfRange {
                array,
                index,
                found,
                limit,
            } => write!(f, "{array}[{index}] = {found} exceeds limit {limit}"),
            Self::DanglingTarget {
                branch,
                target,
                states,
            } => write!(
                f,
                "branch {branch} targets state {target} outside 0..{states}"
            ),
            Self::EmptyBranch { choice, state } => {
                write!(f, "choice {choice} of state {state} has no outcomes")
            }
            Self::BadProbability {
                branch,
                state,
                prob,
            } => write!(f, "branch {branch} of state {state} has probability {prob}"),
            Self::MassMismatch { choice, state, sum } => write!(
                f,
                "choice {choice} of state {state} has outcome mass {sum}, expected 1"
            ),
            Self::GoalNotAbsorbing { state, choices } => {
                write!(f, "goal state {state} has {choices} choices, expected 0")
            }
            Self::SinkIsGoal { state } => {
                write!(f, "hazard sink {state} is flagged as a goal state")
            }
            Self::SinkNotAbsorbing { state, choices } => {
                write!(f, "hazard sink {state} has {choices} choices, expected 0")
            }
            Self::SinkOutOfRange { sink, states } => {
                write!(f, "hazard sink {sink} outside 0..{states}")
            }
            Self::InitOutOfRange { init, states } => {
                write!(f, "initial state {init} outside 0..{states}")
            }
            Self::UnreachableState { state } => {
                write!(f, "state {state} is unreachable from the initial state")
            }
            Self::DeadEnd { state } => {
                write!(f, "state {state} is a non-goal dead end (no choices)")
            }
            Self::ValueLength { expected, found } => {
                write!(f, "value vector has {found} entries, expected {expected}")
            }
            Self::UncertifiedValues {
                max_residual,
                epsilon,
                worst_state,
                inconsistent,
                out_of_range,
            } => write!(
                f,
                "value vector is not an ε-fixed-point: residual {max_residual} > {epsilon} \
                 (worst state {worst_state:?}, {inconsistent} inconsistent, \
                 {out_of_range} out of range)"
            ),
            Self::StrategyLength { expected, found } => {
                write!(f, "strategy has {found} entries, expected {expected}")
            }
            Self::StrategyIncomplete { state } => {
                write!(
                    f,
                    "strategy is undecided at reachable hopeful state {state}"
                )
            }
            Self::StrategyInvalidAction { state, action } => {
                write!(
                    f,
                    "strategy picks disabled action {action:?} at state {state}"
                )
            }
            Self::StrategyChoiceAtAbsorbing { state } => {
                write!(f, "strategy decides at absorbing state {state}")
            }
            Self::StrategyEscapes { state, target } => write!(
                f,
                "strategy at state {state} reaches out-of-range successor {target}"
            ),
            Self::BoundsLength {
                which,
                expected,
                found,
            } => write!(f, "{which} has {found} entries, expected {expected}"),
            Self::BoundOutOfRange { state, value } => {
                write!(f, "bound at state {state} is out of range: {value}")
            }
            Self::BoundsCrossed { state, lo, hi } => {
                write!(f, "bounds at state {state} cross: lo {lo} exceeds hi {hi}")
            }
            Self::BoundUnsound {
                upper,
                state,
                value,
                backup,
            } => {
                let side = if *upper { "upper" } else { "lower" };
                write!(
                    f,
                    "{side} bound {value} at state {state} fails its monotone backup \
                     check (T = {backup})"
                )
            }
            Self::BoundsNotConverged { width, epsilon } => write!(
                f,
                "bounds width {width} exceeds the 2ε target (ε = {epsilon})"
            ),
            Self::ValueOutsideBounds {
                state,
                value,
                lo,
                hi,
            } => write!(
                f,
                "value {value} at state {state} leaves the certified interval [{lo}, {hi}]"
            ),
            Self::StrategyValueOutsideBounds { value, lo, hi } => write!(
                f,
                "exact strategy value {value} at the initial state leaves the certified \
                 interval [{lo}, {hi}]"
            ),
            Self::StrategyChainBlockTooLarge { block, limit } => write!(
                f,
                "strategy chain has a strongly connected block of {block} states \
                 (limit {limit})"
            ),
        }
    }
}

/// Reachability census of an artifact: which states the initial state can
/// reach, and which reachable states deadlock. The lists are reported in
/// full — not just counted — so a corrupted model can be diagnosed from the
/// report alone.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Census {
    /// Number of states reachable from the initial state.
    pub reachable: usize,
    /// Every state the initial state cannot reach, ascending.
    pub unreachable: Vec<usize>,
    /// Every reachable non-goal, non-sink state with no choices, ascending.
    pub dead_ends: Vec<usize>,
}

/// The outcome of an audit pass: all violations found, plus the census.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AuditReport {
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
    /// Reachability census (empty if the structural audit failed too early
    /// to traverse the model safely).
    pub census: Census,
}

impl AuditReport {
    /// Whether the audit found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean ({} reachable states)", self.census.reachable)?;
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            write!(f, "  census: {} reachable", self.census.reachable)?;
        }
        Ok(())
    }
}
