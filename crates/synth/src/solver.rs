use meda_core::{Action, RoutingMdp};

/// Options for the value-iteration solver.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverOptions {
    /// Convergence threshold on the max value change per sweep.
    pub epsilon: f64,
    /// Hard cap on value-iteration sweeps.
    pub max_iterations: usize,
    /// Optional per-state initial value seed for `Rmin` solves.
    ///
    /// Health only ever degrades, so expected completion times only ever
    /// increase — a previous solve's values are a pointwise *lower* bound
    /// on the new fixed point and make a sound monotone-from-below seed
    /// (warm start). Ignored by [`max_reach_probability`]: `v ≡ 1` is a
    /// fixed point of the `Pmax` operator (every failure branch self-
    /// loops), so `Pmax` iteration must start from 0 to converge to the
    /// *least* fixed point. Seeds of the wrong length are ignored.
    pub warm_start: Option<Vec<f64>>,
    /// Opt into parallel Jacobi sweeps for models with at least
    /// [`SolverOptions::parallel_threshold`] states. Below the threshold
    /// (and by default) the solver keeps serial Gauss–Seidel, which needs
    /// fewer sweeps and has no thread overhead.
    pub parallel: bool,
    /// Minimum state count before [`SolverOptions::parallel`] takes
    /// effect.
    pub parallel_threshold: usize,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            epsilon: 1e-9,
            max_iterations: 100_000,
            warm_start: None,
            parallel: false,
            parallel_threshold: 16_384,
        }
    }
}

/// The outcome of a value-iteration run: the per-state value vector and the
/// optimizing action per state (`None` for absorbing/hopeless states).
#[derive(Debug, Clone)]
pub struct SolverResult {
    /// Optimal value per state (probability, or expected cycles).
    pub values: Vec<f64>,
    /// Optimal memoryless deterministic choice per state.
    pub choice: Vec<Option<Action>>,
    /// Number of value-iteration sweeps performed.
    pub iterations: usize,
    /// Whether the run converged within `max_iterations`.
    pub converged: bool,
}

/// Runs value iteration with the per-state update `eval` until the sweep
/// delta drops below `epsilon`: serial Gauss–Seidel (in-place, each state
/// sees already-updated predecessors) or — when opted in and the model is
/// large enough — parallel Jacobi sweeps over `std::thread::scope`, where
/// each sweep reads the previous iterate.
fn iterate<F>(
    eval: F,
    options: &SolverOptions,
    values: &mut Vec<f64>,
    choice: &mut Vec<Option<Action>>,
) -> (usize, bool)
where
    F: Fn(usize, &[f64], &[Option<Action>]) -> (f64, Option<Action>) + Sync,
{
    let n = values.len();
    let parallel = options.parallel && n >= options.parallel_threshold;
    let mut iterations = 0;
    let mut converged = false;
    // Residual trajectory, in log2 buckets over pico-units (a residual of
    // 1e-9 lands near bucket 10, 1.0 near bucket 40). Observability only.
    let residuals = meda_telemetry::global().histogram("synth.solve.residual_p12");
    if parallel {
        let mut next_values = values.clone();
        let mut next_choice = choice.clone();
        while iterations < options.max_iterations {
            iterations += 1;
            let delta = jacobi_sweep(&eval, values, choice, &mut next_values, &mut next_choice);
            residuals.record(residual_p12(delta));
            std::mem::swap(values, &mut next_values);
            std::mem::swap(choice, &mut next_choice);
            if delta < options.epsilon {
                converged = true;
                break;
            }
        }
    } else {
        while iterations < options.max_iterations {
            iterations += 1;
            let mut delta = 0.0_f64;
            for i in 0..n {
                let (v, a) = eval(i, values, choice);
                // `v == values[i]` also covers matching infinities, where
                // the subtraction would produce NaN.
                if v != values[i] {
                    delta = delta.max((v - values[i]).abs());
                }
                values[i] = v;
                choice[i] = a;
            }
            residuals.record(residual_p12(delta));
            if delta < options.epsilon {
                converged = true;
                break;
            }
        }
    }
    (iterations, converged)
}

/// Scales a sweep residual into pico-units for the log2 trajectory
/// histogram; `∞` (an Rmin sweep touching an infinite state) saturates.
fn residual_p12(delta: f64) -> u64 {
    if delta <= 0.0 {
        0
    } else {
        (delta * 1e12) as u64
    }
}

/// One parallel Jacobi sweep: evaluates every state against the previous
/// iterate, writing into `next_*`, and returns the max value change.
fn jacobi_sweep<F>(
    eval: &F,
    values: &[f64],
    choice: &[Option<Action>],
    next_values: &mut [f64],
    next_choice: &mut [Option<Action>],
) -> f64
where
    F: Fn(usize, &[f64], &[Option<Action>]) -> (f64, Option<Action>) + Sync,
{
    let n = values.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(n.max(1));
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for (t, (values_chunk, choice_chunk)) in next_values
            .chunks_mut(chunk)
            .zip(next_choice.chunks_mut(chunk))
            .enumerate()
        {
            let start = t * chunk;
            handles.push(scope.spawn(move || {
                let mut delta = 0.0_f64;
                for (k, (v_out, c_out)) in values_chunk
                    .iter_mut()
                    .zip(choice_chunk.iter_mut())
                    .enumerate()
                {
                    let i = start + k;
                    let (v, a) = eval(i, values, choice);
                    if v != values[i] {
                        delta = delta.max((v - values[i]).abs());
                    }
                    *v_out = v;
                    *c_out = a;
                }
                delta
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("solver sweep thread panicked"))
            .fold(0.0, f64::max)
    })
}

/// Computes `Pmax[◇goal]` over the routing MDP by value iteration on the
/// flat CSR transition arrays (hazard avoidance is structural — see
/// [`meda_core::RoutingMdp`]).
///
/// Values start at 1 on goal states and 0 elsewhere; each sweep applies
/// `v(s) ← max_a Σ_s' p(s'|s,a) · v(s')`. The iteration is monotone from
/// below, so the fixed point is the least fixed point — the correct maximal
/// reachability probability. [`SolverOptions::warm_start`] is ignored here
/// (see its docs).
///
/// # Examples
///
/// ```
/// use meda_core::{ActionConfig, RoutingMdp, UniformField};
/// use meda_grid::Rect;
/// use meda_synth::{max_reach_probability, SolverOptions};
///
/// let mdp = RoutingMdp::build(
///     Rect::new(1, 1, 2, 2),
///     Rect::new(4, 4, 5, 5),
///     Rect::new(1, 1, 5, 5),
///     &UniformField::new(0.5),
///     &ActionConfig::cardinal_only(),
/// )?;
/// let result = max_reach_probability(&mdp, SolverOptions::default());
/// // Every move eventually succeeds, so the goal is reached almost surely.
/// assert!((result.values[mdp.init()] - 1.0).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn max_reach_probability(mdp: &RoutingMdp, options: SolverOptions) -> SolverResult {
    let telemetry = meda_telemetry::global();
    let _solve_span = telemetry.span("solve.pmax");
    let csr = mdp.csr();
    let n = mdp.len();
    let mut values: Vec<f64> = (0..n)
        .map(|i| if mdp.is_goal(i) { 1.0 } else { 0.0 })
        .collect();
    let mut choice: Vec<Option<Action>> = vec![None; n];

    let eval = |i: usize, values: &[f64], _choice: &[Option<Action>]| {
        if mdp.is_goal(i) {
            return (1.0, None);
        }
        let mut best = 0.0_f64;
        let mut best_action = None;
        let c_lo = csr.state_choice_start[i] as usize;
        let c_hi = csr.state_choice_start[i + 1] as usize;
        for c in c_lo..c_hi {
            let b_lo = csr.choice_branch_start[c] as usize;
            let b_hi = csr.choice_branch_start[c + 1] as usize;
            let mut v = 0.0;
            for b in b_lo..b_hi {
                v += csr.branch_prob[b] * values[csr.branch_target[b] as usize];
            }
            if v > best {
                best = v;
                best_action = Some(csr.choice_action[c]);
            }
        }
        (best, best_action)
    };

    let (iterations, converged) = iterate(eval, &options, &mut values, &mut choice);
    telemetry.add("synth.solve.pmax.count", 1);
    telemetry.add("synth.solve.pmax.iterations", iterations as u64);
    debug_certify(
        mdp,
        &values,
        meda_audit::ValueKind::Reachability,
        &options,
        converged,
    );
    SolverResult {
        values,
        choice,
        iterations,
        converged,
    }
}

/// Dev-build certification hook: every converged solve leaving this module
/// must pass `meda-audit`'s Bellman-residual certificate — one exact backup
/// of the claimed operator, independent of the solver's trajectory (serial,
/// warm-started, or parallel Jacobi alike).
///
/// Only the residual over finite states is asserted here: near the
/// `Pmax ≥ 1 − 1e-6` seeding threshold a heavily degraded field can make
/// the strict finite/infinite-consistency check disagree with the solver's
/// thresholded seeding by design, and the hook must never fail a sound
/// solve. The strict check runs in the audit CLI and the corpus tests,
/// where the fields are controlled.
#[allow(unused_variables)]
fn debug_certify(
    mdp: &RoutingMdp,
    values: &[f64],
    kind: meda_audit::ValueKind,
    options: &SolverOptions,
    converged: bool,
) {
    #[cfg(debug_assertions)]
    if converged {
        let artifact = meda_audit::ModelArtifact::from(mdp);
        let cert = meda_audit::bellman_certificate(&artifact, values, kind);
        // Gauss–Seidel's in-place sweep delta under-reports the true
        // (Jacobi) residual; give the certificate three orders of
        // magnitude of slack over the convergence threshold.
        let tolerance = (options.epsilon * 1e3).max(1e-6);
        debug_assert!(
            cert.max_residual <= tolerance && cert.out_of_range.is_empty(),
            "converged {kind:?} solve failed its Bellman certificate: \
             residual {} > {tolerance} (worst state {:?}, {} out of range)",
            cert.max_residual,
            cert.worst_state,
            cert.out_of_range.len(),
        );
    }
}

/// Computes `Rmin[◇goal]` (minimum expected number of cycles to the goal)
/// by value iteration on the stochastic-shortest-path Bellman operator
/// `v(s) ← 1 + min_a Σ_s' p(s'|s,a) · v(s')` over the CSR arrays.
///
/// States from which the goal is not reachable with probability 1 under any
/// strategy keep the value `∞` (the `(π, k) = (∅, ∞)` case of Algorithm 2).
/// An action with an `∞`-valued successor is skipped unless all actions are,
/// and a pure self-loop contributes `∞` directly.
///
/// Computes the required `Pmax` reachability internally; callers that
/// already hold it should use [`min_expected_cycles_with_reach`].
#[must_use]
pub fn min_expected_cycles(mdp: &RoutingMdp, options: SolverOptions) -> SolverResult {
    let reach = max_reach_probability(
        mdp,
        SolverOptions {
            warm_start: None,
            ..options.clone()
        },
    );
    min_expected_cycles_with_reach(mdp, options, &reach)
}

/// [`min_expected_cycles`] reusing an already-computed
/// [`max_reach_probability`] result for the `Pmax = 1` pre-seeding, so the
/// reachability fixed point is not recomputed.
///
/// If [`SolverOptions::warm_start`] is set, finite seed values initialize
/// the almost-surely-reaching states; since expected cycles only grow as
/// health degrades, the converged values must dominate the seed — asserted
/// in debug builds.
#[must_use]
pub fn min_expected_cycles_with_reach(
    mdp: &RoutingMdp,
    options: SolverOptions,
    reach: &SolverResult,
) -> SolverResult {
    let telemetry = meda_telemetry::global();
    let _solve_span = telemetry.span("solve.rmin");
    let csr = mdp.csr();
    let n = mdp.len();
    assert_eq!(reach.values.len(), n, "reach result from a different MDP");
    let seed = options.warm_start.as_deref().filter(|s| s.len() == n);
    if options.warm_start.is_some() {
        if seed.is_some() {
            telemetry.add("synth.solve.warm_start.used", 1);
        } else {
            telemetry.add("synth.solve.warm_start.rejected", 1);
        }
    }
    // Only states with Pmax = 1 admit finite expected time; seed the rest
    // with ∞ so the SSP iteration cannot cheat through them. The remainder
    // start from the warm-start seed (a lower bound — see
    // `SolverOptions::warm_start`) or 0.
    let mut values: Vec<f64> = (0..n)
        .map(|i| {
            if mdp.is_goal(i) {
                0.0
            } else if reach.values[i] < 1.0 - 1e-6 {
                f64::INFINITY
            } else {
                match seed {
                    Some(s) if s[i].is_finite() && s[i] > 0.0 => s[i],
                    _ => 0.0,
                }
            }
        })
        .collect();
    let mut choice: Vec<Option<Action>> = vec![None; n];

    let eval = |i: usize, values: &[f64], choice: &[Option<Action>]| {
        if mdp.is_goal(i) {
            return (0.0, None);
        }
        let current = values[i];
        if current.is_infinite() {
            return (current, None);
        }
        let mut best = f64::INFINITY;
        let mut best_action = None;
        let c_lo = csr.state_choice_start[i] as usize;
        let c_hi = csr.state_choice_start[i + 1] as usize;
        'choices: for c in c_lo..c_hi {
            // Solve the one-step equation with the self-loop factored
            // out: v = (1 + Σ_{j≠i} p_j v_j) / (1 − p_self). This makes
            // convergence exact for stay-in-place failure branches.
            let mut p_self = 0.0;
            let mut rest = 0.0;
            let b_lo = csr.choice_branch_start[c] as usize;
            let b_hi = csr.choice_branch_start[c + 1] as usize;
            for b in b_lo..b_hi {
                let j = csr.branch_target[b] as usize;
                let p = csr.branch_prob[b];
                if j == i {
                    p_self += p;
                } else if values[j].is_infinite() {
                    continue 'choices;
                } else {
                    rest += p * values[j];
                }
            }
            if p_self >= 1.0 - 1e-12 {
                continue;
            }
            let v = (1.0 + rest) / (1.0 - p_self);
            if v < best {
                best = v;
                best_action = Some(csr.choice_action[c]);
            }
        }
        if best.is_finite() {
            (best, best_action)
        } else {
            (current, choice[i])
        }
    };

    let (iterations, converged) = iterate(eval, &options, &mut values, &mut choice);
    telemetry.add("synth.solve.rmin.count", 1);
    telemetry.add("synth.solve.rmin.iterations", iterations as u64);

    if let Some(s) = seed {
        // Degradation monotonicity makes an honestly-obtained seed an
        // *approximate* lower bound on the new fixed point — approximate
        // because a degraded cell can shift outcome probability onto a
        // partial-move landing state with a better continuation, lowering
        // Rmin locally by sub-cycle amounts. Convergence never depends on
        // the seed being a bound (the shortest-path fixed point is
        // unique), so only gross mismatches — a seed from the wrong
        // geometry or query — are rejected here.
        debug_assert!(
            (0..n).all(|i| {
                !values[i].is_finite()
                    || !s[i].is_finite()
                    || values[i] >= s[i] - (2.0 + 0.05 * s[i])
            }),
            "warm-start seed was grossly above the Rmin fixed point"
        );
    }
    debug_certify(
        mdp,
        &values,
        meda_audit::ValueKind::ExpectedCycles,
        &options,
        converged,
    );

    SolverResult {
        values,
        choice,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_core::{ActionConfig, RawField, UniformField};
    use meda_grid::{Cell, ChipDims, Grid, Rect};

    fn line_mdp(force: f64) -> RoutingMdp {
        // 1×1 droplet on a 1-row corridor of length 5.
        RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(5, 1, 5, 1),
            Rect::new(1, 1, 5, 1),
            &UniformField::new(force),
            &ActionConfig::cardinal_only(),
        )
        .unwrap()
    }

    fn area_mdp(force: f64) -> RoutingMdp {
        RoutingMdp::build(
            Rect::new(1, 1, 2, 2),
            Rect::new(9, 9, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::new(force),
            &ActionConfig::cardinal_only(),
        )
        .unwrap()
    }

    #[test]
    fn pristine_corridor_reaches_in_distance_steps() {
        let mdp = line_mdp(1.0);
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        assert!((r.values[mdp.init()] - 4.0).abs() < 1e-6);
        assert!(r.converged);
    }

    #[test]
    fn expected_cycles_scale_inversely_with_force() {
        // Per-step success probability p ⇒ expected steps per cell = 1/p.
        let mdp = line_mdp(0.5);
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        assert!((r.values[mdp.init()] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn reach_probability_is_one_with_positive_force() {
        let mdp = line_mdp(0.1);
        let r = max_reach_probability(&mdp, SolverOptions::default());
        assert!((r.values[mdp.init()] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn blocked_corridor_gives_zero_probability_and_infinite_cycles() {
        // Kill the middle cell of the corridor: the droplet can never pass.
        let dims = ChipDims::new(5, 1);
        let mut f = Grid::new(dims, 1.0);
        f[Cell::new(3, 1)] = 0.0;
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(5, 1, 5, 1),
            Rect::new(1, 1, 5, 1),
            &RawField::new(f),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let p = max_reach_probability(&mdp, SolverOptions::default());
        assert!(p.values[mdp.init()] < 1e-9);
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        assert!(r.values[mdp.init()].is_infinite());
        assert_eq!(r.choice[mdp.init()], None);
    }

    #[test]
    fn detour_chosen_around_degraded_column() {
        // 2D field with a weak column: the optimal strategy routes around
        // it when a healthy detour exists.
        let dims = ChipDims::new(7, 5);
        let mut f = Grid::new(dims, 1.0);
        for y in 1..=4 {
            f[Cell::new(4, y)] = 0.05; // weak wall with a gap at y = 5
        }
        let field = RawField::new(f);
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(7, 1, 7, 1),
            Rect::new(1, 1, 7, 5),
            &field,
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        // Straight through: ~2·(1/0.05) = 40+ cycles. Detour via row 5:
        // 6 east + 8 vertical = 14 cycles.
        let v = r.values[mdp.init()];
        assert!(v < 20.0, "expected detour cost < 20, got {v}");
        // And the strategy's first move must not push into the wall.
        let a = r.choice[mdp.init()].unwrap();
        assert_ne!(a, Action::Move(meda_core::Dir::W));
    }

    #[test]
    fn goal_state_has_zero_cost_probability_one() {
        let mdp = line_mdp(0.9);
        let goal_idx = mdp.state_index(Rect::new(5, 1, 5, 1)).unwrap();
        let p = max_reach_probability(&mdp, SolverOptions::default());
        let r = min_expected_cycles(&mdp, SolverOptions::default());
        assert_eq!(p.values[goal_idx], 1.0);
        assert_eq!(r.values[goal_idx], 0.0);
    }

    #[test]
    fn iteration_cap_reported_as_unconverged() {
        let mdp = line_mdp(0.5);
        let r = min_expected_cycles(
            &mdp,
            SolverOptions {
                epsilon: 0.0,
                max_iterations: 2,
                ..SolverOptions::default()
            },
        );
        assert!(!r.converged);
        assert_eq!(r.iterations, 2);
    }

    #[test]
    fn with_reach_matches_recomputed_reach() {
        let mdp = area_mdp(0.6);
        let opts = SolverOptions::default();
        let reach = max_reach_probability(&mdp, opts.clone());
        let via = min_expected_cycles_with_reach(&mdp, opts.clone(), &reach);
        let direct = min_expected_cycles(&mdp, opts);
        assert_eq!(via.values, direct.values);
        assert_eq!(via.choice, direct.choice);
    }

    #[test]
    fn warm_start_reaches_same_fixed_point_in_fewer_sweeps() {
        // Solve on a healthy field, then on a degraded one, cold vs seeded
        // with the healthy values (a valid lower bound: health only
        // degrades, values only grow).
        let healthy = min_expected_cycles(&area_mdp(1.0), SolverOptions::default());
        let degraded = area_mdp(0.5);
        let cold = min_expected_cycles(&degraded, SolverOptions::default());
        let warm = min_expected_cycles(
            &degraded,
            SolverOptions {
                warm_start: Some(healthy.values),
                ..SolverOptions::default()
            },
        );
        assert!(cold.converged && warm.converged);
        for (c, w) in cold.values.iter().zip(&warm.values) {
            assert!((c - w).abs() < 1e-9, "cold {c} vs warm {w}");
        }
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} !<= cold {}",
            warm.iterations,
            cold.iterations
        );
        // Seeding with the exact fixed point converges immediately.
        let exact = min_expected_cycles(
            &degraded,
            SolverOptions {
                warm_start: Some(cold.values.clone()),
                ..SolverOptions::default()
            },
        );
        assert!(exact.iterations < cold.iterations);
        for (c, e) in cold.values.iter().zip(&exact.values) {
            assert!((c - e).abs() < 1e-9);
        }
    }

    #[test]
    fn warm_start_is_ignored_by_pmax() {
        // Seeding Pmax from above would freeze it at a spurious fixed
        // point (v ≡ 1 through self-loops); the solver must ignore it.
        let dims = ChipDims::new(5, 1);
        let mut f = Grid::new(dims, 1.0);
        f[Cell::new(3, 1)] = 0.0;
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 1, 1),
            Rect::new(5, 1, 5, 1),
            Rect::new(1, 1, 5, 1),
            &RawField::new(f),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let seeded = max_reach_probability(
            &mdp,
            SolverOptions {
                warm_start: Some(vec![1.0; mdp.len()]),
                ..SolverOptions::default()
            },
        );
        assert!(seeded.values[mdp.init()] < 1e-9);
    }

    #[test]
    fn parallel_jacobi_matches_serial_gauss_seidel() {
        let mdp = area_mdp(0.7);
        let serial = min_expected_cycles(&mdp, SolverOptions::default());
        let parallel = min_expected_cycles(
            &mdp,
            SolverOptions {
                parallel: true,
                parallel_threshold: 0, // force the Jacobi path
                ..SolverOptions::default()
            },
        );
        assert!(serial.converged && parallel.converged);
        for (s, p) in serial.values.iter().zip(&parallel.values) {
            assert!((s - p).abs() < 1e-7, "serial {s} vs parallel {p}");
        }
        let pr = max_reach_probability(
            &mdp,
            SolverOptions {
                parallel: true,
                parallel_threshold: 0,
                ..SolverOptions::default()
            },
        );
        let sr = max_reach_probability(&mdp, SolverOptions::default());
        for (s, p) in sr.values.iter().zip(&pr.values) {
            assert!((s - p).abs() < 1e-7);
        }
    }

    #[test]
    fn below_threshold_stays_serial() {
        // With the default threshold a small model must not pay for
        // threads: same result, same (Gauss–Seidel) iteration count.
        let mdp = line_mdp(0.5);
        let serial = min_expected_cycles(&mdp, SolverOptions::default());
        let gated = min_expected_cycles(
            &mdp,
            SolverOptions {
                parallel: true,
                ..SolverOptions::default()
            },
        );
        assert_eq!(serial.iterations, gated.iterations);
        assert_eq!(serial.values, gated.values);
    }
}
