//! Wear-distribution analysis: how evenly a router spreads actuation
//! across the chip. Uneven wear is what kills biochips early (the
//! "excessive actuation of the same set of MCs" of Section VII-C), so the
//! spread — not just the total — is the lifetime-relevant statistic.

use meda_grid::Cell;

use crate::Biochip;

/// Summary statistics of a chip's actuation-count distribution **N**.
#[derive(Debug, Clone, PartialEq)]
pub struct WearStats {
    /// Total actuations across the chip.
    pub total: u64,
    /// Number of MCs actuated at least once.
    pub touched: usize,
    /// Maximum per-MC actuation count.
    pub max: u64,
    /// Mean actuations over *touched* MCs.
    pub mean_touched: f64,
    /// Gini coefficient of the per-MC actuation counts over the whole chip
    /// (0 = perfectly even wear, → 1 = all wear on one MC).
    pub gini: f64,
    /// The most-worn cells, descending, up to 8.
    pub hottest: Vec<(Cell, u64)>,
}

/// Computes wear statistics from a chip's actuation counts.
///
/// # Examples
///
/// ```
/// use meda_grid::{ChipDims, Grid, Rect};
/// use meda_sim::{analysis, Biochip, DegradationConfig};
/// use meda_rng::SeedableRng;
///
/// let mut rng = meda_rng::StdRng::seed_from_u64(1);
/// let mut chip = Biochip::generate(ChipDims::new(8, 8), &DegradationConfig::pristine(), &mut rng);
/// let mut pattern = Grid::new(chip.dims(), false);
/// pattern.fill_rect(Rect::new(1, 1, 2, 2), true);
/// chip.apply_actuation(&pattern);
///
/// let stats = analysis::wear_stats(&chip);
/// assert_eq!(stats.total, 4);
/// assert_eq!(stats.touched, 4);
/// assert!(stats.gini > 0.9, "4 of 64 cells carry all the wear");
/// ```
#[must_use]
pub fn wear_stats(chip: &Biochip) -> WearStats {
    let dims = chip.dims();
    let mut counts: Vec<(Cell, u64)> = dims.cells().map(|c| (c, chip.actuation_count(c))).collect();
    let total: u64 = counts.iter().map(|(_, n)| n).sum();
    let touched = counts.iter().filter(|(_, n)| *n > 0).count();
    let max = counts.iter().map(|(_, n)| *n).max().unwrap_or(0);
    let mean_touched = if touched == 0 {
        0.0
    } else {
        total as f64 / touched as f64
    };

    // Gini via the sorted-rank formula.
    let gini = if total == 0 {
        0.0
    } else {
        let mut values: Vec<u64> = counts.iter().map(|(_, n)| *n).collect();
        values.sort_unstable();
        let n = values.len() as f64;
        let weighted: f64 = values
            .iter()
            .enumerate()
            .map(|(rank, &v)| (rank as f64 + 1.0) * v as f64)
            .sum();
        (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
    };

    counts.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    counts.truncate(8);
    counts.retain(|(_, n)| *n > 0);

    WearStats {
        total,
        touched,
        max,
        mean_touched,
        gini,
        hottest: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegradationConfig;
    use meda_grid::{ChipDims, Grid, Rect};
    use meda_rng::SeedableRng;
    use meda_rng::StdRng;

    fn chip_with(patterns: &[(Rect, u32)]) -> Biochip {
        let dims = ChipDims::new(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
        for (rect, reps) in patterns {
            let mut p = Grid::new(dims, false);
            p.fill_rect(*rect, true);
            for _ in 0..*reps {
                chip.apply_actuation(&p);
            }
        }
        chip
    }

    #[test]
    fn untouched_chip_has_zero_wear() {
        let stats = wear_stats(&chip_with(&[]));
        assert_eq!(stats.total, 0);
        assert_eq!(stats.touched, 0);
        assert_eq!(stats.gini, 0.0);
        assert!(stats.hottest.is_empty());
    }

    #[test]
    fn uniform_wear_has_zero_gini() {
        let stats = wear_stats(&chip_with(&[(Rect::new(1, 1, 10, 10), 5)]));
        assert_eq!(stats.total, 500);
        assert_eq!(stats.touched, 100);
        assert!(stats.gini.abs() < 1e-9);
        assert_eq!(stats.mean_touched, 5.0);
    }

    #[test]
    fn concentrated_wear_has_high_gini() {
        let stats = wear_stats(&chip_with(&[(Rect::new(5, 5, 5, 5), 100)]));
        assert_eq!(stats.touched, 1);
        assert_eq!(stats.max, 100);
        assert!(stats.gini > 0.98, "gini = {}", stats.gini);
        assert_eq!(stats.hottest[0], (meda_grid::Cell::new(5, 5), 100));
    }

    #[test]
    fn gini_orders_spreading_correctly() {
        let narrow = wear_stats(&chip_with(&[(Rect::new(1, 1, 2, 2), 25)]));
        let wide = wear_stats(&chip_with(&[(Rect::new(1, 1, 5, 5), 4)]));
        assert_eq!(narrow.total, wide.total);
        assert!(
            narrow.gini > wide.gini,
            "narrow {} vs wide {}",
            narrow.gini,
            wide.gini
        );
    }

    #[test]
    fn hottest_is_sorted_descending_and_capped() {
        let stats = wear_stats(&chip_with(&[
            (Rect::new(1, 1, 3, 3), 2),
            (Rect::new(1, 1, 1, 1), 10),
        ]));
        assert!(stats.hottest.len() <= 8);
        assert!(stats.hottest.windows(2).all(|w| w[0].1 >= w[1].1));
        assert_eq!(stats.hottest[0].1, 12);
    }
}
