use meda_rng::SeedableRng;
use meda_rng::StdRng;

use meda_bioassay::BioassayPlan;
use meda_grid::ChipDims;

use crate::{BioassayRunner, Biochip, DegradationConfig, Router, RunConfig};

/// Aggregate statistics of the Fig. 16 repeated-execution trials.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialStats {
    /// Mean total cycles per trial.
    pub mean_cycles: f64,
    /// Standard deviation of total cycles across trials.
    pub sd_cycles: f64,
    /// Number of trials.
    pub trials: u32,
    /// Fraction of trials that reached the target number of successful
    /// executions before exhausting the cycle budget.
    pub completion_rate: f64,
    /// Mean number of successful executions per trial (≤ the target).
    pub mean_successes: f64,
}

/// The Fig. 16 experiment: each *trial* repeatedly executes the bioassay on
/// the same (fault-injected) biochip until `target_successes` executions
/// succeed or the cumulative cycle count exceeds `k_max` (the paper uses 5
/// and 1,000). Reports the mean and standard deviation of total cycles over
/// `trials` trials, each on a freshly generated chip and router.
///
/// # Panics
///
/// Panics if `trials == 0` or `target_successes == 0`.
#[allow(clippy::too_many_arguments)]
pub fn fault_trials<R: Router>(
    plan: &BioassayPlan,
    dims: ChipDims,
    degradation: &DegradationConfig,
    make_router: impl Fn() -> R + Sync,
    trials: u32,
    target_successes: u32,
    k_max: u64,
    seed: u64,
) -> TrialStats {
    assert!(
        trials > 0 && target_successes > 0,
        "need at least one trial"
    );

    // Trials are independent — per-trial chip, router, and seeded RNG — so
    // they fan out across the available cores; seeding keeps the result
    // identical to a serial run.
    let run_trial = |trial: u32| -> (f64, u32) {
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(trial).wrapping_mul(0x517c_c1b7)));
        let mut chip = Biochip::generate(dims, degradation, &mut rng);
        let mut router = make_router();
        let mut spent = 0u64;
        let mut successes = 0u32;

        while successes < target_successes && spent < k_max {
            let runner = BioassayRunner::new(RunConfig {
                k_max: k_max - spent,
                record_actuation: false,
                sensed_feedback: false,
            });
            let outcome = runner.run(plan, &mut chip, &mut router, &mut rng);
            spent += outcome.cycles;
            if outcome.is_success() {
                successes += 1;
            } else {
                // NoRoute or budget exhausted: the chip is no longer usable.
                if outcome.cycles == 0 {
                    // Avoid spinning on an instantly-infeasible job.
                    spent = k_max;
                }
                break;
            }
        }
        (spent as f64, successes)
    };

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let chunk = (trials as usize).div_ceil(threads).max(1);
    let ids: Vec<u32> = (0..trials).collect();
    let results: Vec<(f64, u32)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .chunks(chunk)
            .map(|batch| {
                let run_trial = &run_trial;
                scope.spawn(move || batch.iter().map(|&t| run_trial(t)).collect::<Vec<_>>())
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("trial thread panicked"))
            .collect()
    });

    let mut totals = Vec::with_capacity(trials as usize);
    let mut completions = 0u32;
    let mut successes_sum = 0u32;
    for (spent, successes) in results {
        if successes >= target_successes {
            completions += 1;
        }
        successes_sum += successes;
        totals.push(spent);
    }

    let n = totals.len() as f64;
    let mean = totals.iter().sum::<f64>() / n;
    let var = totals.iter().map(|k| (k - mean).powi(2)).sum::<f64>() / n;
    TrialStats {
        mean_cycles: mean,
        sd_cycles: var.sqrt(),
        trials,
        completion_rate: f64::from(completions) / n,
        mean_successes: f64::from(successes_sum) / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdaptiveConfig, AdaptiveRouter, BaselineRouter, FaultMode};
    use meda_bioassay::{benchmarks, RjHelper};

    fn plan() -> BioassayPlan {
        RjHelper::new(ChipDims::PAPER)
            .plan(&benchmarks::master_mix())
            .unwrap()
    }

    #[test]
    fn pristine_trials_always_complete() {
        let stats = fault_trials(
            &plan(),
            ChipDims::PAPER,
            &DegradationConfig::pristine(),
            BaselineRouter::new,
            3,
            2,
            1_000,
            1,
        );
        assert_eq!(stats.completion_rate, 1.0);
        assert_eq!(stats.mean_successes, 2.0);
        assert!(stats.mean_cycles > 0.0);
    }

    #[test]
    fn clustered_faults_hurt_the_baseline() {
        let config = DegradationConfig::paper_with_faults(FaultMode::Clustered, 0.05);
        let baseline = fault_trials(
            &plan(),
            ChipDims::PAPER,
            &config,
            BaselineRouter::new,
            4,
            2,
            1_000,
            11,
        );
        let adaptive = fault_trials(
            &plan(),
            ChipDims::PAPER,
            &config,
            || AdaptiveRouter::new(AdaptiveConfig::paper()),
            4,
            2,
            1_000,
            11,
        );
        assert!(
            adaptive.completion_rate >= baseline.completion_rate,
            "adaptive {adaptive:?} vs baseline {baseline:?}"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let stats = fault_trials(
            &plan(),
            ChipDims::PAPER,
            &DegradationConfig::paper(),
            BaselineRouter::new,
            5,
            1,
            500,
            3,
        );
        assert_eq!(stats.trials, 5);
        assert!(stats.sd_cycles >= 0.0);
        assert!(stats.completion_rate >= 0.0 && stats.completion_rate <= 1.0);
    }
}
