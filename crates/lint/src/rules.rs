//! The lint rules and their scoping policy.

use crate::scan::ScannedFile;

/// The repo invariants `meda-lint` enforces — things clippy cannot express
/// because they are policy, not language misuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No `.unwrap()` / `.expect(` in non-test library code. Panics in the
    /// library layer take down whole simulation campaigns; errors must
    /// propagate (or carry a documented allowlist entry arguing why the
    /// invariant cannot fail).
    NoUnwrap,
    /// No `HashMap` / `HashSet` in code whose iteration order can feed
    /// simulation or export results: `std`'s `RandomState` hashing makes
    /// iteration order differ between runs, silently breaking the
    /// workspace's bit-identical reproducibility guarantee. Use
    /// `BTreeMap` / `BTreeSet` or sort before iterating.
    HashOrder,
    /// No `Instant` / `SystemTime` outside `perf.rs` and the bench
    /// harness: wall-clock readings must never influence simulation
    /// outputs, only observability metrics declared in the allowlist.
    WallClock,
    /// No `==` / `!=` against floating-point literals: exact comparison is
    /// almost always a masked tolerance bug. Sentinel comparisons (e.g. a
    /// degradation level of exactly `0.0` meaning "dead cell") must be
    /// declared in the allowlist.
    FloatEq,
    /// Every crate root (`lib.rs` / `main.rs` / `src/bin/*.rs`) carries
    /// `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// No bare `as` cast to a narrower numeric type (`f32`, or any
    /// integer of 32 bits or less) in the numeric-kernel hot-path set: a
    /// silently truncating or precision-dropping cast inside a solver or
    /// certification loop corrupts values instead of failing. Deliberate
    /// narrowing (the certified `f32` fast path, the `u32` state address
    /// space) must carry an allowlist entry citing the invariant that
    /// makes it lossless.
    LossyCast,
    /// Bare slice indexing (`xs[i]`) in the numeric-kernel hot-path set:
    /// every kernel file whose unchecked indexing is justified (CSR
    /// offsets validated by `audit_model`, construction invariants) must
    /// appear in the allowlist with the argument spelled out — a new
    /// kernel file starts from checked access.
    UncheckedIndex,
}

impl Rule {
    /// Stable kebab-case rule name used in findings and the allowlist.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::NoUnwrap => "no-unwrap",
            Self::HashOrder => "hash-order",
            Self::WallClock => "wall-clock",
            Self::FloatEq => "float-eq",
            Self::ForbidUnsafe => "forbid-unsafe",
            Self::LossyCast => "lossy-cast",
            Self::UncheckedIndex => "unchecked-index",
        }
    }

    /// All rules, for reporting.
    pub const ALL: [Rule; 7] = [
        Self::NoUnwrap,
        Self::HashOrder,
        Self::WallClock,
        Self::FloatEq,
        Self::ForbidUnsafe,
        Self::LossyCast,
        Self::UncheckedIndex,
    ];
}

/// What kind of compilation target a file belongs to — rules scope on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Library code under some `src/` (excluding `src/bin/`): all rules.
    Lib,
    /// Binary targets (`src/main.rs`, `src/bin/*.rs`): determinism rules
    /// apply, panic rules don't (a CLI may die loudly).
    Bin,
    /// Integration tests, examples, benches: exempt from everything except
    /// the crate-root unsafety check (which never applies here anyway).
    TestLike,
}

/// Classifies a workspace-relative path (forward slashes).
#[must_use]
pub fn classify(path: &str) -> Scope {
    let in_dir = |d: &str| path.starts_with(&format!("{d}/")) || path.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("examples") || in_dir("benches") {
        return Scope::TestLike;
    }
    if path.contains("/src/bin/") || path == "src/main.rs" || path.ends_with("/src/main.rs") {
        return Scope::Bin;
    }
    Scope::Lib
}

/// One rule finding at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// The offending raw source line, trimmed — allowlist patterns match
    /// against this, so they can cite e.g. an `expect` message verbatim.
    pub excerpt: String,
}

/// Runs every applicable rule over one scanned file. Rules match on the
/// sanitized text (so literals and comments can't trip or spoof them);
/// excerpts come from the raw source.
#[must_use]
pub fn check_file(path: &str, scope: Scope, scanned: &ScannedFile, raw: &str) -> Vec<Finding> {
    let raw_lines: Vec<&str> = raw.lines().collect();
    let mut findings = Vec::new();
    // The bench harness measures wall time and deliberately carries a
    // HashMap baseline for its library-vs-hash-map comparison; `perf.rs`
    // is the declared home of wall-clock instrumentation (DESIGN.md §7).
    let bench_exempt = path.starts_with("crates/bench/");
    let perf_exempt = path.ends_with("/perf.rs");
    let mut push = |rule: Rule, line: usize| {
        findings.push(Finding {
            file: path.to_string(),
            line: line + 1,
            rule,
            excerpt: raw_lines.get(line).map_or("", |l| l.trim()).to_string(),
        });
    };
    for (n, text, in_test) in scanned.lines() {
        if in_test {
            continue;
        }
        if scope == Scope::Lib && (contains_call(text, ".unwrap") || text.contains(".expect(")) {
            push(Rule::NoUnwrap, n);
        }
        if scope != Scope::TestLike
            && !bench_exempt
            && (contains_word(text, "HashMap") || contains_word(text, "HashSet"))
        {
            push(Rule::HashOrder, n);
        }
        if scope != Scope::TestLike
            && !bench_exempt
            && !perf_exempt
            && (contains_word(text, "Instant") || contains_word(text, "SystemTime"))
        {
            push(Rule::WallClock, n);
        }
        if scope == Scope::Lib && has_float_comparison(text) {
            push(Rule::FloatEq, n);
        }
        if is_numeric_kernel(path) && has_lossy_cast(text) {
            push(Rule::LossyCast, n);
        }
        if is_numeric_kernel(path) && has_bare_index(text) {
            push(Rule::UncheckedIndex, n);
        }
    }
    if is_crate_root(path) && !scanned.sanitized.contains("#![forbid(unsafe_code)]") {
        findings.push(Finding {
            file: path.to_string(),
            line: 1,
            rule: Rule::ForbidUnsafe,
            excerpt: "missing #![forbid(unsafe_code)]".to_string(),
        });
    }
    findings
}

/// The numeric-kernel hot-path set: the solver and certification inner
/// loops where `as` casts and bare indexing are performance-deliberate.
/// Files listed here are subject to [`Rule::LossyCast`] and
/// [`Rule::UncheckedIndex`]; their accepted sites must be argued in
/// `lint-allow.toml`.
fn is_numeric_kernel(path: &str) -> bool {
    matches!(
        path,
        "crates/synth/src/solver.rs"
            | "crates/core/src/mdp.rs"
            | "crates/core/src/mec.rs"
            | "crates/audit/src/bounds.rs"
            | "crates/audit/src/eval.rs"
            | "crates/audit/src/certify.rs"
    )
}

/// Numeric types an `as` cast can narrow into on this workspace's 64-bit
/// value paths (`f64` values, `usize` indices): anything 32 bits or less.
const NARROWING_TARGETS: [&str; 7] = ["f32", "u32", "i32", "u16", "i16", "u8", "i8"];

/// Detects ` as <narrow>` casts. Lexical: the source type is unknowable
/// here, so widening casts spelled with a narrow target (e.g. `u8 as u32`
/// — which reads as a cast *to* `u32` and is fine) still need an allowlist
/// entry; in kernel code that trade is deliberate.
fn has_lossy_cast(text: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(" as ") {
        let after = &text[from + pos + 4..];
        let target: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if NARROWING_TARGETS.contains(&target.as_str()) {
            return true;
        }
        from += pos + 4;
    }
    false
}

/// Detects bare indexing: `[` immediately preceded by an identifier
/// character, `)`, or `]` (so `xs[i]`, `f(x)[0]`, `m[r][c]` match while
/// attributes `#[...]`, macros `vec![...]`, and slice types `&[T]` don't).
/// Range slicing (`&xs[a..b]`) matches too — it panics just the same.
fn has_bare_index(text: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut prev = ' ';
    for c in text.chars() {
        if c == '[' && (ident(prev) || prev == ')' || prev == ']') {
            return true;
        }
        prev = c;
    }
    false
}

/// Whether `path` is a crate root that must forbid unsafe code.
fn is_crate_root(path: &str) -> bool {
    path.ends_with("/src/lib.rs")
        || path == "src/lib.rs"
        || path.ends_with("/src/main.rs")
        || path == "src/main.rs"
        || path.contains("/src/bin/")
}

/// `needle` present as a method call: followed by `(` (spaces allowed).
fn contains_call(text: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(needle) {
        let after = &text[from + pos + needle.len()..];
        if after.trim_start().starts_with('(') {
            return true;
        }
        from += pos + needle.len();
    }
    false
}

/// `word` present with non-identifier characters (or boundaries) around it.
fn contains_word(text: &str, word: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let bytes = text.as_bytes();
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let before_ok = start == 0 || !ident(bytes[start - 1] as char);
        let after_ok = end == text.len() || !ident(bytes[end] as char);
        if before_ok && after_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Detects `==` / `!=` where either operand is a floating-point literal or
/// an `f64::` / `f32::` associated constant. Variable-vs-variable float
/// comparisons are invisible to a lexical pass and out of scope.
fn has_float_comparison(text: &str) -> bool {
    let cs: Vec<char> = text.chars().collect();
    for i in 0..cs.len().saturating_sub(1) {
        let two: String = cs[i..i + 2].iter().collect();
        if two != "==" && two != "!=" {
            continue;
        }
        // Skip `<=`, `>=`, `===` (n/a), and the tail of a prior `==`.
        if i > 0 && matches!(cs[i - 1], '<' | '>' | '=' | '!') {
            continue;
        }
        if cs.get(i + 2) == Some(&'=') {
            continue;
        }
        let left = token_before(&cs, i);
        let right = token_after(&cs, i + 2);
        if is_float_token(&left) || is_float_token(&right) {
            return true;
        }
    }
    false
}

fn token_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | ':')
}

fn token_before(cs: &[char], op: usize) -> String {
    let mut j = op;
    while j > 0 && cs[j - 1] == ' ' {
        j -= 1;
    }
    let end = j;
    loop {
        if j > 0 && token_char(cs[j - 1]) {
            j -= 1;
        } else if j > 1 && matches!(cs[j - 1], '-' | '+') && matches!(cs[j - 2], 'e' | 'E') {
            // Exponent sign inside a literal like `1e-6`.
            j -= 2;
        } else {
            break;
        }
    }
    cs[j..end].iter().collect()
}

fn token_after(cs: &[char], mut j: usize) -> String {
    while j < cs.len() && cs[j] == ' ' {
        j += 1;
    }
    let mut out = String::new();
    if cs.get(j) == Some(&'-') {
        out.push('-');
        j += 1;
    }
    while j < cs.len() && token_char(cs[j]) {
        out.push(cs[j]);
        j += 1;
    }
    out
}

/// Whether a token is a float literal (`0.0`, `1.`, `1e-6`, `2.5f64`) or
/// an `f64::` / `f32::` associated constant.
fn is_float_token(tok: &str) -> bool {
    let tok = tok.strip_prefix('-').unwrap_or(tok);
    if tok.starts_with("f64::") || tok.starts_with("f32::") {
        return true;
    }
    let body = tok
        .strip_suffix("f64")
        .or_else(|| tok.strip_suffix("f32"))
        .unwrap_or(tok);
    let mut chars = body.chars();
    if !chars.next().is_some_and(|c| c.is_ascii_digit()) {
        return false;
    }
    let rest: String = body.chars().skip(1).collect();
    let has_marker = rest.contains('.') || rest.contains('e') || rest.contains('E');
    let digits_only_otherwise = body
        .chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '_' | '-' | '+'));
    digits_only_otherwise && (has_marker || body != tok)
}
