use std::fmt;

use crate::{MicroOp, MoType};

/// Identifier of a microfluidic operation within one sequencing graph.
pub type MoId = usize;

/// A bioassay sequencing graph: a DAG of microfluidic operations with
/// planner-assigned module center locations (Section VI-A, Fig. 12).
///
/// The builder methods ([`dispense`](Self::dispense), [`mix`](Self::mix),
/// …) append operations and wire predecessor edges;
/// [`validate`](Self::validate) checks Table III arities and acyclicity
/// (guaranteed by construction, re-checked defensively).
///
/// # Examples
///
/// ```
/// use meda_bioassay::{MoType, SequencingGraph};
///
/// let mut sg = SequencingGraph::new("demo");
/// let a = sg.dispense((17.5, 2.5), (4, 4));
/// let b = sg.dispense((17.5, 28.5), (4, 4));
/// let m = sg.mix(&[a, b], (10.5, 15.5));
/// sg.output(m, (57.5, 15.5));
/// assert_eq!(sg.len(), 4);
/// assert!(sg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SequencingGraph {
    name: String,
    ops: Vec<MicroOp>,
}

/// Error from sequencing-graph validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// Operation `id` has the wrong number of predecessors for its type.
    BadArity {
        /// The offending operation.
        id: MoId,
        /// Its type.
        op: MoType,
        /// Predecessors found.
        found: usize,
    },
    /// Operation `id` references a predecessor that does not precede it.
    ForwardEdge {
        /// The offending operation.
        id: MoId,
        /// The out-of-order predecessor.
        pre: MoId,
    },
    /// Operation `id` uses a consumed droplet: predecessor `pre`'s outputs
    /// are over-subscribed.
    OverConsumed {
        /// The over-subscribed predecessor.
        pre: MoId,
    },
    /// Operation `id` has the wrong number of center locations.
    BadLocations {
        /// The offending operation.
        id: MoId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadArity { id, op, found } => write!(
                f,
                "operation M{id} ({op}) expects {} predecessors, found {found}",
                op.inputs()
            ),
            Self::ForwardEdge { id, pre } => {
                write!(f, "operation M{id} references later operation M{pre}")
            }
            Self::OverConsumed { pre } => {
                write!(
                    f,
                    "outputs of operation M{pre} are consumed more than produced"
                )
            }
            Self::BadLocations { id } => {
                write!(f, "operation M{id} has the wrong number of locations")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl SequencingGraph {
    /// Creates an empty sequencing graph.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// The bioassay name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the graph has no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn op(&self, id: MoId) -> &MicroOp {
        &self.ops[id]
    }

    /// Iterates over `(id, op)` pairs in topological (insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (MoId, &MicroOp)> {
        self.ops.iter().enumerate()
    }

    /// Appends a raw operation (builder methods are preferred).
    pub fn push(&mut self, op: MicroOp) -> MoId {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Appends a dispense of a `size.0 × size.1` droplet centered at `loc`.
    pub fn dispense(&mut self, loc: (f64, f64), size: (u32, u32)) -> MoId {
        self.push(MicroOp {
            op: MoType::Dispense,
            pre: vec![],
            locs: vec![loc],
            dispense_size: Some(size),
        })
    }

    /// Appends a mix of two predecessor droplets at `loc`.
    pub fn mix(&mut self, pre: &[MoId; 2], loc: (f64, f64)) -> MoId {
        self.push(MicroOp {
            op: MoType::Mix,
            pre: pre.to_vec(),
            locs: vec![loc],
            dispense_size: None,
        })
    }

    /// Appends a split of `pre` into droplets at `loc0` and `loc1`.
    pub fn split(&mut self, pre: MoId, loc0: (f64, f64), loc1: (f64, f64)) -> MoId {
        self.push(MicroOp {
            op: MoType::Split,
            pre: vec![pre],
            locs: vec![loc0, loc1],
            dispense_size: None,
        })
    }

    /// Appends a dilution of `pre[0]` with buffer `pre[1]`, mixed at `loc0`
    /// with the surplus split off to `loc1`.
    pub fn dilute(&mut self, pre: &[MoId; 2], loc0: (f64, f64), loc1: (f64, f64)) -> MoId {
        self.push(MicroOp {
            op: MoType::Dilute,
            pre: pre.to_vec(),
            locs: vec![loc0, loc1],
            dispense_size: None,
        })
    }

    /// Appends a magnetic-bead operation on `pre` at `loc`.
    pub fn magnetic(&mut self, pre: MoId, loc: (f64, f64)) -> MoId {
        self.push(MicroOp {
            op: MoType::Magnetic,
            pre: vec![pre],
            locs: vec![loc],
            dispense_size: None,
        })
    }

    /// Appends an output of `pre` exiting near `loc` (should be at an edge).
    pub fn output(&mut self, pre: MoId, loc: (f64, f64)) -> MoId {
        self.push(MicroOp {
            op: MoType::Output,
            pre: vec![pre],
            locs: vec![loc],
            dispense_size: None,
        })
    }

    /// Appends a discard of `pre` exiting near `loc`.
    pub fn discard(&mut self, pre: MoId, loc: (f64, f64)) -> MoId {
        self.push(MicroOp {
            op: MoType::Discard,
            pre: vec![pre],
            locs: vec![loc],
            dispense_size: None,
        })
    }

    /// Validates Table III arities, location counts, topological order, and
    /// droplet conservation (each output consumed at most once; dilute
    /// consumes `pre[0]`'s droplet and `pre[1]`'s buffer).
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        let mut consumed = vec![0usize; self.ops.len()];
        for (id, op) in self.iter() {
            if op.pre.len() != op.op.inputs() {
                return Err(ValidateError::BadArity {
                    id,
                    op: op.op,
                    found: op.pre.len(),
                });
            }
            if op.locs.len() != op.op.locations() {
                return Err(ValidateError::BadLocations { id });
            }
            for &pre in &op.pre {
                if pre >= id {
                    return Err(ValidateError::ForwardEdge { id, pre });
                }
                consumed[pre] += 1;
                if consumed[pre] > self.ops[pre].op.outputs() {
                    return Err(ValidateError::OverConsumed { pre });
                }
            }
        }
        Ok(())
    }

    /// Renders the sequencing graph in Graphviz DOT format (one node per
    /// operation labelled `M<i>: <type>`, one edge per dependency) — handy
    /// for documenting bioassays the way the paper draws Fig. 12.
    ///
    /// # Examples
    ///
    /// ```
    /// use meda_bioassay::SequencingGraph;
    ///
    /// let mut sg = SequencingGraph::new("demo");
    /// let a = sg.dispense((5.5, 3.5), (4, 4));
    /// sg.output(a, (55.5, 3.5));
    /// let dot = sg.to_dot();
    /// assert!(dot.starts_with("digraph \"demo\""));
    /// assert!(dot.contains("M1 -> M2"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}\" {{\n  rankdir=TB;\n", self.name);
        for (id, op) in self.iter() {
            out.push_str(&format!(
                "  M{} [label=\"M{}: {}\", shape={}];\n",
                id + 1,
                id + 1,
                op.op,
                match op.op {
                    MoType::Dispense => "invhouse",
                    MoType::Output | MoType::Discard => "house",
                    _ => "box",
                }
            ));
        }
        for (id, op) in self.iter() {
            for &pre in &op.pre {
                out.push_str(&format!("  M{} -> M{};\n", pre + 1, id + 1));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Total droplets dispensed over the bioassay.
    #[must_use]
    pub fn dispense_count(&self) -> usize {
        self.ops.iter().filter(|o| o.op == MoType::Dispense).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig12_graph() -> SequencingGraph {
        let mut sg = SequencingGraph::new("fig12");
        let m1 = sg.dispense((17.5, 2.5), (4, 4));
        let m2 = sg.dispense((17.5, 28.5), (4, 4));
        let m3 = sg.mix(&[m1, m2], (10.5, 15.5));
        sg.magnetic(m3, (40.5, 15.5));
        sg
    }

    #[test]
    fn fig12_graph_is_valid() {
        assert!(fig12_graph().validate().is_ok());
    }

    #[test]
    fn over_consumption_detected() {
        let mut sg = SequencingGraph::new("bad");
        let a = sg.dispense((5.0, 5.0), (4, 4));
        sg.magnetic(a, (10.0, 10.0));
        sg.magnetic(a, (20.0, 10.0)); // a's single output used twice
        assert_eq!(sg.validate(), Err(ValidateError::OverConsumed { pre: a }));
    }

    #[test]
    fn split_offers_two_outputs() {
        let mut sg = SequencingGraph::new("split");
        let a = sg.dispense((5.0, 5.0), (4, 4));
        let s = sg.split(a, (10.0, 5.0), (10.0, 12.0));
        sg.output(s, (1.0, 5.0));
        sg.output(s, (1.0, 12.0));
        assert!(sg.validate().is_ok());
    }

    #[test]
    fn bad_arity_detected() {
        let mut sg = SequencingGraph::new("bad");
        let a = sg.dispense((5.0, 5.0), (4, 4));
        sg.push(MicroOp {
            op: MoType::Mix,
            pre: vec![a],
            locs: vec![(8.0, 8.0)],
            dispense_size: None,
        });
        assert!(matches!(
            sg.validate(),
            Err(ValidateError::BadArity {
                op: MoType::Mix,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn forward_edge_detected() {
        let mut sg = SequencingGraph::new("bad");
        sg.push(MicroOp {
            op: MoType::Magnetic,
            pre: vec![1],
            locs: vec![(8.0, 8.0)],
            dispense_size: None,
        });
        sg.dispense((5.0, 5.0), (4, 4));
        assert!(matches!(
            sg.validate(),
            Err(ValidateError::ForwardEdge { id: 0, pre: 1 })
        ));
    }

    #[test]
    fn dispense_count_counts() {
        assert_eq!(fig12_graph().dispense_count(), 2);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let dot = fig12_graph().to_dot();
        assert!(dot.contains("M3: mix"));
        assert!(dot.contains("M1 -> M3"));
        assert!(dot.contains("M2 -> M3"));
        assert!(dot.contains("M3 -> M4"));
        assert!(dot.ends_with("}\n"));
        // Dispenses and the magnetic op get distinct shapes.
        assert!(dot.contains("invhouse"));
        assert!(dot.contains("shape=box"));
    }
}
