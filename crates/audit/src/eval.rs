//! Exact evaluation of the Markov chain a memoryless strategy induces.
//!
//! The residual certificate ([`crate::bellman_certificate`]) and the
//! interval bounds ([`crate::compute_bounds`]) both speak about the *value
//! vector*; neither proves anything about the **strategy** the solver
//! ships. This pass closes that gap: walking the strategy over the CSR
//! graph yields a Markov chain (one choice per state), whose value is a
//! *linear* system — no max/min — and can therefore be solved exactly
//! rather than iterated. The chain is condensed into strongly connected
//! components (iterative Tarjan, mirroring `meda-core`); bottom components
//! are resolved structurally (a goal singleton is 1 / 0 cycles, any other
//! recurrent class never reaches the goal: 0 / ∞); transient components
//! are processed in reverse topological order, each solved by dense
//! partially-pivoted Gaussian elimination over its (typically tiny) block
//! with sparse substitution of the already-solved downstream values. The
//! result is the exact (f64) value the shipped strategy attains, which
//! [`audit_strategy_value`] then requires to lie inside the certified
//! `[lo, hi]` interval.

use meda_core::Action;

use crate::bounds::BOUNDS_SLACK;
use crate::{BoundsCertificate, ModelArtifact, ValueKind, Violation};

/// Dense blocks beyond this edge length are refused — a strategy chain
/// with a strongly connected component this large would need O(block²)
/// memory to eliminate. Routing chains are near-acyclic (self-loops are
/// diagonal entries, not components), so hitting this limit indicates a
/// degenerate strategy and is reported as a violation rather than solved.
pub const MAX_CHAIN_BLOCK: usize = 4096;

/// The outcome of exactly evaluating a strategy's induced chain.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyEvaluation {
    /// Exact per-state value of the induced chain (`Pmax`: reach
    /// probability; `Rmin`: expected cycles, `∞` where the chain never
    /// absorbs in the goal).
    pub values: Vec<f64>,
    /// Size of the largest dense block eliminated.
    pub largest_block: usize,
}

/// Exactly evaluates the chain induced by `pick` (one chosen choice index
/// per state, `None` = absorbing under the strategy). Returns `Err` with
/// the offending block size if a strongly connected component exceeds
/// [`MAX_CHAIN_BLOCK`].
///
/// The artifact must have passed [`crate::audit_model`] and every
/// `Some(c)` must be a valid choice index of its state — callers resolve
/// actions via the CSR arrays first.
pub(crate) fn evaluate_pick_exact(
    art: &ModelArtifact,
    pick: &[Option<usize>],
    kind: ValueKind,
) -> Result<StrategyEvaluation, usize> {
    let telemetry = meda_telemetry::global();
    let _span = telemetry.span("audit.eval");
    let n = art.states;
    let scc = chain_sccs(art, pick);
    let comps = scc.comp_start.len() - 1;
    let mut values = vec![0.0_f64; n];
    let mut pos = vec![0u32; n]; // local index within the current block
    let mut largest_block = 0usize;

    // Component ids are Tarjan emission order = reverse topological:
    // processing them in increasing id visits every component only after
    // all components it can reach.
    for k in 0..comps {
        let members = &scc.members[scc.comp_start[k] as usize..scc.comp_start[k + 1] as usize];
        let bottom = members.iter().all(|&u| {
            let u = u as usize;
            match pick[u] {
                None => true,
                Some(c) => art
                    .branch_range(c)
                    .all(|b| scc.component[art.branch_target[b] as usize] as usize == k),
            }
        });
        if bottom {
            // A recurrent class: the goal is absorbing, so a goal state is
            // always a singleton bottom; every other bottom class never
            // reaches the goal.
            let is_goal = members.len() == 1 && art.goal_flags[members[0] as usize];
            let v = match (kind, is_goal) {
                (ValueKind::Reachability, true) => 1.0,
                (ValueKind::Reachability, false) => 0.0,
                (ValueKind::ExpectedCycles, true) => 0.0,
                (ValueKind::ExpectedCycles, false) => f64::INFINITY,
            };
            for &u in members {
                values[u as usize] = v;
            }
            continue;
        }
        let m = members.len();
        if m > MAX_CHAIN_BLOCK {
            return Err(m);
        }
        largest_block = largest_block.max(m);
        for (local, &u) in members.iter().enumerate() {
            pos[u as usize] = u32::try_from(local).expect("block fits u32 by MAX_CHAIN_BLOCK");
        }
        // Assemble A = I − Q over the block and the constant term from
        // downstream (already solved) components.
        let mut a = vec![0.0_f64; m * m];
        let mut b = vec![0.0_f64; m];
        let mut touches_infinite = false;
        for (local, &u) in members.iter().enumerate() {
            a[local * m + local] = 1.0;
            if kind == ValueKind::ExpectedCycles {
                b[local] = 1.0;
            }
            let Some(c) = pick[u as usize] else {
                // Absorbing in a transient component is impossible: a
                // choice-less state has no out edge, so its component is
                // bottom. Unreachable after the bottom check above.
                continue;
            };
            for br in art.branch_range(c) {
                let t = art.branch_target[br] as usize;
                let p = art.branch_prob[br];
                if scc.component[t] as usize == k {
                    a[local * m + pos[t] as usize] -= p;
                } else if values[t].is_infinite() {
                    touches_infinite = true;
                } else {
                    b[local] += p * values[t];
                }
            }
        }
        if kind == ValueKind::ExpectedCycles && touches_infinite {
            // Positive probability of entering an infinite-cost region,
            // reachable from every member of the strongly connected block.
            for &u in members {
                values[u as usize] = f64::INFINITY;
            }
            continue;
        }
        let x = solve_dense(&mut a, &mut b, m).ok_or(m)?;
        for (local, &u) in members.iter().enumerate() {
            let v = x[local];
            values[u as usize] = if kind == ValueKind::Reachability {
                v.clamp(0.0, 1.0)
            } else {
                v.max(0.0)
            };
        }
    }
    telemetry.add("audit.eval.largest_block", largest_block as u64);
    Ok(StrategyEvaluation {
        values,
        largest_block,
    })
}

/// Exactly evaluates the chain induced by a memoryless strategy given as
/// one [`Action`] per state. Actions are resolved against the CSR choice
/// table; an action not enabled at its state yields
/// [`Violation::StrategyInvalidAction`].
///
/// # Errors
///
/// Returns the violations that prevented evaluation (invalid length,
/// disabled action, or an oversized dense block).
pub fn evaluate_strategy(
    art: &ModelArtifact,
    choice: &[Option<Action>],
    kind: ValueKind,
) -> Result<StrategyEvaluation, Vec<Violation>> {
    if choice.len() != art.states {
        return Err(vec![Violation::StrategyLength {
            expected: art.states,
            found: choice.len(),
        }]);
    }
    let mut pick = vec![None; art.states];
    let mut violations = Vec::new();
    for (i, &action) in choice.iter().enumerate() {
        let Some(action) = action else { continue };
        match art
            .choice_range(i)
            .find(|&c| art.choice_action[c] == action)
        {
            Some(c) => pick[i] = Some(c),
            None => violations.push(Violation::StrategyInvalidAction { state: i, action }),
        }
    }
    if !violations.is_empty() {
        return Err(violations);
    }
    evaluate_pick_exact(art, &pick, kind).map_err(|block| {
        vec![Violation::StrategyChainBlockTooLarge {
            block,
            limit: MAX_CHAIN_BLOCK,
        }]
    })
}

/// Checks that the exact value the shipped strategy attains at the initial
/// state lies inside the certified interval — the only check in the crate
/// that verifies the *strategy*, not just the value vector. The tolerance
/// allows the extracted-greedy gap of an `ε`-converged solve plus the
/// verification slack.
#[must_use]
pub fn audit_strategy_value(
    art: &ModelArtifact,
    choice: &[Option<Action>],
    kind: ValueKind,
    cert: &BoundsCertificate,
) -> Vec<Violation> {
    let eval = match evaluate_strategy(art, choice, kind) {
        Ok(eval) => eval,
        Err(violations) => return violations,
    };
    let i = art.init;
    if cert.lo.len() != art.states || cert.hi.len() != art.states {
        return Vec::new(); // already reported by verify_bounds
    }
    let value = eval.values[i];
    let scale = if value.is_finite() { value.abs() } else { 0.0 };
    let tol = 2.0 * cert.epsilon + BOUNDS_SLACK + 1e-9 * scale;
    if cert.contains(i, value, tol) {
        Vec::new()
    } else {
        vec![Violation::StrategyValueOutsideBounds {
            value,
            lo: cert.lo[i],
            hi: cert.hi[i],
        }]
    }
}

/// SCC condensation of the induced chain: edges are the branches of each
/// state's picked choice only. Same iterative-Tarjan shape as
/// `meda_core::RoutingMdp::condensation`; self-loops are skipped (they are
/// diagonal entries of the dense block, never component-forming).
struct ChainSccs {
    component: Vec<u32>,
    comp_start: Vec<u32>,
    members: Vec<u32>,
}

fn chain_sccs(art: &ModelArtifact, pick: &[Option<usize>]) -> ChainSccs {
    let n = art.states;
    const UNVISITED: u32 = u32::MAX;
    let edges = |i: usize| -> std::ops::Range<usize> {
        match pick[i] {
            Some(c) => art.branch_range(c),
            None => 0..0,
        }
    };
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut component = vec![UNVISITED; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;
    let mut dfs: Vec<(u32, u32)> = Vec::new();

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        dfs.push((root as u32, edges(root).start as u32));
        while let Some(&mut (v, ref mut edge)) = dfs.last_mut() {
            let v = v as usize;
            if (*edge as usize) < edges(v).end {
                let w = art.branch_target[*edge as usize] as usize;
                *edge += 1;
                if w == v {
                    continue;
                }
                if index[w] == UNVISITED {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    dfs.push((w as u32, edges(w).start as u32));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    let p = parent as usize;
                    lowlink[p] = lowlink[p].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    while let Some(w) = stack.pop() {
                        on_stack[w as usize] = false;
                        component[w as usize] = comp_count;
                        if w as usize == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    let mut comp_start = vec![0u32; comp_count as usize + 1];
    for &c in &component {
        comp_start[c as usize + 1] += 1;
    }
    for k in 1..comp_start.len() {
        comp_start[k] += comp_start[k - 1];
    }
    let mut cursor = comp_start.clone();
    let mut members = vec![0u32; n];
    for (s, &c) in component.iter().enumerate() {
        members[cursor[c as usize] as usize] = s as u32;
        cursor[c as usize] += 1;
    }
    ChainSccs {
        component,
        comp_start,
        members,
    }
}

/// Solves `A x = b` in place by Gaussian elimination with partial
/// pivoting; `a` is row-major `m × m`. Returns `None` if a pivot is
/// (numerically) zero — impossible for `I − Q` of a transient block, whose
/// spectral radius is below 1, but checked rather than assumed.
fn solve_dense(a: &mut [f64], b: &mut [f64], m: usize) -> Option<Vec<f64>> {
    for col in 0..m {
        let mut pivot_row = col;
        let mut pivot_abs = a[col * m + col].abs();
        for row in col + 1..m {
            let v = a[row * m + col].abs();
            if v > pivot_abs {
                pivot_abs = v;
                pivot_row = row;
            }
        }
        if pivot_abs <= f64::MIN_POSITIVE {
            return None;
        }
        if pivot_row != col {
            for j in col..m {
                a.swap(col * m + j, pivot_row * m + j);
            }
            b.swap(col, pivot_row);
        }
        let pivot = a[col * m + col];
        for row in col + 1..m {
            let factor = a[row * m + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            a[row * m + col] = 0.0;
            for j in col + 1..m {
                a[row * m + j] -= factor * a[col * m + j];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0_f64; m];
    for row in (0..m).rev() {
        let mut acc = b[row];
        for j in row + 1..m {
            acc -= a[row * m + j] * x[j];
        }
        x[row] = acc / a[row * m + row];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_core::Dir;

    fn east() -> Action {
        Action::Move(Dir::E)
    }

    /// The 3-state corridor of `lib.rs` tests: 0 →E→ 1 →E→ 2(goal) with
    /// 0.2 stay-in-place failure mass.
    fn corridor() -> ModelArtifact {
        let west = Action::Move(Dir::W);
        ModelArtifact {
            states: 3,
            init: 0,
            sink: None,
            goal_flags: vec![false, false, true],
            state_choice_start: vec![0, 1, 3, 3],
            choice_action: vec![east(), east(), west],
            choice_branch_start: vec![0, 2, 4, 6],
            branch_target: vec![1, 0, 2, 1, 0, 1],
            branch_prob: vec![0.8, 0.2, 0.8, 0.2, 0.8, 0.2],
        }
    }

    #[test]
    fn corridor_strategy_evaluates_exactly() {
        let art = corridor();
        let strat = vec![Some(east()), Some(east()), None];
        let reach = evaluate_strategy(&art, &strat, ValueKind::Reachability).expect("evaluates");
        for v in &reach.values[..2] {
            assert!((v - 1.0).abs() < 1e-12, "reach {v} != 1");
        }
        let cycles = evaluate_strategy(&art, &strat, ValueKind::ExpectedCycles).expect("evaluates");
        // Failed moves stay in place: v1 = 1 + 0.2 v1 and
        // v0 = 1 + 0.2 v0 + 0.8 v1 — exact solution v1 = 1.25, v0 = 2.5.
        assert!((cycles.values[1] - 1.25).abs() < 1e-12);
        assert!((cycles.values[0] - 2.5).abs() < 1e-12);
        assert_eq!(cycles.values[2], 0.0);
    }

    #[test]
    fn off_policy_detour_is_measured_not_assumed() {
        // Route state 1 west (back toward 0) instead of east: the chain
        // cycles 0 ↔ 1 forever with stay-failures — a non-goal bottom
        // class once the goal edge is gone.
        let art = corridor();
        let strat = vec![Some(east()), Some(Action::Move(Dir::W)), None];
        let reach = evaluate_strategy(&art, &strat, ValueKind::Reachability).expect("evaluates");
        assert_eq!(reach.values[0], 0.0);
        assert_eq!(reach.values[1], 0.0);
        let cycles = evaluate_strategy(&art, &strat, ValueKind::ExpectedCycles).expect("evaluates");
        assert!(cycles.values[0].is_infinite());
    }

    #[test]
    fn undecided_state_is_chain_absorbing() {
        let art = corridor();
        let strat = vec![None, Some(east()), None];
        let reach = evaluate_strategy(&art, &strat, ValueKind::Reachability).expect("evaluates");
        assert_eq!(reach.values[0], 0.0, "absorbing non-goal start");
        assert!((reach.values[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_action_is_reported() {
        let art = corridor();
        let strat = vec![Some(Action::Move(Dir::N)), Some(east()), None];
        let err = evaluate_strategy(&art, &strat, ValueKind::Reachability).unwrap_err();
        assert!(err
            .iter()
            .any(|v| matches!(v, Violation::StrategyInvalidAction { state: 0, .. })));
    }

    #[test]
    fn dense_solver_handles_a_cyclic_block() {
        // 2x2 system from a two-state shuttle with goal leak 0.5 each:
        // x_a = 1 + 0.5 x_b, x_b = 1 + 0.5 x_a → x = 2 each.
        let mut a = vec![1.0, -0.5, -0.5, 1.0];
        let mut b = vec![1.0, 1.0];
        let x = solve_dense(&mut a, &mut b, 2).expect("nonsingular");
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }
}
