//! Supervised bioassay execution with graceful degradation.
//!
//! The plain [`BioassayRunner`](crate::BioassayRunner) is all-or-nothing:
//! the first failed routing job aborts the whole bioassay. Cyberphysical
//! DMFB practice instead detects errors through the sensing loop and
//! re-executes bounded portions of the assay. The [`Supervisor`] implements
//! that discipline on top of the shared execution core: every failed
//! routing job climbs an escalation ladder — re-sense the droplet and
//! retry, re-synthesize with a widened corridor from the refreshed health
//! matrix, detour via the reactive [`RecoveryRouter`] — and only when the
//! retry budget is exhausted is the operation aborted, its dependents
//! skipped, and the rest of the plan continued. The result is a structured
//! [`FailureReport`] with a per-operation completion fraction instead of a
//! single terminal status.
//!
//! With [`SupervisorConfig::reconfig_budget`] above zero a further rung
//! sits between the detour and the abort: the *reconfiguration planner*.
//! When the whole per-job ladder fails, the supervisor scans the quantized
//! health matrix **H** for a healthy spare region large enough for the
//! failing operation's target zone, relocates the zone there through the
//! bioassay placer ([`RjHelper::relocate`] — the Algorithm-1 re-entry for
//! the displaced subtree), rewrites the restart jobs from the droplets'
//! actual positions, and re-dispatches the operation. Strategy-backed
//! routers see fresh start/goal/bounds keys and re-synthesize
//! automatically, with warm prioritized re-solves for the patched regions.

use meda_rng::Rng;

use meda_bioassay::{BioassayPlan, PlannedMo, RjHelper, RoutingJob};
use meda_core::ForceProvider;
use meda_grid::Rect;

use crate::engine::{Exec, JobError};
use crate::{Biochip, FaultPlan, RecoveryRouter, Router, RunConfig, RunStatus};

/// Minimum per-cell relative EWOD force for a cell to count as *spare* in
/// the reconfiguration scan — at least half-strength under the
/// conservative health interpretation (dead and nearly-dead cells are
/// excluded; a pristine 2-bit cell reads 0.5625).
const SPARE_MIN_FORCE: f64 = 0.25;

/// Configuration of supervised execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// The underlying run configuration (cycle budget, sensed feedback).
    pub run: RunConfig,
    /// Retries allowed per routing job beyond its first attempt. Each
    /// retry climbs one rung of the escalation ladder; retry 3 and beyond
    /// stay on the detour rung.
    pub retry_budget: u32,
    /// Stall patience of the [`RecoveryRouter`] used on the detour rung.
    pub detour_patience: u32,
    /// Watchdog: cycles one routing attempt may burn before it is declared
    /// [`RunStatus::Stalled`] and retried. Without it, a wedged position
    /// estimate (e.g. stuck sensors swallowing the goal region) silently
    /// eats the whole global `k_max` — terminal for supervised and
    /// unsupervised runs alike.
    pub attempt_cycles: u64,
    /// Relocations allowed per operation on the reconfiguration rung
    /// (0 — the default — disables the rung, leaving the classic
    /// resense → resynth → detour → abort ladder byte-for-byte intact).
    pub reconfig_budget: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            run: RunConfig::default(),
            retry_budget: 3,
            detour_patience: 4,
            attempt_cycles: 256,
            reconfig_budget: 0,
        }
    }
}

/// One aborted microfluidic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoFailure {
    /// The operation's id in the plan.
    pub mo: usize,
    /// Index of the routing job that exhausted its retries.
    pub job: usize,
    /// The failure class of the final attempt.
    pub status: RunStatus,
    /// Where the droplet was last believed to be.
    pub last_position: Rect,
    /// Retries consumed before giving up.
    pub retries: u32,
}

/// The highest escalation rung an operation needed before it completed —
/// the *winning* rung, as opposed to [`RungCounts`] which tallies attempts.
/// Ordered by severity, so `max` folds per-job outcomes into a per-MO one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Every routing job landed on its first attempt.
    FirstTry,
    /// Rung 1: a global re-sense relocated the droplet.
    Resense,
    /// Rung 2: re-synthesis with a widened corridor.
    Resynth,
    /// Rung 3: a reactive detour.
    Detour,
    /// Rung 4: the operation was relocated onto spare electrodes.
    Reconfig,
}

/// How often each rung of the escalation ladder fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RungCounts {
    /// Rung 1: global re-sense, retry with the same router.
    pub resense: u64,
    /// Rung 2: re-synthesis from the refreshed health matrix with a
    /// widened routing corridor.
    pub resynth: u64,
    /// Rung 3: detour via a fresh reactive [`RecoveryRouter`].
    pub detour: u64,
    /// Rung 4: relocations onto spare electrodes by the reconfiguration
    /// planner.
    pub reconfig: u64,
    /// Rung 5: operations aborted after every budget ran out.
    pub aborted_ops: u64,
}

/// The structured outcome of a supervised run: what completed, what was
/// aborted and why, and how hard the supervisor had to work.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Total operational cycles consumed.
    pub cycles: u64,
    /// [`RunStatus::Success`] when every operation completed; otherwise
    /// the root cause — the status of the earliest failure,
    /// [`RunStatus::CycleLimit`] when the budget died, or
    /// [`RunStatus::Deadlock`] for a malformed plan.
    pub status: RunStatus,
    /// Operations that completed.
    pub completed_ops: usize,
    /// Total operations in the plan.
    pub total_ops: usize,
    /// Every aborted operation, in failure order.
    pub failures: Vec<MoFailure>,
    /// Operations skipped because a (transitive) predecessor was aborted.
    pub skipped: Vec<usize>,
    /// Escalation-ladder statistics.
    pub rungs: RungCounts,
    /// For every *completed* operation, the highest ladder rung it needed
    /// (`(mo id, winning rung)`, in completion order).
    pub resolved_by: Vec<(usize, Rung)>,
}

impl FailureReport {
    /// Whether every operation completed.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.completed_ops == self.total_ops
    }

    /// Fraction of the plan's operations that completed (1 for an empty
    /// plan).
    #[must_use]
    pub fn completion_fraction(&self) -> f64 {
        if self.total_ops == 0 {
            1.0
        } else {
            self.completed_ops as f64 / self.total_ops as f64
        }
    }
}

/// Supervised execution: [`BioassayRunner`](crate::BioassayRunner)
/// semantics plus a per-job retry ladder and partial completion.
///
/// # Examples
///
/// ```
/// use meda_bioassay::{benchmarks, RjHelper};
/// use meda_grid::ChipDims;
/// use meda_rng::SeedableRng;
/// use meda_sim::{
///     BaselineRouter, Biochip, DegradationConfig, FaultPlan, Supervisor, SupervisorConfig,
/// };
///
/// let mut rng = meda_rng::StdRng::seed_from_u64(7);
/// let plan = RjHelper::new(ChipDims::PAPER).plan(&benchmarks::master_mix())?;
/// let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
/// let mut router = BaselineRouter::new();
/// let report = Supervisor::new(SupervisorConfig::default())
///     .run(&plan, &mut chip, &mut router, &FaultPlan::none(), &mut rng);
/// assert!(report.is_success());
/// assert_eq!(report.completion_fraction(), 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Supervisor {
    config: SupervisorConfig,
}

impl Supervisor {
    /// Creates a supervisor.
    #[must_use]
    pub fn new(config: SupervisorConfig) -> Self {
        Self { config }
    }

    /// Runs `plan` on `chip` under `chaos`, retrying failed jobs up the
    /// escalation ladder and skipping the dependents of aborted
    /// operations. With [`FaultPlan::none`] and sensed feedback off, the
    /// execution is bit-identical to
    /// [`BioassayRunner::run`](crate::BioassayRunner::run) — the ladder
    /// only exists on the failure path.
    pub fn run(
        &self,
        plan: &BioassayPlan,
        chip: &mut Biochip,
        router: &mut dyn Router,
        chaos: &FaultPlan,
        rng: &mut impl Rng,
    ) -> FailureReport {
        let total = plan.operations().len();
        let mut exec = Exec::new(self.config.run, chip, rng, chaos);
        let mut done = vec![false; total];
        let mut failed = vec![false; total];
        let mut completed = 0usize;
        let mut failures: Vec<MoFailure> = Vec::new();
        let mut skipped: Vec<usize> = Vec::new();
        let mut resolved_by: Vec<(usize, Rung)> = Vec::new();
        let mut rungs = RungCounts::default();
        let mut out_of_budget = false;
        // Reconfiguration state: the plan is cloned lazily on the first
        // relocation, so the fault-free path never allocates a copy.
        let mut working: Option<BioassayPlan> = None;
        let mut reconfigs_left = vec![self.config.reconfig_budget; total];

        loop {
            // Transitively skip the dependents of aborted operations. Plan
            // ids are topological (predecessors have smaller ids), so one
            // increasing pass reaches a fixpoint. Relocation never changes
            // the dependency topology, so `plan` is authoritative here.
            for id in 0..total {
                let mo = &plan.operations()[id];
                if !done[id] && !failed[id] && mo.pre.iter().any(|&p| failed[p]) {
                    failed[id] = true;
                    skipped.push(id);
                }
            }
            let ready: Vec<usize> = plan
                .operations()
                .iter()
                .filter(|mo| !done[mo.id] && !failed[mo.id] && mo.pre.iter().all(|&p| done[p]))
                .map(|mo| mo.id)
                .collect();
            let Some(&picked) = ready.first() else {
                break;
            };

            // Execute the picked operation, re-dispatching through the
            // reconfiguration planner while its relocation budget lasts.
            let mut mo_rung = Rung::FirstTry;
            let result = loop {
                let mo = working.as_ref().unwrap_or(plan).operations()[picked].clone();
                let mut fail_job = 0usize;
                let mut fail_retries = 0u32;
                let mut arrived: Vec<Rect> = Vec::new();
                let attempt = exec.exec_mo(&mo, &mut |e, job, held, job_idx| {
                    fail_job = job_idx;
                    fail_retries = 0;
                    let landed = self.run_job_with_ladder(
                        e,
                        job,
                        router,
                        held,
                        &mut rungs,
                        &mut fail_retries,
                        &mut mo_rung,
                    );
                    if let Ok(rect) = landed {
                        arrived.push(rect);
                    }
                    landed
                });
                match attempt {
                    Ok(()) => break Ok(()),
                    Err(err) => {
                        if err.status != RunStatus::CycleLimit
                            && reconfigs_left[picked] > 0
                            && self.try_reconfigure(
                                &mut exec,
                                plan,
                                &mut working,
                                picked,
                                fail_job,
                                &arrived,
                                err.at,
                            )
                        {
                            reconfigs_left[picked] -= 1;
                            rungs.reconfig += 1;
                            mo_rung = Rung::Reconfig;
                            continue;
                        }
                        break Err((err, fail_job, fail_retries));
                    }
                }
            };
            match result {
                Ok(()) => {
                    done[picked] = true;
                    completed += 1;
                    resolved_by.push((picked, mo_rung));
                }
                Err((err, fail_job, fail_retries)) => {
                    failures.push(MoFailure {
                        mo: picked,
                        job: fail_job,
                        status: err.status,
                        last_position: err.at,
                        retries: fail_retries,
                    });
                    // The aborted operation's droplets go to waste; make
                    // sure the next job does not inherit a stale physical
                    // position.
                    exec.pending = None;
                    if err.status == RunStatus::CycleLimit {
                        // The shared cycle budget is gone: nothing further
                        // can execute, matching the plain runner's
                        // accounting cycle for cycle.
                        out_of_budget = true;
                        break;
                    }
                    failed[picked] = true;
                    rungs.aborted_ops += 1;
                }
            }
        }

        let status = if completed == total {
            RunStatus::Success
        } else if out_of_budget {
            RunStatus::CycleLimit
        } else if let Some(first) = failures.first() {
            first.status
        } else {
            // Nothing failed, yet operations remain: the plan's dependency
            // graph can never release them.
            RunStatus::Deadlock
        };
        let telemetry = meda_telemetry::global();
        telemetry.add("sim.supervisor.runs", 1);
        telemetry.add("sim.supervisor.rung.resense", rungs.resense);
        telemetry.add("sim.supervisor.rung.resynth", rungs.resynth);
        telemetry.add("sim.supervisor.rung.detour", rungs.detour);
        telemetry.add("sim.supervisor.rung.reconfig", rungs.reconfig);
        telemetry.add("sim.supervisor.aborted_ops", rungs.aborted_ops);

        FailureReport {
            cycles: exec.cycles,
            status,
            completed_ops: completed,
            total_ops: total,
            failures,
            skipped,
            rungs,
            resolved_by,
        }
    }

    /// The reconfiguration rung: find a healthy spare region for the
    /// failing operation's target zone, relocate the zone there through
    /// the bioassay placer, and rewrite the restart jobs from the
    /// droplets' actual positions. Returns `true` when the operation was
    /// relocated and should be re-dispatched, `false` when no spare region
    /// exists (the caller falls through to the abort path).
    #[allow(clippy::too_many_arguments)]
    fn try_reconfigure<R: Rng>(
        &self,
        exec: &mut Exec<'_, R>,
        plan: &BioassayPlan,
        working: &mut Option<BioassayPlan>,
        picked: usize,
        fail_job: usize,
        arrived: &[Rect],
        last_estimate: Rect,
    ) -> bool {
        let telemetry = meda_telemetry::global();
        let mo = working.as_ref().unwrap_or(plan).operations()[picked].clone();
        if mo.jobs.is_empty() {
            return false;
        }
        let failed_dispense = mo.jobs[fail_job].is_dispense();
        // The rung only helps against electrode *death*: when no cell of
        // the operation's working region — corridors and targets alike —
        // has failed outright, the failure is sensing- or
        // congestion-shaped, and a relocation would burn shared cycle
        // budget without fixing anything. Outright death (degradation
        // exactly 0) is distinguishable from deep wear, which decays
        // `τ^(n/c)` and never reaches 0 — in the fabricated design the
        // sudden drop is what the health telemetry flags. Dispense is
        // exempt from the gate: it has no sensing loop, so a stalled
        // dispense already implicates its (unsensed, off-region) entry
        // corridor.
        if !failed_dispense {
            let dims = exec.chip.dims();
            let mut region: Option<Rect> = None;
            for r in mo
                .jobs
                .iter()
                .map(|j| j.bounds)
                .chain(mo.outputs.iter().copied())
            {
                region = Some(region.map_or(r, |f| f.union(r)));
            }
            let no_dead_cells = region.is_none_or(|region| {
                region
                    .cells()
                    .filter(|&c| dims.contains(c))
                    .all(|c| exec.chip.degradation_at(c) > 0.0)
            });
            if no_dead_cells {
                telemetry.add("sim.supervisor.reconfig.skipped_healthy", 1);
                return false;
            }
        }
        // Everything else physically on the chip: parked droplets, this
        // operation's already-arrived partners, and its not-yet-started
        // ones.
        let mut held = exec.resting.clone();
        held.extend(arrived.iter().copied());
        held.extend(
            mo.jobs[fail_job + 1..]
                .iter()
                .map(|j| j.start)
                .filter(|r| !r.is_off_chip_origin()),
        );
        // A chip-wide re-sense pins down the failed droplet; if it is
        // invisible (occluded / swallowed by stuck bits), restart from the
        // last estimate — the detour rungs already failed from there, so
        // there is nothing better. A failed dispense has no on-chip
        // droplet to find: the half-dispensed volume is written off and
        // the dispense restarts from the edge of the relocated zone.
        let estimate = if failed_dispense {
            last_estimate
        } else {
            exec.resense(last_estimate, &held).unwrap_or(last_estimate)
        };

        let displacement = {
            let _scan = telemetry.span("sim.supervisor.reconfig.scan");
            self.find_spare_region(exec, &mo, &held)
        };
        let Some((dx, dy)) = displacement else {
            telemetry.add("sim.supervisor.reconfig.scan_misses", 1);
            return false;
        };

        let wp = working.get_or_insert_with(|| plan.clone());
        let dims = exec.chip.dims();
        if RjHelper::new(dims).relocate(wp, picked, dx, dy).is_err() {
            // The footprint fits, but a re-derived successor rectangle
            // (e.g. a recentered split source) left the chip: give up on
            // this relocation rather than commit half a plan.
            telemetry.add("sim.supervisor.reconfig.scan_misses", 1);
            return false;
        }
        telemetry
            .histogram("sim.supervisor.reconfig.distance")
            .record(u64::from(dx.unsigned_abs() + dy.unsigned_abs()));

        // Rewrite the restart jobs from where the droplets actually are:
        // already-arrived partners re-route from their (old) goals, the
        // failed droplet from its re-sensed position, later jobs keep the
        // starts the placer derived. Its inputs were consumed on the
        // first dispatch, so the restart consumes none.
        let mo = &mut wp.operations_mut()[picked];
        mo.inputs.clear();
        for (i, job) in mo.jobs.iter_mut().enumerate() {
            let start = match i.cmp(&fail_job) {
                std::cmp::Ordering::Less => arrived[i],
                // The relocated dispense keeps its off-chip start; the
                // placer already re-derived its entry zone.
                std::cmp::Ordering::Equal if failed_dispense => job.start,
                std::cmp::Ordering::Equal => estimate,
                std::cmp::Ordering::Greater => job.start,
            };
            if i <= fail_job && !start.is_off_chip_origin() {
                let bounds = meda_bioassay::zone(start, job.goal, dims);
                *job = RoutingJob::new(start, job.goal, bounds);
            }
        }
        // Physical continuity: the failed droplet's ground truth carries
        // into the restart only when it is the first job to run again;
        // otherwise an earlier restart job would wrongly inherit it. A
        // half-dispensed droplet never carries over — the restart
        // dispenses fresh volume from the edge.
        if fail_job != 0 || failed_dispense {
            exec.pending = None;
        }
        true
    }

    /// Scans the quantized health matrix for the nearest displacement
    /// `(dx, dy)` that lands the operation's whole target footprint (goals
    /// and outputs, plus a one-cell hazard rim) on spare electrodes —
    /// every cell at least [`SPARE_MIN_FORCE`] — while keeping a two-cell
    /// clearance from every held droplet.
    fn find_spare_region<R: Rng>(
        &self,
        exec: &Exec<'_, R>,
        mo: &PlannedMo,
        held: &[Rect],
    ) -> Option<(i32, i32)> {
        let mut footprint: Option<Rect> = None;
        for r in mo
            .jobs
            .iter()
            .map(|j| j.goal)
            .chain(mo.outputs.iter().copied())
        {
            footprint = Some(footprint.map_or(r, |f| f.union(r)));
        }
        let footprint = footprint?;
        let dims = exec.chip.dims();
        let health = exec.chip.health_field();
        let mut best: Option<(u32, i32, i32)> = None;
        for dx in (1 - footprint.xa)..=(dims.width as i32 - footprint.xb) {
            for dy in (1 - footprint.ya)..=(dims.height as i32 - footprint.yb) {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let dist = dx.unsigned_abs() + dy.unsigned_abs();
                if best.is_some_and(|(d, _, _)| d <= dist) {
                    continue;
                }
                let target = footprint.translate(dx, dy);
                let clearance = target.expand(2);
                if held.iter().any(|r| clearance.intersection(*r).is_some()) {
                    continue;
                }
                if target
                    .expand(1)
                    .cells()
                    .filter(|&c| dims.contains(c))
                    .all(|c| health.cell_force(c) >= SPARE_MIN_FORCE)
                {
                    best = Some((dist, dx, dy));
                }
            }
        }
        best.map(|(_, dx, dy)| (dx, dy))
    }

    /// One routing job under the escalation ladder. Dispense jobs are not
    /// retried (their only failure mode is the shared cycle budget).
    #[allow(clippy::too_many_arguments)]
    fn run_job_with_ladder<R: Rng>(
        &self,
        exec: &mut Exec<'_, R>,
        job: &RoutingJob,
        router: &mut dyn Router,
        held: &[Rect],
        rungs: &mut RungCounts,
        retries_out: &mut u32,
        mo_rung: &mut Rung,
    ) -> Result<Rect, JobError> {
        if job.is_dispense() {
            // Dispense has no sensing loop, so the retry rungs cannot help
            // it — but the watchdog still applies, turning a dead entry
            // corridor into a `Stalled` failure the reconfiguration rung
            // can relocate instead of a silent global-budget burn.
            exec.attempt_budget = Some(self.config.attempt_cycles);
            let result = exec.run_dispense(job, held);
            exec.attempt_budget = None;
            if let Err(err) = &result {
                if err.status == RunStatus::Stalled {
                    meda_telemetry::global().add("sim.supervisor.watchdog_fires", 1);
                }
            }
            return result;
        }
        let chip_bounds = exec.chip.dims().bounds();
        let mut attempt = *job;
        let mut retries = 0u32;
        exec.attempt_budget = Some(self.config.attempt_cycles);
        let result = loop {
            let result = if retries >= 3 {
                let mut detour = RecoveryRouter::new(self.config.detour_patience);
                exec.run_routed(&attempt, &mut detour, held)
            } else {
                exec.run_routed(&attempt, router, held)
            };
            match result {
                Ok(rect) => {
                    // Record the rung that finally landed this job; the
                    // per-MO winner is the max over its jobs.
                    let won = match retries {
                        0 => Rung::FirstTry,
                        1 => Rung::Resense,
                        2 => Rung::Resynth,
                        _ => Rung::Detour,
                    };
                    *mo_rung = (*mo_rung).max(won);
                    break Ok(rect);
                }
                Err(err) => {
                    if err.status == RunStatus::Stalled {
                        meda_telemetry::global().add("sim.supervisor.watchdog_fires", 1);
                    }
                    *retries_out = retries;
                    if err.status == RunStatus::CycleLimit || retries >= self.config.retry_budget {
                        break Err(err);
                    }
                    retries += 1;
                    *retries_out = retries;
                    // Rung 1: a fresh global sensor read relocates the
                    // droplet. Without it there is nothing to retry from.
                    let Some(estimate) = exec.resense(err.at, held) else {
                        break Err(JobError {
                            status: RunStatus::DropletLost,
                            at: err.at,
                        });
                    };
                    let bounds = match retries {
                        1 => {
                            rungs.resense += 1;
                            attempt.bounds
                        }
                        2 => {
                            // Rung 2: widening the corridor changes the
                            // synthesis query, forcing strategy-backed
                            // routers to re-synthesize from the refreshed
                            // health matrix with more room to detour.
                            rungs.resynth += 1;
                            attempt
                                .bounds
                                .expand(2)
                                .intersection(chip_bounds)
                                // Never empty — attempt.bounds lies on the
                                // chip — and the whole chip is a sound
                                // fallback corridor regardless.
                                .unwrap_or(chip_bounds)
                        }
                        _ => {
                            rungs.detour += 1;
                            attempt
                                .bounds
                                .expand(2)
                                .intersection(chip_bounds)
                                .unwrap_or(chip_bounds)
                        }
                    };
                    attempt =
                        RoutingJob::new(estimate, job.goal, bounds.union(estimate).union(job.goal));
                }
            }
        };
        exec.attempt_budget = None;
        result
    }
}
