use meda_degradation::HealthLevel;
use meda_grid::{Cell, ChipDims, Grid, Rect};

use crate::{transitions, Action, ActionConfig, HealthField, Outcome};

/// Whose turn it is in the MEDA stochastic multiplayer game (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Player {
    /// Player ① — the droplet controller, choosing microfluidic actions.
    Controller,
    /// Player ② — chip degradation, non-deterministically lowering MC
    /// health levels.
    Degradation,
}

/// A game state `s = (δ, H, λ)`: droplet location, health matrix, and the
/// player to move.
#[derive(Debug, Clone, PartialEq)]
pub struct GameState {
    /// Droplet location `δ`.
    pub droplet: Rect,
    /// Health matrix **H**.
    pub health: Grid<HealthLevel>,
    /// Player to move `λ`.
    pub player: Player,
}

/// A move of the degradation player: the set of MCs whose health level
/// drops by one this turn. Player ② "can simultaneously take multiple
/// actions (i.e., degrade multiple MCs at the same time)".
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DegradationMove {
    /// Cells to degrade by one level each.
    pub cells: Vec<Cell>,
}

impl DegradationMove {
    /// The empty move (no degradation this turn).
    #[must_use]
    pub fn none() -> Self {
        Self::default()
    }

    /// A move degrading the given cells.
    #[must_use]
    pub fn cells(cells: impl IntoIterator<Item = Cell>) -> Self {
        Self {
            cells: cells.into_iter().collect(),
        }
    }
}

/// The MEDA biochip stochastic multiplayer game
/// `𝒢 = (S, 𝒜₁ ∪ 𝒜₂, γ, s₀)` of Section V-C.
///
/// Player ① (controller) has the microfluidic action set `𝒜₁ = 𝒜`; its
/// transitions are probabilistic per Section V-B, with forces derived from
/// the *observable* health matrix **H** (the full-information game used for
/// synthesis). Player ② (degradation) non-deterministically decrements
/// health levels. Because **H** is monotone non-increasing, every play
/// eventually stabilizes **H**, which is what justifies the paper's
/// partial-order reduction into the per-routing-job MDP
/// ([`crate::RoutingMdp`]).
///
/// # Examples
///
/// ```
/// use meda_core::{ActionConfig, DegradationMove, GameState, MedaGame, Player};
/// use meda_degradation::HealthLevel;
/// use meda_grid::{Cell, ChipDims, Grid, Rect};
///
/// let game = MedaGame::new(ChipDims::new(20, 20), 2, ActionConfig::default());
/// let s0 = game.initial_state(Rect::new(5, 5, 8, 8));
/// assert_eq!(s0.player, Player::Controller);
///
/// // Controller moves east; every outcome hands the turn to degradation.
/// let actions = game.controller_actions(&s0);
/// let (next, _p) = &game.controller_transitions(&s0, actions[0])[0];
/// assert_eq!(next.player, Player::Degradation);
///
/// // Degradation wears one MC, returning the turn.
/// let s2 = game.degradation_step(next, &DegradationMove::cells([Cell::new(9, 5)]));
/// assert_eq!(s2.player, Player::Controller);
/// assert!(s2.health[Cell::new(9, 5)] < s0.health[Cell::new(9, 5)]);
/// ```
#[derive(Debug, Clone)]
pub struct MedaGame {
    dims: ChipDims,
    bits: u8,
    config: ActionConfig,
}

impl MedaGame {
    /// Creates the game over a `W × H` chip with a `bits`-bit health sensor.
    #[must_use]
    pub fn new(dims: ChipDims, bits: u8, config: ActionConfig) -> Self {
        Self { dims, bits, config }
    }

    /// The chip dimensions.
    #[must_use]
    pub fn dims(&self) -> ChipDims {
        self.dims
    }

    /// The health-sensor resolution.
    #[must_use]
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// The action configuration for player ①.
    #[must_use]
    pub fn config(&self) -> &ActionConfig {
        &self.config
    }

    /// The initial state `s₀ = (δ⁽⁰⁾, H⁽⁰⁾, ①)` with a fully healthy chip.
    #[must_use]
    pub fn initial_state(&self, droplet: Rect) -> GameState {
        GameState {
            droplet,
            health: Grid::new(self.dims, HealthLevel::full(self.bits)),
            player: Player::Controller,
        }
    }

    /// Controller actions enabled in `state` (guards of Section V-B, with
    /// the chip boundary as the implicit hazard bound).
    ///
    /// # Panics
    ///
    /// Panics if it is not the controller's turn.
    #[must_use]
    pub fn controller_actions(&self, state: &GameState) -> Vec<Action> {
        assert_eq!(state.player, Player::Controller, "not controller's turn");
        let bounds = self.dims.bounds();
        Action::ALL
            .into_iter()
            .filter(|a| a.is_enabled(state.droplet, bounds, &self.config))
            .collect()
    }

    /// The probabilistic transition `γ(s, a, ·)` for a controller action:
    /// droplet outcomes per Section V-B with **H**-derived forces, turn
    /// passing to player ②.
    ///
    /// # Panics
    ///
    /// Panics if it is not the controller's turn.
    #[must_use]
    pub fn controller_transitions(
        &self,
        state: &GameState,
        action: Action,
    ) -> Vec<(GameState, f64)> {
        assert_eq!(state.player, Player::Controller, "not controller's turn");
        let field = HealthField::new(state.health.clone(), self.bits);
        transitions(state.droplet, action, &field)
            .into_iter()
            .map(
                |Outcome {
                     droplet,
                     probability,
                 }| {
                    (
                        GameState {
                            droplet,
                            health: state.health.clone(),
                            player: Player::Degradation,
                        },
                        probability,
                    )
                },
            )
            .collect()
    }

    /// The (deterministic) transition for a degradation move: each listed
    /// MC loses one health level (saturating at 0), turn returns to ①.
    ///
    /// # Panics
    ///
    /// Panics if it is not the degradation player's turn.
    #[must_use]
    pub fn degradation_step(&self, state: &GameState, mv: &DegradationMove) -> GameState {
        assert_eq!(state.player, Player::Degradation, "not degradation's turn");
        let mut health = state.health.clone();
        for &cell in &mv.cells {
            if let Some(h) = health.get_mut(cell) {
                *h = h.degraded_once();
            }
        }
        GameState {
            droplet: state.droplet,
            health,
            player: Player::Controller,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game() -> MedaGame {
        MedaGame::new(ChipDims::new(16, 16), 2, ActionConfig::default())
    }

    #[test]
    fn turns_alternate() {
        let g = game();
        let s0 = g.initial_state(Rect::new(4, 4, 7, 7));
        let a = g.controller_actions(&s0)[0];
        for (s1, _) in g.controller_transitions(&s0, a) {
            assert_eq!(s1.player, Player::Degradation);
            let s2 = g.degradation_step(&s1, &DegradationMove::none());
            assert_eq!(s2.player, Player::Controller);
        }
    }

    #[test]
    fn controller_probabilities_sum_to_one() {
        let g = game();
        let s0 = g.initial_state(Rect::new(4, 4, 7, 7));
        for a in g.controller_actions(&s0) {
            let total: f64 = g
                .controller_transitions(&s0, a)
                .iter()
                .map(|(_, p)| p)
                .sum();
            assert!((total - 1.0).abs() < 1e-12, "{a}");
        }
    }

    #[test]
    fn degradation_is_monotone_and_saturating() {
        let g = game();
        let s0 = g.initial_state(Rect::new(4, 4, 7, 7));
        let a = g.controller_actions(&s0)[0];
        let (s1, _) = g.controller_transitions(&s0, a).remove(0);
        let target = Cell::new(2, 2);
        let mut s = s1;
        for _ in 0..10 {
            s = g.degradation_step(&s, &DegradationMove::cells([target]));
            let (next, _) = g
                .controller_transitions(&s, Action::ALL[0])
                .into_iter()
                .next()
                .unwrap();
            s = next;
        }
        assert!(s.health[target].is_dead());
        // Other cells untouched.
        assert_eq!(s.health[Cell::new(9, 9)], HealthLevel::full(2));
    }

    #[test]
    fn off_chip_degradation_cells_ignored() {
        let g = game();
        let s0 = g.initial_state(Rect::new(4, 4, 7, 7));
        let a = g.controller_actions(&s0)[0];
        let (s1, _) = g.controller_transitions(&s0, a).remove(0);
        let s2 = g.degradation_step(&s1, &DegradationMove::cells([Cell::new(-3, 99)]));
        assert_eq!(s2.health, s0.health);
    }

    #[test]
    fn edge_droplet_cannot_leave_chip() {
        let g = game();
        let corner = Rect::new(1, 1, 3, 3);
        let s0 = g.initial_state(corner);
        for a in g.controller_actions(&s0) {
            let out = a.apply(corner);
            assert!(g.dims().contains_rect(out), "{a} leaves the chip");
        }
    }
}
