//! Property-style tests for the microelectrode-cell circuit model:
//! RC-waveform laws and sensing monotonicity over the capacitance range,
//! replayed over a deterministic seeded input space.

use meda_cell::{CellParams, HealthReading, RcWaveform, ScanChain, SensingCircuit};
use meda_grid::{ChipDims, Grid, Rect};
use meda_rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 256;

#[test]
fn rc_waveform_laws() {
    let mut rng = StdRng::seed_from_u64(0xCE11);
    for _ in 0..CASES {
        let r = rng.gen_range(0.1..10.0) * 1e6;
        let c = rng.gen_range(0.1..100.0) * 1e-12;
        let scale = rng.gen_range(1.1..5.0);
        let w = RcWaveform::new(r, c, 3.3);
        let tau = w.time_constant();
        assert!(w.voltage_at(tau) < w.voltage_at(2.0 * tau));
        // 1 − 1/e at one time constant.
        assert!((w.voltage_at(tau) / 3.3 - (1.0 - (-1.0f64).exp())).abs() < 1e-9);
        // Crossing time linear in C.
        let w2 = RcWaveform::new(r, c * scale, 3.3);
        let t1 = w.crossing_time(1.65).unwrap();
        let t2 = w2.crossing_time(1.65).unwrap();
        assert!((t2 / t1 - scale).abs() < 1e-9);
        // Capacitance recovery inverts exactly.
        let c_est = RcWaveform::capacitance_from_crossing(r, 3.3, 1.65, t1).unwrap();
        assert!((c_est - c).abs() / c < 1e-9);
    }
}

#[test]
fn sensing_is_monotone_in_capacitance() {
    let mut rng = StdRng::seed_from_u64(0xCE12);
    for _ in 0..CASES {
        let step: f64 = rng.gen();
        let params = CellParams::paper();
        let circuit = SensingCircuit::new(params);
        let lo = params.cap_healthy;
        let hi = params.cap_degraded + 1e-18;
        let mid = lo + (hi - lo) * step;
        let readings = [circuit.sense(lo), circuit.sense(mid), circuit.sense(hi)];
        assert!(readings[0] >= readings[1] && readings[1] >= readings[2]);
        assert_eq!(readings[0], HealthReading::Healthy);
        assert_eq!(readings[2], HealthReading::Degraded);
    }
}

#[test]
fn scan_chain_roundtrips() {
    let mut rng = StdRng::seed_from_u64(0xCE13);
    for _ in 0..CASES {
        let dims = ChipDims::new(rng.gen_range(1..12u32), rng.gen_range(1..12u32));
        let chain = ScanChain::new(dims);
        let mut pattern = Grid::new(dims, false);
        for _ in 0..rng.gen_range(0..5usize) {
            let (xa, ya) = (rng.gen_range(0..12), rng.gen_range(0..12));
            let (dw, dh) = (rng.gen_range(0..4), rng.gen_range(0..4));
            pattern.fill_rect(Rect::new(xa + 1, ya + 1, xa + 1 + dw, ya + 1 + dh), true);
        }
        let restored = chain.deserialize(&chain.serialize(&pattern)).unwrap();
        assert_eq!(restored, pattern);
    }
}

#[test]
fn droplet_sensing_is_health_invariant() {
    let mut rng = StdRng::seed_from_u64(0xCE14);
    for _ in 0..CASES {
        let step: f64 = rng.gen();
        let params = CellParams::paper();
        let circuit = SensingCircuit::new(params);
        let cap = params.cap_healthy + (params.cap_degraded - params.cap_healthy) * step;
        assert!(circuit.sense_droplet(cap, true));
        assert!(!circuit.sense_droplet(cap, false));
    }
}
