//! `meda-audit` — well-formedness verifier and value certificates for the
//! synthesis artifacts of *"Formal Synthesis of Adaptive Droplet Routing
//! for MEDA Biochips"* (DATE 2021).
//!
//! The paper's guarantees (`Pmax[◇goal]` reachability, `Rmin[◇goal]`
//! expected cycles, Table V probability-of-success) are statements about a
//! model — they hold only if the [`meda_core::RoutingMdp`] the solver
//! consumed is well-formed and the value vector it produced really is a
//! fixed point of the claimed Bellman operator. This crate re-checks both
//! from first principles, on an owned plain-old-data snapshot
//! ([`ModelArtifact`]), trusting neither the builder nor the solver:
//!
//! - [`audit_model`] — CSR structural integrity (monotone offsets, no
//!   dangling indices), stochasticity (each distribution sums to 1, no
//!   negative/NaN probabilities), goal/sink absorption, and a full
//!   reachability census (unreachable and dead states listed, not counted).
//! - [`audit_values`] / [`bellman_certificate`] — a one-backup
//!   ε-fixed-point *consistency* certificate, independent of solver
//!   trajectory. Note this is not a value guarantee: a vector stuck on an
//!   end-component fixed point has residual 0 while being far from `v*`.
//! - [`compute_bounds`] / [`verify_bounds`] — **sound** certified
//!   `[lo, hi]` value bounds by interval iteration over the maximal
//!   end-component quotient ([`meda_core::mec_decomposition`]), with
//!   `hi − lo ≤ 2ε` on convergence; this is the pass that actually bounds
//!   the distance to the true value.
//! - [`audit_strategy`] — totality and closure of the synthesized
//!   memoryless strategy over the states it can actually reach.
//! - [`evaluate_strategy`] / [`audit_strategy_value`] — exact evaluation
//!   of the strategy's induced Markov chain (SCC-blocked sparse Gaussian
//!   elimination), proving the shipped strategy attains a value inside
//!   the certified interval.
//!
//! [`audit_solution`] bundles the structural, residual, and strategy
//! checks for the common case; [`audit_solution_sound`] layers the bounds
//! certificate, bracket check, and exact strategy evaluation on top. The
//! `meda audit` CLI subcommand and `scripts/ci.sh` drive both over
//! freshly synthesized models. In debug builds the builder and solver
//! also invoke these checks through `debug_assert!`-level hooks, so
//! corruption is caught at construction during development.
//!
//! # Examples
//!
//! ```
//! use meda_audit::{audit_model, ModelArtifact};
//! use meda_core::{ActionConfig, RoutingMdp, UniformField};
//! use meda_grid::Rect;
//!
//! let mdp = RoutingMdp::build(
//!     Rect::new(1, 1, 2, 2),
//!     Rect::new(4, 4, 5, 5),
//!     Rect::new(1, 1, 5, 5),
//!     &UniformField::pristine(),
//!     &ActionConfig::cardinal_only(),
//! )?;
//! let art = ModelArtifact::from(&mdp);
//! assert!(audit_model(&art).is_clean());
//! # Ok::<(), meda_core::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod bounds;
mod certify;
mod eval;
mod model;
mod report;
mod strategy;

pub use artifact::ModelArtifact;
pub use bounds::{
    bracket_violations, compute_bounds, unsound_vi_fixture, verify_bounds, BoundsCertificate,
    BOUNDS_MAX_ITERATIONS, BOUNDS_SLACK,
};
pub use certify::{audit_values, bellman_certificate, certify_f32, Certificate, ValueKind};
pub use eval::{audit_strategy_value, evaluate_strategy, StrategyEvaluation, MAX_CHAIN_BLOCK};
pub use model::{audit_model, census, MASS_EPSILON};
pub use report::{AuditReport, Census, Violation};
pub use strategy::audit_strategy;

use meda_core::Action;

/// Default ε for value certificates: well above the solver's default
/// convergence threshold (`1e-9` on the sweep delta) but far below any
/// quantity the simulator acts on.
pub const CERTIFICATE_EPSILON: f64 = 1e-6;

/// Audits a complete solution — model, value vector, and strategy — in one
/// pass, returning the merged report.
///
/// Value and strategy checks run only when the structural audit is clean
/// (they index the CSR arrays, which corrupted offsets make unsafe).
#[must_use]
pub fn audit_solution(
    art: &ModelArtifact,
    values: &[f64],
    choice: &[Option<Action>],
    kind: ValueKind,
    epsilon: f64,
) -> AuditReport {
    let mut report = audit_model(art);
    if !report.is_clean() {
        return report;
    }
    let (value_violations, _cert) = audit_values(art, values, kind, epsilon);
    let values_ok = value_violations.is_empty();
    report.violations.extend(value_violations);
    if values_ok {
        report
            .violations
            .extend(audit_strategy(art, choice, values, kind));
    }
    report
}

/// The sound certification pass: structural audit, certified `[lo, hi]`
/// interval bounds re-verified from scratch, a bracket check that the
/// solver's value vector lies inside the interval at every state, and an
/// exact evaluation of the shipped strategy's induced chain whose initial
/// value must also land inside the interval.
///
/// Returns the merged report plus the bounds certificate when the
/// structural audit allowed the bounds pass to run. Unlike
/// [`audit_solution`], a clean report here *does* bound the distance to
/// the true value: `|v_i − v*_i| ≤ 2ε` for every state and the strategy
/// provably attains a value inside `[lo, hi]` at init.
#[must_use]
pub fn audit_solution_sound(
    art: &ModelArtifact,
    values: &[f64],
    choice: &[Option<Action>],
    kind: ValueKind,
    epsilon: f64,
) -> (AuditReport, Option<BoundsCertificate>) {
    let mut report = audit_model(art);
    if !report.is_clean() {
        return (report, None);
    }
    let cert = compute_bounds(art, kind, epsilon, BOUNDS_MAX_ITERATIONS);
    report.violations.extend(verify_bounds(art, &cert));
    report
        .violations
        .extend(bracket_violations(&cert, values, epsilon));
    report
        .violations
        .extend(audit_strategy_value(art, choice, kind, &cert));
    (report, Some(cert))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 3-state corridor: 0 →E→ 1 →E→ 2(goal), with a
    /// stay-in-place failure branch of mass 0.2 on each move.
    fn corridor() -> ModelArtifact {
        let east = Action::Move(meda_core::Dir::E);
        let west = Action::Move(meda_core::Dir::W);
        ModelArtifact {
            states: 3,
            init: 0,
            sink: None,
            goal_flags: vec![false, false, true],
            // state 0: {E}; state 1: {E, W}; state 2: goal, absorbing.
            state_choice_start: vec![0, 1, 3, 3],
            choice_action: vec![east, east, west],
            choice_branch_start: vec![0, 2, 4, 6],
            branch_target: vec![1, 0, 2, 1, 0, 1],
            branch_prob: vec![0.8, 0.2, 0.8, 0.2, 0.8, 0.2],
        }
    }

    /// Exact fixed-point values of the corridor under `Rmin` (each move
    /// succeeds with 0.8, so each cell costs 1/0.8 = 1.25 cycles).
    fn corridor_rmin() -> Vec<f64> {
        vec![2.5, 1.25, 0.0]
    }

    fn corridor_strategy() -> Vec<Option<Action>> {
        let east = Action::Move(meda_core::Dir::E);
        vec![Some(east), Some(east), None]
    }

    #[test]
    fn pristine_corridor_is_clean() {
        let art = corridor();
        let report = audit_model(&art);
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.census.reachable, 3);
        assert!(report.census.unreachable.is_empty());
        assert!(report.census.dead_ends.is_empty());
    }

    #[test]
    fn full_solution_certifies() {
        let art = corridor();
        let report = audit_solution(
            &art,
            &corridor_rmin(),
            &corridor_strategy(),
            ValueKind::ExpectedCycles,
            CERTIFICATE_EPSILON,
        );
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn reachability_values_certify() {
        let art = corridor();
        let (v, cert) = audit_values(
            &art,
            &[1.0, 1.0, 1.0],
            ValueKind::Reachability,
            CERTIFICATE_EPSILON,
        );
        assert!(v.is_empty());
        assert_eq!(cert.max_residual, 0.0);
    }

    #[test]
    fn non_monotone_offset_is_flagged() {
        let mut art = corridor();
        art.state_choice_start[2] = 0;
        let report = audit_model(&art);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonMonotoneOffsets { .. })));
    }

    #[test]
    fn offset_overrunning_choices_is_flagged() {
        let mut art = corridor();
        art.state_choice_start[3] = 4;
        let report = audit_model(&art);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OffsetOutOfRange { .. })));
    }

    #[test]
    fn negative_and_nan_probabilities_are_flagged() {
        for bad in [-0.2, f64::NAN, 0.0, 1.5] {
            let mut art = corridor();
            art.branch_prob[1] = bad;
            let report = audit_model(&art);
            assert!(
                report
                    .violations
                    .iter()
                    .any(|v| matches!(v, Violation::BadProbability { .. })),
                "probability {bad} not flagged"
            );
        }
    }

    #[test]
    fn mass_mismatch_is_flagged() {
        let mut art = corridor();
        art.branch_prob[0] = 0.85;
        let report = audit_model(&art);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MassMismatch { choice: 0, .. })));
    }

    #[test]
    fn dangling_target_is_flagged() {
        let mut art = corridor();
        art.branch_target[2] = 7;
        let report = audit_model(&art);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DanglingTarget { .. })));
    }

    #[test]
    fn goal_flag_corruption_is_flagged() {
        // Flipping the goal flag onto a state with choices breaks
        // absorption; flipping the real goal off leaves a dead end.
        let mut on = corridor();
        on.goal_flags[1] = true;
        assert!(audit_model(&on)
            .violations
            .iter()
            .any(|v| matches!(v, Violation::GoalNotAbsorbing { state: 1, .. })));

        let mut off = corridor();
        off.goal_flags[2] = false;
        let report = audit_model(&off);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DeadEnd { state: 2 })));
        assert_eq!(report.census.dead_ends, vec![2]);
    }

    #[test]
    fn unreachable_state_is_listed() {
        // Retarget every branch into state 0's orbit so state 2 detaches:
        // send state 1's east-success to itself instead of the goal.
        let mut art = corridor();
        art.branch_target[2] = 0;
        let report = audit_model(&art);
        assert_eq!(report.census.unreachable, vec![2]);
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::UnreachableState { state: 2 })));
    }

    #[test]
    fn wrong_values_fail_certificate() {
        let art = corridor();
        let mut values = corridor_rmin();
        values[0] += 0.5;
        let (violations, cert) = audit_values(
            &art,
            &values,
            ValueKind::ExpectedCycles,
            CERTIFICATE_EPSILON,
        );
        assert!(!violations.is_empty());
        assert!(cert.max_residual > 0.1);
    }

    #[test]
    fn inf_where_finite_expected_is_inconsistent() {
        let art = corridor();
        let mut values = corridor_rmin();
        values[1] = f64::INFINITY;
        let cert = bellman_certificate(&art, &values, ValueKind::ExpectedCycles);
        assert!(!cert.inconsistent.is_empty());
        assert!(!cert.certifies(CERTIFICATE_EPSILON));
    }

    #[test]
    fn out_of_range_reachability_is_flagged() {
        let art = corridor();
        let cert = bellman_certificate(&art, &[1.2, 1.0, 1.0], ValueKind::Reachability);
        assert_eq!(cert.out_of_range, vec![0]);
    }

    #[test]
    fn strategy_mutations_are_flagged() {
        let art = corridor();
        let values = corridor_rmin();

        let mut undecided = corridor_strategy();
        undecided[1] = None;
        assert!(
            audit_strategy(&art, &undecided, &values, ValueKind::ExpectedCycles)
                .iter()
                .any(|v| matches!(v, Violation::StrategyIncomplete { state: 1 }))
        );

        let mut disabled = corridor_strategy();
        disabled[0] = Some(Action::Move(meda_core::Dir::N));
        assert!(
            audit_strategy(&art, &disabled, &values, ValueKind::ExpectedCycles)
                .iter()
                .any(|v| matches!(v, Violation::StrategyInvalidAction { state: 0, .. }))
        );

        let mut at_goal = corridor_strategy();
        at_goal[2] = Some(Action::Move(meda_core::Dir::E));
        assert!(
            audit_strategy(&art, &at_goal, &values, ValueKind::ExpectedCycles)
                .iter()
                .any(|v| matches!(v, Violation::StrategyChoiceAtAbsorbing { state: 2 }))
        );
    }

    #[test]
    fn hopeless_states_may_be_undecided() {
        // Pmax = 0 everywhere: a strategy of all-None is total.
        let art = corridor();
        let zeros = vec![0.0, 0.0, 0.0];
        let none = vec![None, None, None];
        assert!(audit_strategy(&art, &none, &zeros, ValueKind::Reachability).is_empty());
    }
}
