//! Reusable domain arbitraries: grids, degradation/health matrices,
//! rectangles, droplets, fault plans, and bioassay sequencing graphs.
//!
//! Everything shrinks toward the *small and pristine* corner of its
//! domain: dimensions toward their minimum, droplets toward `1×1` at the
//! low corner, degradation toward the healthy end of the generated range,
//! fault plans toward empty, sequencing graphs toward the two-dispense
//! minimum — so a shrunk counterexample is the simplest chip that still
//! exhibits the bug.

use meda_bioassay::SequencingGraph;
use meda_cell::StuckBit;
use meda_degradation::{quantize_health, HealthLevel};
use meda_grid::{Cell, ChipDims, Grid, Rect};
use meda_sim::{DefectFront, FaultPlan, IntermittentCell, SuddenDeath};

use crate::gen::{boolean, choose, choose_i32, choose_u32, choose_usize, f64_range, vec_of, Gen};

/// Chip dimensions with each side in `lo..=hi`, shrinking toward `lo×lo`.
#[must_use]
pub fn dims(lo: u32, hi: u32) -> Gen<ChipDims> {
    choose_u32(lo, hi)
        .zip(choose_u32(lo, hi))
        .map(|&(w, h)| ChipDims::new(w, h))
}

/// A cell on the chip (1-based, like the paper).
#[must_use]
pub fn cell_in(dims: ChipDims) -> Gen<Cell> {
    choose_i32(1, dims.width as i32)
        .zip(choose_i32(1, dims.height as i32))
        .map(|&(x, y)| Cell::new(x, y))
}

/// An unconstrained cell with both coordinates in `lo..=hi` (geometry
/// tests exercise off-chip coordinates too).
#[must_use]
pub fn cell_within(lo: i32, hi: i32) -> Gen<Cell> {
    choose_i32(lo, hi)
        .zip(choose_i32(lo, hi))
        .map(|&(x, y)| Cell::new(x, y))
}

/// A non-empty rectangle with its anchor in `lo..=hi` and each extent at
/// most `max_extent` cells beyond the anchor.
#[must_use]
pub fn rect_within(lo: i32, hi: i32, max_extent: u32) -> Gen<Rect> {
    let corner = choose_i32(lo, hi).zip(choose_i32(lo, hi));
    let extent = choose_i32(0, max_extent as i32).zip(choose_i32(0, max_extent as i32));
    corner
        .zip(extent)
        .map(|&((xa, ya), (w, h))| Rect::new(xa, ya, xa + w, ya + h))
}

/// A droplet of side `1..=max_side` placed anywhere inside `bounds`,
/// shrinking toward a `1×1` droplet at the bounds' low corner.
///
/// # Panics
///
/// Panics if `bounds` is degenerate (empty on either axis).
#[must_use]
pub fn droplet_in(bounds: Rect, max_side: u32) -> Gen<Rect> {
    let bw = bounds.width();
    let bh = bounds.height();
    assert!(bw >= 1 && bh >= 1, "droplet_in: degenerate bounds");
    let side = choose_u32(1, max_side.min(bw)).zip(choose_u32(1, max_side.min(bh)));
    side.flat_map(move |&(w, h)| {
        let xs = choose_i32(bounds.xa, bounds.xb - w as i32 + 1);
        let ys = choose_i32(bounds.ya, bounds.yb - h as i32 + 1);
        xs.zip(ys).map(move |&(x, y)| Rect::with_size(x, y, w, h))
    })
}

/// A ground-truth degradation matrix **D** with every cell in `[lo, hi)`,
/// shrinking each cell toward `lo` (interpret `lo` as the healthy end:
/// generate `1.0 - d` if shrinking should mean healing).
#[must_use]
pub fn degradation_matrix(dims: ChipDims, lo: f64, hi: f64) -> Gen<Grid<f64>> {
    let n = dims.cell_count();
    vec_of(f64_range(lo, hi), n, n).map(move |values| {
        Grid::from_fn(dims, |c: Cell| dims.index_of(c).map_or(lo, |i| values[i]))
    })
}

/// A quantized health matrix **H** = `⌊2^bits · D⌋` derived from a random
/// degradation matrix — the sensed view of [`degradation_matrix`].
#[must_use]
pub fn health_matrix(dims: ChipDims, bits: u8) -> Gen<Grid<HealthLevel>> {
    degradation_matrix(dims, 0.0, 1.0).map(move |d| d.map(|_, v| quantize_health(*v, bits)))
}

/// A sensor stuck bit anywhere on the chip; stuck-at-0 shrinks first
/// (`reads: false` is the "hole" case the reconstruction handles best).
#[must_use]
pub fn stuck_bit(dims: ChipDims) -> Gen<StuckBit> {
    cell_in(dims)
        .zip(boolean())
        .map(|&(cell, reads)| StuckBit { cell, reads })
}

/// A chaos fault plan drawing from every channel: up to 6 stuck sensor
/// bits, 3 isolated scheduled deaths, 2 clustered `2 × 2` deaths, one
/// whole-row loss, one growing defect front, and 3 intermittent cells.
/// Shrinks toward [`FaultPlan::none`].
#[must_use]
pub fn fault_plan(dims: ChipDims, k_max: u64) -> Gen<FaultPlan> {
    let hi = k_max.max(1) as i64;
    let deaths = vec_of(
        cell_in(dims)
            .zip(choose(0, hi))
            .map(|&(cell, at)| SuddenDeath {
                cell,
                at_cycle: at.unsigned_abs(),
            }),
        0,
        3,
    );
    // Clustered deaths: one anchor cell expands into the chip-clipped
    // `2 × 2` block, every cell dying in the same cycle.
    let clusters = vec_of(
        cell_in(dims).zip(choose(0, hi)).map(move |t| {
            let &(anchor, at) = t;
            let block = Rect::new(
                anchor.x,
                anchor.y,
                (anchor.x + 1).min(dims.width as i32),
                (anchor.y + 1).min(dims.height as i32),
            );
            block
                .cells()
                .map(|cell| SuddenDeath {
                    cell,
                    at_cycle: at.unsigned_abs(),
                })
                .collect::<Vec<_>>()
        }),
        0,
        2,
    );
    // Whole-row loss: every cell of one row dies in one cycle.
    let rows = vec_of(
        choose_i32(1, dims.height as i32)
            .zip(choose(0, hi))
            .map(move |t| {
                let &(y, at) = t;
                (1..=dims.width as i32)
                    .map(|x| SuddenDeath {
                        cell: Cell::new(x, y),
                        at_cycle: at.unsigned_abs(),
                    })
                    .collect::<Vec<_>>()
            }),
        0,
        1,
    );
    let fronts = vec_of(
        cell_in(dims)
            .zip(choose(0, hi))
            .zip(choose(1, (hi / 8).max(1)))
            .map(|&((seed, start), period)| DefectFront {
                seed,
                start_cycle: start.unsigned_abs(),
                period: period.unsigned_abs().max(1),
            }),
        0,
        1,
    );
    let intermittent = vec_of(
        cell_in(dims)
            .zip(f64_range(0.0, 0.5))
            .map(|&(cell, probability)| IntermittentCell { cell, probability }),
        0,
        3,
    );
    let stuck = vec_of(stuck_bit(dims), 0, 6);
    stuck
        .zip(deaths)
        .zip(intermittent)
        .zip(clusters)
        .zip(rows)
        .zip(fronts)
        .map(|t| {
            let (((((stuck_sensors, isolated), intermittent), clusters), rows), fronts) = t;
            let mut sudden_deaths = isolated.clone();
            sudden_deaths.extend(clusters.iter().flatten().copied());
            sudden_deaths.extend(rows.iter().flatten().copied());
            FaultPlan {
                sudden_deaths,
                intermittent: intermittent.clone(),
                stuck_sensors: stuck_sensors.clone(),
                defect_fronts: fronts.clone(),
            }
        })
}

/// A small, always-valid bioassay sequencing graph: `2..=4` dispenses
/// folded into a mix chain and terminated by an output. Shrinks toward
/// the minimal two-dispense, one-mix assay.
#[must_use]
pub fn sequencing_graph(dims: ChipDims) -> Gen<SequencingGraph> {
    let positions = vec_of(cell_in(dims), 3, 9);
    let n_dispense = choose_usize(2, 4);
    n_dispense.zip(positions).map(move |t| {
        let (n, cells) = t;
        let n = *n;
        let at = |i: usize| -> (f64, f64) {
            let c = cells[i % cells.len()];
            (f64::from(c.x), f64::from(c.y))
        };
        let mut sg = SequencingGraph::new("generated");
        let mut frontier = Vec::new();
        for i in 0..n {
            frontier.push(sg.dispense(at(i), (2, 2)));
        }
        let mut k = n;
        while frontier.len() > 1 {
            let a = frontier.remove(0);
            let b = frontier.remove(0);
            let m = sg.mix(&[a, b], at(k));
            k += 1;
            frontier.push(m);
        }
        let last = frontier[0];
        sg.output(last, at(k));
        sg
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_rng::{SeedableRng, StdRng};

    #[test]
    fn droplets_stay_inside_bounds_under_shrinking() {
        let bounds = Rect::new(1, 1, 9, 7);
        let g = droplet_in(bounds, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let t = g.generate(&mut rng);
            let mut stack = vec![t];
            let mut budget = 100;
            while let Some(node) = stack.pop() {
                assert!(bounds.contains_rect(*node.value()), "{}", node.value());
                budget -= 1;
                if budget == 0 {
                    break;
                }
                stack.extend(node.children());
            }
        }
    }

    #[test]
    fn generated_sequencing_graphs_validate() {
        let g = sequencing_graph(ChipDims::PAPER);
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..50 {
            let t = g.generate(&mut rng);
            assert!(t.value().validate().is_ok());
            for c in t.children() {
                assert!(c.value().validate().is_ok());
            }
        }
    }

    #[test]
    fn health_matrix_is_consistent_with_quantization() {
        let g = health_matrix(ChipDims::new(4, 4), 2);
        let mut rng = StdRng::seed_from_u64(13);
        let t = g.generate(&mut rng);
        for (_, h) in t.value().iter() {
            assert!(h.level() <= 3);
        }
    }
}
