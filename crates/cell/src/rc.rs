/// First-order RC charging waveform of the MC sensing node.
///
/// During a sensing phase the bottom plate is connected through the sense
/// path (resistance `R`) to VDD and charges towards it:
/// `V(t) = VDD · (1 − e^{−t/RC})`. The DFFs sample whether the node has
/// crossed the logic threshold at their (skewed) clock edges. The same
/// expression, with `Vpp` in place of VDD, is the charging law used in the
/// paper's PCB degradation experiment (Section IV-A).
///
/// # Examples
///
/// ```
/// use meda_cell::RcWaveform;
///
/// let w = RcWaveform::new(1.0e6, 1.0e-9, 3.3); // 1 MΩ, 1 nF, 3.3 V
/// assert!(w.voltage_at(0.0) < 1e-12);
/// // After 5 time constants the node is essentially at VDD.
/// assert!((w.voltage_at(5.0e-3) - 3.3).abs() < 0.05);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcWaveform {
    resistance: f64,
    capacitance: f64,
    v_supply: f64,
}

impl RcWaveform {
    /// Creates a charging waveform for the given RC pair and supply voltage.
    ///
    /// # Panics
    ///
    /// Panics if any argument is not finite and positive.
    #[must_use]
    pub fn new(resistance: f64, capacitance: f64, v_supply: f64) -> Self {
        assert!(
            resistance > 0.0 && resistance.is_finite(),
            "resistance must be positive"
        );
        assert!(
            capacitance > 0.0 && capacitance.is_finite(),
            "capacitance must be positive"
        );
        assert!(
            v_supply > 0.0 && v_supply.is_finite(),
            "supply voltage must be positive"
        );
        Self {
            resistance,
            capacitance,
            v_supply,
        }
    }

    /// The time constant `τ = R·C` in seconds.
    #[must_use]
    pub fn time_constant(&self) -> f64 {
        self.resistance * self.capacitance
    }

    /// Node voltage at time `t ≥ 0` (clamped to 0 for negative `t`).
    #[must_use]
    pub fn voltage_at(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            self.v_supply * (1.0 - (-t / self.time_constant()).exp())
        }
    }

    /// Time at which the node first reaches `v_threshold`, or `None` if the
    /// threshold is at or above the supply (never reached).
    #[must_use]
    pub fn crossing_time(&self, v_threshold: f64) -> Option<f64> {
        if v_threshold <= 0.0 {
            return Some(0.0);
        }
        if v_threshold >= self.v_supply {
            return None;
        }
        Some(self.time_constant() * (self.v_supply / (self.v_supply - v_threshold)).ln())
    }

    /// Whether the node has crossed `v_threshold` by time `t` — exactly what
    /// a DFF clocked at `t` captures.
    #[must_use]
    pub fn crossed_by(&self, v_threshold: f64, t: f64) -> bool {
        self.voltage_at(t) >= v_threshold
    }

    /// Recovers the capacitance from an observed threshold-crossing time,
    /// inverting `t = R·C·ln(V/(V−Vth))` — the oscilloscope read-out used in
    /// the paper's PCB experiment to track electrode degradation.
    ///
    /// Returns `None` if the threshold is not strictly between 0 and the
    /// supply voltage.
    #[must_use]
    pub fn capacitance_from_crossing(
        resistance: f64,
        v_supply: f64,
        v_threshold: f64,
        crossing_time: f64,
    ) -> Option<f64> {
        if v_threshold <= 0.0 || v_threshold >= v_supply || crossing_time <= 0.0 {
            return None;
        }
        Some(crossing_time / (resistance * (v_supply / (v_supply - v_threshold)).ln()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_monotonically_increases() {
        let w = RcWaveform::new(1e6, 1e-12, 3.3);
        let mut prev = -1.0;
        for i in 0..100 {
            let v = w.voltage_at(i as f64 * 1e-7);
            assert!(v >= prev);
            prev = v;
        }
        assert!(prev < 3.3);
    }

    #[test]
    fn crossing_time_matches_voltage() {
        let w = RcWaveform::new(2e6, 3e-12, 3.3);
        let t = w.crossing_time(1.65).unwrap();
        assert!((w.voltage_at(t) - 1.65).abs() < 1e-9);
    }

    #[test]
    fn crossing_time_scales_linearly_with_capacitance() {
        let w1 = RcWaveform::new(1e6, 1e-12, 3.3);
        let w2 = RcWaveform::new(1e6, 2e-12, 3.3);
        let t1 = w1.crossing_time(1.0).unwrap();
        let t2 = w2.crossing_time(1.0).unwrap();
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_threshold_is_none() {
        let w = RcWaveform::new(1e6, 1e-12, 3.3);
        assert_eq!(w.crossing_time(3.3), None);
        assert_eq!(w.crossing_time(5.0), None);
    }

    #[test]
    fn capacitance_recovery_roundtrip() {
        let r = 1e6;
        let c = 47e-12;
        let w = RcWaveform::new(r, c, 200.0);
        let t = w.crossing_time(100.0).unwrap();
        let c_est = RcWaveform::capacitance_from_crossing(r, 200.0, 100.0, t).unwrap();
        assert!((c_est - c).abs() / c < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacitance must be positive")]
    fn zero_capacitance_rejected() {
        let _ = RcWaveform::new(1e6, 0.0, 3.3);
    }
}
