//! Utility: nominal (pristine-chip) run length of every benchmark
//! bioassay — the calibration quantity the Fig. 15/16 harnesses scale
//! their cycle budgets from.
#![forbid(unsafe_code)]

use meda_bioassay::{benchmarks, RjHelper};
use meda_grid::ChipDims;
use meda_rng::SeedableRng;
use meda_sim::{BaselineRouter, BioassayRunner, Biochip, DegradationConfig, RunConfig};

fn main() {
    let dims = ChipDims::PAPER;
    println!("nominal run lengths on a pristine {dims} chip (baseline router):\n");
    for sg in benchmarks::evaluation_suite() {
        let plan = RjHelper::new(dims)
            .plan(&sg)
            .expect("benchmark plans cleanly");
        let mut rng = meda_rng::StdRng::seed_from_u64(1);
        let mut chip = Biochip::generate(dims, &DegradationConfig::pristine(), &mut rng);
        let mut router = BaselineRouter::new();
        let outcome = BioassayRunner::new(RunConfig {
            k_max: 100_000,
            record_actuation: false,
            sensed_feedback: false,
        })
        .run(&plan, &mut chip, &mut router, &mut rng);
        println!(
            "  {:18} {:>4} cycles  ({} ops, {} routing jobs, {:?})",
            sg.name(),
            outcome.cycles,
            plan.operations().len(),
            plan.total_jobs(),
            outcome.status,
        );
    }
}
