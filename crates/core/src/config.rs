/// Configuration of the enabled microfluidic action classes and the
/// aspect-ratio guard bound `r` (Section V-B).
///
/// The paper guards shape morphing so the droplet aspect ratio stays within
/// `[1/r, r]` ("droplet aspect ratio may not go above 2/1 or below 1/2"),
/// hence the default `aspect_ratio_max = 2.0`. The class toggles support the
/// ablation benches called out in `DESIGN.md` §5.
///
/// # Examples
///
/// ```
/// use meda_core::ActionConfig;
///
/// let full = ActionConfig::default();
/// assert!(full.double_step && full.ordinal && full.morphing);
///
/// let cardinal_only = ActionConfig::cardinal_only();
/// assert!(!cardinal_only.double_step);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActionConfig {
    /// Maximum allowed aspect ratio `r ≥ 1` (allowed range `[1/r, r]`).
    pub aspect_ratio_max: f64,
    /// Whether double-step cardinal movements `𝒜_dd` are available.
    pub double_step: bool,
    /// Whether ordinal movements `𝒜_dd'` are available.
    pub ordinal: bool,
    /// Whether morphing `𝒜_↓ ∪ 𝒜_↑` is available.
    pub morphing: bool,
}

impl ActionConfig {
    /// Only single-step cardinal moves — the minimal action set, and the
    /// configuration matching the paper's Table V model sizes.
    #[must_use]
    pub const fn cardinal_only() -> Self {
        Self {
            aspect_ratio_max: 2.0,
            double_step: false,
            ordinal: false,
            morphing: false,
        }
    }

    /// Cardinal + ordinal + double-step moves, no morphing.
    #[must_use]
    pub const fn moves_only() -> Self {
        Self {
            aspect_ratio_max: 2.0,
            double_step: true,
            ordinal: true,
            morphing: false,
        }
    }
}

impl Default for ActionConfig {
    fn default() -> Self {
        Self {
            aspect_ratio_max: 2.0,
            double_step: true,
            ordinal: true,
            morphing: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, Dir, Ordinal};
    use meda_grid::Rect;

    #[test]
    fn cardinal_only_enables_exactly_four_actions_in_open_space() {
        let config = ActionConfig::cardinal_only();
        let bounds = Rect::new(-100, -100, 100, 100);
        let d = Rect::new(0, 0, 3, 3);
        let enabled: Vec<_> = Action::ALL
            .into_iter()
            .filter(|a| a.is_enabled(d, bounds, &config))
            .collect();
        assert_eq!(enabled.len(), 4);
        assert!(enabled.iter().all(|a| matches!(a, Action::Move(_))));
    }

    #[test]
    fn default_enables_all_classes_for_a_4x4() {
        let config = ActionConfig::default();
        let bounds = Rect::new(-100, -100, 100, 100);
        let d = Rect::new(0, 0, 3, 3); // 4×4: doubles enabled both axes
        let enabled = Action::ALL
            .into_iter()
            .filter(|a| a.is_enabled(d, bounds, &config))
            .count();
        // 4 moves + 4 doubles + 4 ordinals + 8 morphs (4×4 → 5×3/3×5, AR 5/3 ≤ 2).
        assert_eq!(enabled, 20);
    }

    #[test]
    fn moves_only_excludes_morphing() {
        let config = ActionConfig::moves_only();
        let bounds = Rect::new(-100, -100, 100, 100);
        let d = Rect::new(0, 0, 3, 3);
        assert!(!Action::Widen(Ordinal::NE).is_enabled(d, bounds, &config));
        assert!(Action::MoveDouble(Dir::N).is_enabled(d, bounds, &config));
    }
}
