//! Export sinks: the aggregated `telemetry.json` summary and the JSONL
//! span-event stream.
//!
//! Both sinks are deterministic given a [`Summary`] / event list: names are
//! sorted (the registry's `BTreeMap`s guarantee it), object keys are
//! emitted in a fixed order, and all times are run-relative nanoseconds —
//! never wall-clock timestamps (DESIGN.md §11).

use crate::histogram::bucket_floor;
use crate::json::Json;
use crate::registry::Summary;
use crate::span::SpanEvent;

/// Schema tag stamped into every aggregated summary document.
pub const SCHEMA: &str = "meda-telemetry/1";

/// Renders a [`Summary`] as the aggregated `telemetry.json` document.
///
/// Layout:
/// ```json
/// {"schema":"meda-telemetry/1",
///  "spans":[{"path":..,"depth":..,"count":..,"total_ns":..,"min_ns":..,"max_ns":..}],
///  "counters":[{"name":..,"value":..}],
///  "histograms":[{"name":..,"count":..,"sum":..,"min":..,"max":..,
///                 "buckets":[{"floor":..,"count":..}]}]}
/// ```
#[must_use]
pub fn summary_to_json(summary: &Summary) -> Json {
    let spans = summary
        .spans
        .iter()
        .map(|s| {
            Json::Obj(vec![
                ("path".into(), Json::str(&s.path)),
                ("depth".into(), Json::u64(s.depth as u64)),
                ("count".into(), Json::u64(s.count)),
                ("total_ns".into(), Json::u64(s.total_ns)),
                ("min_ns".into(), Json::u64(s.min_ns)),
                ("max_ns".into(), Json::u64(s.max_ns)),
            ])
        })
        .collect();
    let counters = summary
        .counters
        .iter()
        .map(|c| {
            Json::Obj(vec![
                ("name".into(), Json::str(&c.name)),
                ("value".into(), Json::u64(c.value)),
            ])
        })
        .collect();
    let histograms = summary
        .histograms
        .iter()
        .map(|h| {
            let buckets = h
                .snapshot
                .buckets
                .iter()
                .map(|&(idx, n)| {
                    Json::Obj(vec![
                        ("floor".into(), Json::u64(bucket_floor(idx))),
                        ("count".into(), Json::u64(n)),
                    ])
                })
                .collect();
            Json::Obj(vec![
                ("name".into(), Json::str(&h.name)),
                ("count".into(), Json::u64(h.snapshot.count)),
                ("sum".into(), Json::u64(h.snapshot.sum)),
                ("min".into(), Json::u64(h.snapshot.min)),
                ("max".into(), Json::u64(h.snapshot.max)),
                ("buckets".into(), Json::Arr(buckets)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("schema".into(), Json::str(SCHEMA)),
        ("spans".into(), Json::Arr(spans)),
        ("counters".into(), Json::Arr(counters)),
        ("histograms".into(), Json::Arr(histograms)),
    ])
}

/// Renders a [`Summary`] as a `telemetry.json` string (single line plus a
/// trailing newline; byte-deterministic).
#[must_use]
pub fn summary_to_string(summary: &Summary) -> String {
    let mut s = summary_to_json(summary).to_string();
    s.push('\n');
    s
}

/// Renders captured span events as a JSONL stream — one
/// `{"path":..,"depth":..,"start_ns":..,"dur_ns":..}` object per line, in
/// completion order. `start_ns` is relative to the registry epoch.
#[must_use]
pub fn events_to_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let line = Json::Obj(vec![
            ("path".into(), Json::str(&e.path)),
            ("depth".into(), Json::u64(e.depth as u64)),
            ("start_ns".into(), Json::u64(e.start_ns)),
            ("dur_ns".into(), Json::u64(e.dur_ns)),
        ]);
        out.push_str(&line.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn summary_document_has_stable_top_level_keys() {
        let r = Registry::new();
        r.add("a", 1);
        r.histogram("h").record(3);
        {
            let _s = r.span("root");
        }
        let doc = summary_to_json(&r.summary());
        let keys: Vec<&str> = doc
            .as_obj()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["schema", "spans", "counters", "histograms"]);
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SCHEMA),
            "{doc}"
        );
        // Round-trips through the parser.
        let text = summary_to_string(&r.summary());
        let back = Json::parse(text.trim()).expect("parse");
        assert_eq!(back.get("schema").and_then(Json::as_str), Some(SCHEMA));
    }

    #[test]
    fn jsonl_emits_one_line_per_event() {
        let r = Registry::new();
        r.set_capture(true);
        {
            let _a = r.span("a");
            let _b = r.span("b");
        }
        let text = events_to_jsonl(&r.take_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = Json::parse(line).expect("each line parses");
            assert!(v.get("path").is_some());
            assert!(v.get("dur_ns").is_some());
        }
    }
}
