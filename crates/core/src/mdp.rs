use std::fmt;

use meda_grid::Rect;

use crate::transition::TransitionCache;
use crate::{Action, ActionConfig, ForceProvider, Outcome};

/// Sentinel for "no entry" in the dense index and offset tables.
const EMPTY: u32 = u32::MAX;

/// A perfect dense index over droplet rectangles within the hazard
/// bounds: state lookup is two array reads, no hashing, no allocation on
/// the hot path.
///
/// Rectangles are keyed by `(width, height)` pages; each page holds one
/// slot per anchor position `(xa, ya)` that keeps the rectangle inside
/// the bounds. Pages are allocated lazily — a routing job only ever
/// visits a handful of shapes (morphing preserves the half-perimeter),
/// so the live footprint stays near the state count rather than the
/// full `O(n_x² n_y²)` rectangle space.
#[derive(Debug, Clone)]
struct DenseIndex {
    bounds: Rect,
    nx: usize,
    ny: usize,
    /// Per `(w, h)`: starting offset of that shape's page in `slots`,
    /// or [`EMPTY`] while unallocated. Indexed `(h-1)·nx + (w-1)`.
    page_offset: Vec<u32>,
    /// State index per anchor position, or [`EMPTY`].
    slots: Vec<u32>,
    /// Last shape inserted with its page base and row stride — without
    /// morphing every lookup hits one shape, skipping the page table.
    last_shape: (usize, usize),
    last_base: usize,
    last_stride: usize,
}

impl DenseIndex {
    fn new(bounds: Rect) -> Self {
        let nx = bounds.width() as usize;
        let ny = bounds.height() as usize;
        Self {
            bounds,
            nx,
            ny,
            page_offset: vec![EMPTY; nx * ny],
            slots: Vec::new(),
            last_shape: (0, 0),
            last_base: 0,
            last_stride: 0,
        }
    }

    /// The slot for `r`, allocating its `(w, h)` page on first use.
    /// `r` must lie within the bounds.
    fn slot_index(&mut self, r: Rect) -> usize {
        let w = r.width() as usize;
        let h = r.height() as usize;
        debug_assert!(self.bounds.contains_rect(r));
        let (base, stride) = if (w, h) == self.last_shape {
            (self.last_base, self.last_stride)
        } else {
            let key = (h - 1) * self.nx + (w - 1);
            let page_len = (self.nx - w + 1) * (self.ny - h + 1);
            let base = if self.page_offset[key] == EMPTY {
                let base = self.slots.len();
                self.page_offset[key] =
                    u32::try_from(base).expect("dense index exceeds u32 address space");
                self.slots.resize(base + page_len, EMPTY);
                base
            } else {
                self.page_offset[key] as usize
            };
            self.last_shape = (w, h);
            self.last_base = base;
            self.last_stride = self.nx - w + 1;
            (base, self.last_stride)
        };
        let dx = (r.xa - self.bounds.xa) as usize;
        let dy = (r.ya - self.bounds.ya) as usize;
        base + dy * stride + dx
    }

    /// O(1) lookup without allocation; `None` for rectangles outside the
    /// bounds or never inserted.
    fn get(&self, r: Rect) -> Option<usize> {
        if !self.bounds.contains_rect(r) {
            return None;
        }
        let w = r.width() as usize;
        let h = r.height() as usize;
        let base = self.page_offset[(h - 1) * self.nx + (w - 1)];
        if base == EMPTY {
            return None;
        }
        let dx = (r.xa - self.bounds.xa) as usize;
        let dy = (r.ya - self.bounds.ya) as usize;
        let v = self.slots[base as usize + dy * (self.nx - w + 1) + dx];
        (v != EMPTY).then_some(v as usize)
    }
}

/// The Markov decision process induced from the MEDA game for one routing
/// job (Section VI-C): the health matrix is frozen at its current value
/// (partial-order reduction over player ②'s moves) and the droplet is
/// confined to the hazard bounds `δ_h`, so states are droplet rectangles.
///
/// * **States** — droplet locations reachable from `start` under the
///   enabled actions, plus the absorbing goal states (droplets satisfying
///   the `goal` label `x_a ≥ x_ag ∧ y_a ≥ y_ag ∧ x_b ≤ x_bg ∧ y_b ≤ y_bg`).
/// * **Choices** — guard-enabled actions per non-goal state; actions whose
///   successful outcome would leave the hazard bounds are disabled, which
///   makes `□¬hazard` hold along every path (failed moves stay in place).
/// * **Transitions** — the Section V-B outcome distributions under the
///   frozen force field.
///
/// Transitions are stored in a CSR (compressed-sparse-row) layout — flat
/// successor/probability arrays with per-state choice and per-choice
/// branch offsets — so `meda-synth`'s value-iteration sweeps stream
/// through memory linearly without chasing per-state `Vec`s. State lookup
/// uses a perfect dense index over `(xa, ya, w, h)` instead of a hash
/// map.
///
/// # Examples
///
/// ```
/// use meda_core::{ActionConfig, RoutingMdp, UniformField};
/// use meda_grid::Rect;
///
/// let mdp = RoutingMdp::build(
///     Rect::new(1, 1, 3, 3),    // start
///     Rect::new(8, 8, 10, 10),  // goal
///     Rect::new(1, 1, 10, 10),  // hazard bounds
///     &UniformField::pristine(),
///     &ActionConfig::cardinal_only(),
/// )?;
/// // 8×8 droplet positions in a 10×10 area.
/// assert_eq!(mdp.stats().states, 64);
/// assert!(mdp.is_goal(mdp.state_index(Rect::new(8, 8, 10, 10)).unwrap()));
/// # Ok::<(), meda_core::BuildError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutingMdp {
    states: Vec<Rect>,
    index: DenseIndex,
    goal_flags: Vec<bool>,
    sink: Option<usize>,
    init: usize,
    goal: Rect,
    bounds: Rect,
    /// CSR row offsets: state `i`'s choices are
    /// `state_choice_start[i]..state_choice_start[i + 1]`.
    state_choice_start: Vec<u32>,
    /// Action of each choice, flat across all states.
    choice_action: Vec<Action>,
    /// CSR branch offsets: choice `c`'s branches are
    /// `choice_branch_start[c]..choice_branch_start[c + 1]`.
    choice_branch_start: Vec<u32>,
    /// Successor state of every probabilistic branch, flat.
    branch_target: Vec<u32>,
    /// Probability of every branch, parallel to `branch_target`.
    branch_prob: Vec<f64>,
}

/// One materialized choice: an action with its outcome distribution
/// (successor index, probability). The in-memory representation is CSR —
/// use [`Branch::to_vec`] to materialize a branch in this form.
pub type Choice = (Action, Vec<(usize, f64)>);

/// Borrowed view of one state's enabled choices in the CSR layout.
///
/// Iterates as `(Action, Branch)` pairs; `Copy`, so it can be consumed
/// by value in `for` loops like the former slice API.
#[derive(Debug, Clone, Copy)]
pub struct Choices<'a> {
    actions: &'a [Action],
    /// `actions.len() + 1` absolute offsets into `targets`/`probs`.
    branch_start: &'a [u32],
    targets: &'a [u32],
    probs: &'a [f64],
}

impl<'a> Choices<'a> {
    /// Number of enabled actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the state has no enabled action (absorbing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The `k`-th choice.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    #[must_use]
    pub fn get(&self, k: usize) -> (Action, Branch<'a>) {
        let lo = self.branch_start[k] as usize;
        let hi = self.branch_start[k + 1] as usize;
        (
            self.actions[k],
            Branch {
                targets: &self.targets[lo..hi],
                probs: &self.probs[lo..hi],
            },
        )
    }

    /// Iterates over `(action, branch)` pairs.
    pub fn iter(&self) -> ChoicesIter<'a> {
        ChoicesIter {
            choices: *self,
            k: 0,
        }
    }
}

impl<'a> IntoIterator for Choices<'a> {
    type Item = (Action, Branch<'a>);
    type IntoIter = ChoicesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        ChoicesIter {
            choices: self,
            k: 0,
        }
    }
}

/// Iterator over a state's choices.
#[derive(Debug, Clone)]
pub struct ChoicesIter<'a> {
    choices: Choices<'a>,
    k: usize,
}

impl<'a> Iterator for ChoicesIter<'a> {
    type Item = (Action, Branch<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.k < self.choices.len() {
            let item = self.choices.get(self.k);
            self.k += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.choices.len() - self.k;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for ChoicesIter<'_> {}

/// Borrowed view of one choice's outcome distribution: parallel
/// successor/probability slices from the CSR arrays.
#[derive(Debug, Clone, Copy)]
pub struct Branch<'a> {
    targets: &'a [u32],
    probs: &'a [f64],
}

impl<'a> Branch<'a> {
    /// Number of probabilistic branches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the distribution is empty (never true for a stored choice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Iterates `(successor index, probability)` pairs by value.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (usize, f64)> + 'a {
        self.targets
            .iter()
            .zip(self.probs)
            .map(|(&t, &p)| (t as usize, p))
    }

    /// Materializes the distribution as a [`Choice`]-style vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<(usize, f64)> {
        self.iter().collect()
    }
}

/// Raw borrowed view of the CSR transition arrays — the representation
/// `meda-synth`'s value-iteration inner loops consume directly for
/// cache-linear, bounds-check-light sweeps.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a> {
    /// `n + 1` offsets: state `i`'s choices span
    /// `state_choice_start[i]..state_choice_start[i + 1]`.
    pub state_choice_start: &'a [u32],
    /// Action per choice.
    pub choice_action: &'a [Action],
    /// `choices + 1` offsets into the branch arrays.
    pub choice_branch_start: &'a [u32],
    /// Successor state per branch.
    pub branch_target: &'a [u32],
    /// Probability per branch.
    pub branch_prob: &'a [f64],
}

/// The strongly-connected-component condensation of an MDP's transition
/// graph (edges: state → branch successor, over every choice), computed by
/// an iterative Tarjan pass over the CSR arrays.
///
/// Components are numbered in Tarjan emission order, which is **reverse
/// topological** over the condensation DAG: for any cross-component edge
/// `u → v`, `component[v] < component[u]`. Sweeping components in
/// increasing id therefore visits every state only after all of its
/// out-of-component successors — the order topological value iteration
/// wants (values flow backward from the absorbing goal components, which
/// get the smallest ids among reachable components).
///
/// Self-loop branches (`i → i`) are ignored for the component structure —
/// both solver operators factor them out analytically, so a singleton
/// component never needs local iteration regardless of its self-loop mass.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Component id per state.
    pub component: Vec<u32>,
    /// `components() + 1` offsets into [`Condensation::members`].
    pub comp_start: Vec<u32>,
    /// State indices grouped by component, components in increasing id.
    pub members: Vec<u32>,
}

impl Condensation {
    /// Number of components.
    #[must_use]
    pub fn components(&self) -> usize {
        self.comp_start.len() - 1
    }

    /// The member states of component `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= components()`.
    #[must_use]
    pub fn members_of(&self, k: usize) -> &[u32] {
        &self.members[self.comp_start[k] as usize..self.comp_start[k + 1] as usize]
    }

    /// Number of components with more than one state — the cyclic patches
    /// that force within-component iteration.
    #[must_use]
    pub fn nontrivial(&self) -> usize {
        (0..self.components())
            .filter(|&k| self.members_of(k).len() > 1)
            .count()
    }

    /// Size of the largest component.
    #[must_use]
    pub fn largest(&self) -> usize {
        (0..self.components())
            .map(|k| self.members_of(k).len())
            .max()
            .unwrap_or(0)
    }
}

/// How the `□¬hazard` part of the routing objective is encoded in the MDP
/// (DESIGN.md §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HazardHandling {
    /// Disable any action whose *successful* outcome would exit the hazard
    /// bounds. Because failed moves leave the droplet in place, this makes
    /// `□¬hazard` hold structurally along every path, and is the smaller
    /// model.
    #[default]
    GuardDisable,
    /// Keep those actions and route their out-of-bounds outcomes into an
    /// explicit absorbing (non-goal) hazard sink — closer to a literal
    /// PRISM encoding of the `hazard` label. Optimal values are identical
    /// (the optimizer simply never selects a sink-reaching action), at the
    /// cost of a larger model.
    AbsorbingSink,
}

/// Size statistics of a routing MDP — the quantities reported per row of
/// the paper's Table V.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdpStats {
    /// Number of states.
    pub states: usize,
    /// Total number of probabilistic branches.
    pub transitions: usize,
    /// Total number of state–action pairs.
    pub choices: usize,
}

/// Error constructing a routing MDP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildError {
    /// The start droplet does not lie within the hazard bounds.
    StartOutsideBounds,
    /// The goal region does not lie within the hazard bounds.
    GoalOutsideBounds,
    /// The goal region is smaller than the start droplet and can never be
    /// satisfied by any reachable shape.
    GoalSmallerThanDroplet,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::StartOutsideBounds => write!(f, "start droplet outside hazard bounds"),
            Self::GoalOutsideBounds => write!(f, "goal region outside hazard bounds"),
            Self::GoalSmallerThanDroplet => {
                write!(f, "goal region cannot contain the droplet")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl RoutingMdp {
    /// Builds the MDP for a routing job by breadth-first exploration from
    /// `start`, under the frozen force `field` and action `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if `start` or `goal` lies outside `bounds`,
    /// or the goal region is too small to ever contain the droplet.
    pub fn build(
        start: Rect,
        goal: Rect,
        bounds: Rect,
        field: &dyn ForceProvider,
        config: &ActionConfig,
    ) -> Result<Self, BuildError> {
        Self::build_with(
            start,
            goal,
            bounds,
            field,
            config,
            HazardHandling::GuardDisable,
        )
    }

    /// [`RoutingMdp::build`] with an explicit [`HazardHandling`] choice —
    /// used by the hazard-encoding ablation.
    ///
    /// # Errors
    ///
    /// Same as [`RoutingMdp::build`].
    pub fn build_with(
        start: Rect,
        goal: Rect,
        bounds: Rect,
        field: &dyn ForceProvider,
        config: &ActionConfig,
        hazard: HazardHandling,
    ) -> Result<Self, BuildError> {
        if !bounds.contains_rect(start) {
            return Err(BuildError::StartOutsideBounds);
        }
        if !bounds.contains_rect(goal) {
            return Err(BuildError::GoalOutsideBounds);
        }
        if goal.width() < start.width().min(start.height())
            || goal.height() < start.width().min(start.height())
        {
            // Even the most favourable morph keeps min-dimension ≥ 1, but
            // a goal thinner than any reachable shape is a planner bug;
            // conservative check on the smallest reachable extent.
            let s = start.width() + start.height();
            let min_extent = (s as f64 / (1.0 + config.aspect_ratio_max)).floor() as u32;
            if goal.width() < min_extent.max(1) || goal.height() < min_extent.max(1) {
                return Err(BuildError::GoalSmallerThanDroplet);
            }
        }

        // Observability only — the span/counters below never influence the
        // constructed model (DESIGN.md §11).
        let telemetry = meda_telemetry::global();
        let _build_span = telemetry.span("mdp.build");

        // Capacity hints from the translation-only page of the start shape;
        // morphing configs grow past this, but the estimate removes the
        // bulk of reallocation churn either way.
        let est_states = ((bounds.width() - start.width() + 1)
            * (bounds.height() - start.height() + 1)) as usize;

        let mut states = Vec::with_capacity(est_states);
        states.push(start);
        let mut index = DenseIndex::new(bounds);
        let start_slot = index.slot_index(start);
        index.slots[start_slot] = 0;
        let mut goal_flags = Vec::with_capacity(est_states);
        goal_flags.push(goal.contains_rect(start));
        let mut sink: Option<usize> = None;

        let mut state_choice_start: Vec<u32> = Vec::with_capacity(est_states + 1);
        state_choice_start.push(0);
        let mut choice_action: Vec<Action> = Vec::with_capacity(est_states * 4);
        let mut choice_branch_start: Vec<u32> = Vec::with_capacity(est_states * 4 + 1);
        choice_branch_start.push(0);
        let mut branch_target: Vec<u32> = Vec::with_capacity(est_states * 8);
        let mut branch_prob: Vec<f64> = Vec::with_capacity(est_states * 8);

        // One outcome buffer for the whole exploration (cleared and
        // refilled per action, so the hot loop never allocates), and a
        // memo of cardinal frontier means — double-step and ordinal
        // frontiers revisit the same (rectangle, direction) pairs.
        let mut outcomes: Vec<Outcome> = Vec::with_capacity(4);
        let mut gen = TransitionCache::new(field, bounds);

        // The class part of the action guard depends on the droplet only
        // through its shape, so it is evaluated once per (w, h) here; the
        // per-state residue is just the hazard-bound check. AbsorbingSink
        // keeps bound-exiting actions (routed to the sink below) by
        // checking against expanded bounds.
        let guard_bounds = match hazard {
            HazardHandling::GuardDisable => bounds,
            HazardHandling::AbsorbingSink => bounds.expand(4),
        };
        let mut class_cache: Vec<((u32, u32), Vec<Action>)> = Vec::new();

        let mut frontier = 0usize;
        while frontier < states.len() {
            let delta = states[frontier];
            let is_sink = Some(frontier) == sink;
            if !goal_flags[frontier] && !is_sink {
                let shape = (delta.width(), delta.height());
                let ci = match class_cache.iter().position(|(s, _)| *s == shape) {
                    Some(k) => k,
                    None => {
                        let list: Vec<Action> = Action::ALL
                            .into_iter()
                            .filter(|a| a.class_enabled(delta, config))
                            .collect();
                        class_cache.push((shape, list));
                        class_cache.len() - 1
                    }
                };
                for &action in &class_cache[ci].1 {
                    if !guard_bounds.contains_rect(action.apply(delta)) {
                        continue;
                    }
                    // Append branches directly to the flat arrays; if the
                    // distribution turns out empty the arrays are untouched
                    // and the choice is simply not recorded.
                    let mark = branch_target.len();
                    gen.transitions_into(delta, action, &mut outcomes);
                    for &outcome in &outcomes {
                        if outcome.probability <= 0.0 {
                            continue;
                        }
                        let next = if bounds.contains_rect(outcome.droplet) {
                            let slot = index.slot_index(outcome.droplet);
                            let found = index.slots[slot];
                            if found == EMPTY {
                                let id = u32::try_from(states.len())
                                    .expect("state space exceeds u32 address space");
                                index.slots[slot] = id;
                                states.push(outcome.droplet);
                                goal_flags.push(goal.contains_rect(outcome.droplet));
                                id
                            } else {
                                found
                            }
                        } else {
                            // Out of the hazard bounds: only reachable with
                            // AbsorbingSink handling.
                            debug_assert_eq!(hazard, HazardHandling::AbsorbingSink);
                            *sink.get_or_insert_with(|| {
                                // The sink is keyed by a sentinel rectangle
                                // strictly outside the bounds so it cannot
                                // collide with a real droplet state.
                                let sentinel =
                                    bounds.translate(2 * (bounds.xb - bounds.xa + 10), 0);
                                states.push(sentinel);
                                goal_flags.push(false);
                                states.len() - 1
                            }) as u32
                        };
                        branch_target.push(next);
                        branch_prob.push(outcome.probability);
                    }
                    if branch_target.len() > mark {
                        choice_action.push(action);
                        choice_branch_start.push(branch_target.len() as u32);
                    }
                }
            }
            state_choice_start.push(choice_action.len() as u32);
            frontier += 1;
        }

        telemetry.add("core.mdp.builds", 1);
        telemetry.add("core.mdp.states", states.len() as u64);
        telemetry.add("core.mdp.choices", choice_action.len() as u64);
        telemetry.add("core.mdp.transitions", branch_target.len() as u64);
        telemetry.add(
            "core.mdp.index_pages",
            index.page_offset.iter().filter(|&&p| p != EMPTY).count() as u64,
        );
        telemetry.add("core.mdp.frontier_memo_hits", gen.hits);
        telemetry.add("core.mdp.frontier_memo_misses", gen.misses);

        let mdp = Self {
            states,
            index,
            goal_flags,
            sink,
            init: 0,
            goal,
            bounds,
            state_choice_start,
            choice_action,
            choice_branch_start,
            branch_target,
            branch_prob,
        };
        // Construction-time well-formedness hook: in dev builds every model
        // leaving the builder is structurally verified (the same invariants
        // `meda-audit` re-checks downstream; duplicated here because `core`
        // sits below the audit crate in the dependency graph).
        debug_assert_eq!(
            mdp.debug_well_formed(),
            Ok(()),
            "builder produced an ill-formed MDP"
        );
        Ok(mdp)
    }

    /// Structural self-check backing the builder's `debug_assert!` hook:
    /// CSR offsets monotone and covering, probabilities in `(0, 1]` with
    /// unit mass per choice, branch targets in range, goal states and the
    /// hazard sink absorbing.
    fn debug_well_formed(&self) -> Result<(), String> {
        let n = self.states.len();
        if self.state_choice_start.len() != n + 1 || self.goal_flags.len() != n {
            return Err("offset/flag arrays do not cover the state set".into());
        }
        if self.choice_branch_start.len() != self.choice_action.len() + 1
            || self.branch_prob.len() != self.branch_target.len()
        {
            return Err("choice/branch arrays are not parallel".into());
        }
        for w in self.state_choice_start.windows(2) {
            if w[1] < w[0] {
                return Err("state_choice_start is not monotone".into());
            }
        }
        for w in self.choice_branch_start.windows(2) {
            if w[1] < w[0] {
                return Err("choice_branch_start is not monotone".into());
            }
        }
        if self.state_choice_start.last().copied() != Some(self.choice_action.len() as u32)
            || self.choice_branch_start.last().copied() != Some(self.branch_target.len() as u32)
        {
            return Err("CSR offsets do not cover their arrays".into());
        }
        for c in 0..self.choice_action.len() {
            let lo = self.choice_branch_start[c] as usize;
            let hi = self.choice_branch_start[c + 1] as usize;
            if lo == hi {
                return Err(format!("choice {c} has an empty distribution"));
            }
            let mut mass = 0.0_f64;
            for b in lo..hi {
                let p = self.branch_prob[b];
                if p.is_nan() || p <= 0.0 || p > 1.0 + 1e-9 {
                    return Err(format!("branch {b} has probability {p}"));
                }
                if self.branch_target[b] as usize >= n {
                    return Err(format!("branch {b} targets a nonexistent state"));
                }
                mass += p;
            }
            if (mass - 1.0).abs() > 1e-9 {
                return Err(format!("choice {c} has outcome mass {mass}"));
            }
        }
        for (i, &g) in self.goal_flags.iter().enumerate() {
            let choices = self.state_choice_start[i + 1] - self.state_choice_start[i];
            if g && choices != 0 {
                return Err(format!("goal state {i} is not absorbing"));
            }
            if self.sink == Some(i) && (g || choices != 0) {
                return Err(format!("hazard sink {i} is not an absorbing non-goal"));
            }
        }
        Ok(())
    }

    /// The absorbing hazard-sink state, if this MDP was built with
    /// [`HazardHandling::AbsorbingSink`] and any action can exit the
    /// bounds.
    #[must_use]
    pub fn hazard_sink(&self) -> Option<usize> {
        self.sink
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the MDP has no states (never true after a successful build).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The droplet rectangle of state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn state(&self, i: usize) -> Rect {
        self.states[i]
    }

    /// The index of a droplet rectangle, if it is a state. O(1): two
    /// array reads in the dense index.
    #[must_use]
    pub fn state_index(&self, droplet: Rect) -> Option<usize> {
        if let Some(i) = self.index.get(droplet) {
            return Some(i);
        }
        // The hazard-sink sentinel lies outside the bounds and therefore
        // outside the dense index.
        self.sink.filter(|&s| self.states[s] == droplet)
    }

    /// The initial-state index (the start droplet).
    #[must_use]
    pub fn init(&self) -> usize {
        self.init
    }

    /// Whether state `i` satisfies the `goal` label. Goal states are
    /// absorbing (no choices).
    #[must_use]
    pub fn is_goal(&self, i: usize) -> bool {
        self.goal_flags[i]
    }

    /// The enabled actions and outcome distributions of state `i`, as a
    /// borrowed CSR view.
    #[must_use]
    pub fn choices(&self, i: usize) -> Choices<'_> {
        let lo = self.state_choice_start[i] as usize;
        let hi = self.state_choice_start[i + 1] as usize;
        Choices {
            actions: &self.choice_action[lo..hi],
            branch_start: &self.choice_branch_start[lo..=hi],
            targets: &self.branch_target,
            probs: &self.branch_prob,
        }
    }

    /// The raw CSR transition arrays, for allocation-free solver sweeps.
    #[must_use]
    pub fn csr(&self) -> CsrView<'_> {
        CsrView {
            state_choice_start: &self.state_choice_start,
            choice_action: &self.choice_action,
            choice_branch_start: &self.choice_branch_start,
            branch_target: &self.branch_target,
            branch_prob: &self.branch_prob,
        }
    }

    /// Computes the SCC condensation of the transition graph with an
    /// iterative Tarjan pass (explicit stack; no recursion, no
    /// third-party deps). Roots are visited in state order, so the result
    /// is deterministic. `O(states + transitions)`.
    ///
    /// Self-loop branches are skipped — see [`Condensation`].
    #[must_use]
    pub fn condensation(&self) -> Condensation {
        let telemetry = meda_telemetry::global();
        let _span = telemetry.span("mdp.condense");
        let n = self.states.len();
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; n]; // discovery index per state
        let mut lowlink = vec![0u32; n];
        let mut component = vec![UNVISITED; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new(); // Tarjan's SCC stack
        let mut next_index = 0u32;
        let mut comp_count = 0u32;
        // (state, next edge offset into branch_target) — the DFS frame.
        let mut dfs: Vec<(u32, u32)> = Vec::new();

        // All of a state's successors, across every choice, are one
        // contiguous branch_target run — the per-state edge list is a
        // single slice of the CSR arrays.
        let edges_lo =
            |i: usize| self.choice_branch_start[self.state_choice_start[i] as usize] as usize;
        let edges_hi =
            |i: usize| self.choice_branch_start[self.state_choice_start[i + 1] as usize] as usize;

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            dfs.push((root as u32, edges_lo(root) as u32));
            index[root] = next_index;
            lowlink[root] = next_index;
            next_index += 1;
            stack.push(root as u32);
            on_stack[root] = true;
            while let Some(&mut (v, ref mut edge)) = dfs.last_mut() {
                let v = v as usize;
                if (*edge as usize) < edges_hi(v) {
                    let w = self.branch_target[*edge as usize] as usize;
                    *edge += 1;
                    if w == v {
                        continue; // self-loop: factored analytically
                    }
                    if index[w] == UNVISITED {
                        index[w] = next_index;
                        lowlink[w] = next_index;
                        next_index += 1;
                        stack.push(w as u32);
                        on_stack[w] = true;
                        dfs.push((w as u32, edges_lo(w) as u32));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    dfs.pop();
                    if let Some(&(parent, _)) = dfs.last() {
                        let p = parent as usize;
                        lowlink[p] = lowlink[p].min(lowlink[v]);
                    }
                    if lowlink[v] == index[v] {
                        // v roots a component: pop it off the SCC stack.
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            component[w as usize] = comp_count;
                            if w as usize == v {
                                break;
                            }
                        }
                        comp_count += 1;
                    }
                }
            }
        }

        // Group members by component with a counting pass.
        let mut comp_start = vec![0u32; comp_count as usize + 1];
        for &c in &component {
            comp_start[c as usize + 1] += 1;
        }
        for k in 1..comp_start.len() {
            comp_start[k] += comp_start[k - 1];
        }
        let mut cursor = comp_start.clone();
        let mut members = vec![0u32; n];
        for (s, &c) in component.iter().enumerate() {
            members[cursor[c as usize] as usize] = s as u32;
            cursor[c as usize] += 1;
        }
        Condensation {
            component,
            comp_start,
            members,
        }
    }

    /// Computes the maximal end components of this MDP's transition
    /// structure — see [`crate::mec_decomposition`]. Under
    /// [`HazardHandling::GuardDisable`] the non-goal wander region is
    /// typically one large MEC (failed moves hold position, so the region
    /// is closed and strongly connected); the quotient of this
    /// decomposition is what gives from-above value iteration a unique
    /// fixed point.
    #[must_use]
    pub fn maximal_end_components(&self) -> crate::MecDecomposition {
        let telemetry = meda_telemetry::global();
        let _span = telemetry.span("mdp.mec");
        crate::mec_decomposition(
            &self.state_choice_start,
            &self.choice_branch_start,
            &self.branch_target,
        )
    }

    /// The goal region `δ_g`.
    #[must_use]
    pub fn goal(&self) -> Rect {
        self.goal
    }

    /// The hazard bounds `δ_h`.
    #[must_use]
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Iterates over all state indices.
    pub fn state_indices(&self) -> impl Iterator<Item = usize> + use<> {
        0..self.states.len()
    }

    /// Model-size statistics (Table V quantities) — O(1) reads off the
    /// CSR array lengths.
    #[must_use]
    pub fn stats(&self) -> MdpStats {
        MdpStats {
            states: self.len(),
            transitions: self.branch_target.len(),
            choices: self.choice_action.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformField;

    fn build_simple(config: &ActionConfig) -> RoutingMdp {
        RoutingMdp::build(
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::pristine(),
            config,
        )
        .unwrap()
    }

    #[test]
    fn cardinal_only_enumerates_all_positions() {
        let mdp = build_simple(&ActionConfig::cardinal_only());
        // A 3×3 droplet has 8×8 positions in a 10×10 area.
        assert_eq!(mdp.len(), 64);
    }

    #[test]
    fn goal_states_are_absorbing() {
        let mdp = build_simple(&ActionConfig::cardinal_only());
        let goal_idx = mdp.state_index(Rect::new(8, 8, 10, 10)).unwrap();
        assert!(mdp.is_goal(goal_idx));
        assert!(mdp.choices(goal_idx).is_empty());
    }

    #[test]
    fn transition_probabilities_sum_to_one_per_choice() {
        let mdp = build_simple(&ActionConfig::default());
        for i in mdp.state_indices() {
            for (a, branch) in mdp.choices(i) {
                let total: f64 = branch.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9, "state {i} action {a}");
            }
        }
    }

    #[test]
    fn all_states_stay_within_bounds() {
        let mdp = build_simple(&ActionConfig::default());
        for i in mdp.state_indices() {
            assert!(mdp.bounds().contains_rect(mdp.state(i)));
        }
    }

    #[test]
    fn morphing_enlarges_the_state_space() {
        let without = build_simple(&ActionConfig::cardinal_only()).len();
        let with = build_simple(&ActionConfig::default()).len();
        assert!(with > without);
    }

    #[test]
    fn larger_droplets_make_smaller_models() {
        // Table V trend: for a fixed RJ area, model size shrinks as the
        // droplet grows.
        let config = ActionConfig::cardinal_only();
        let field = UniformField::pristine();
        let area = Rect::new(1, 1, 20, 20);
        let mut prev = usize::MAX;
        for size in 3..=6 {
            let start = Rect::with_size(1, 1, size, size);
            let goal = Rect::with_size(21 - size as i32, 21 - size as i32, size, size);
            let mdp = RoutingMdp::build(start, goal, area, &field, &config).unwrap();
            assert!(mdp.len() < prev, "size {size}");
            prev = mdp.len();
        }
    }

    #[test]
    fn errors_on_bad_geometry() {
        let field = UniformField::pristine();
        let config = ActionConfig::default();
        assert_eq!(
            RoutingMdp::build(
                Rect::new(0, 0, 2, 2),
                Rect::new(5, 5, 7, 7),
                Rect::new(1, 1, 10, 10),
                &field,
                &config,
            )
            .unwrap_err(),
            BuildError::StartOutsideBounds
        );
        assert_eq!(
            RoutingMdp::build(
                Rect::new(1, 1, 3, 3),
                Rect::new(9, 9, 11, 11),
                Rect::new(1, 1, 10, 10),
                &field,
                &config,
            )
            .unwrap_err(),
            BuildError::GoalOutsideBounds
        );
    }

    #[test]
    fn dead_zone_prunes_zero_probability_branches() {
        // A fully dead field: no movement has positive success probability,
        // so every action keeps only the stay-in-place branch.
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::new(0.0),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        assert_eq!(mdp.len(), 1, "no state beyond the start is reachable");
        for (_, branch) in mdp.choices(mdp.init()) {
            assert_eq!(branch.len(), 1);
            assert_eq!(branch.iter().next().unwrap().0, mdp.init());
        }
    }

    #[test]
    fn absorbing_sink_model_is_larger_but_reaches_same_states() {
        let field = UniformField::new(0.9);
        let config = ActionConfig::default();
        let args = (
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
        );
        let guard = RoutingMdp::build_with(
            args.0,
            args.1,
            args.2,
            &field,
            &config,
            HazardHandling::GuardDisable,
        )
        .unwrap();
        let sink = RoutingMdp::build_with(
            args.0,
            args.1,
            args.2,
            &field,
            &config,
            HazardHandling::AbsorbingSink,
        )
        .unwrap();
        assert!(guard.hazard_sink().is_none());
        assert!(sink.hazard_sink().is_some());
        assert_eq!(sink.len(), guard.len() + 1, "exactly the sink is added");
        let s = sink.stats();
        let g = guard.stats();
        assert!(s.choices > g.choices);
        assert!(s.transitions > g.transitions);
    }

    #[test]
    fn sink_state_is_absorbing_and_not_goal() {
        let mdp = RoutingMdp::build_with(
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::new(0.9),
            &ActionConfig::default(),
            HazardHandling::AbsorbingSink,
        )
        .unwrap();
        let sink = mdp.hazard_sink().unwrap();
        assert!(!mdp.is_goal(sink));
        assert!(mdp.choices(sink).is_empty());
        // The sentinel lies outside the hazard bounds.
        assert!(!mdp.bounds().contains_rect(mdp.state(sink)));
        // And it is still resolvable through `state_index`.
        assert_eq!(mdp.state_index(mdp.state(sink)), Some(sink));
    }

    #[test]
    fn condensation_partitions_states_in_reverse_topological_order() {
        let mdp = build_simple(&ActionConfig::default());
        let c = mdp.condensation();
        assert_eq!(c.component.len(), mdp.len());
        assert_eq!(c.members.len(), mdp.len());
        // Partition: every state appears exactly once in the member lists.
        let mut seen = vec![false; mdp.len()];
        for k in 0..c.components() {
            for &s in c.members_of(k) {
                assert!(!seen[s as usize], "state {s} grouped twice");
                seen[s as usize] = true;
                assert_eq!(c.component[s as usize] as usize, k);
            }
        }
        assert!(seen.iter().all(|&b| b));
        // Reverse topological: every cross-component edge points to a
        // smaller component id.
        for i in mdp.state_indices() {
            for (_, branch) in mdp.choices(i) {
                for (j, _) in branch.iter() {
                    if c.component[i] != c.component[j] {
                        assert!(
                            c.component[j] < c.component[i],
                            "edge {i} -> {j} goes forward in component order"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn condensation_goals_are_singletons_and_moves_are_one_scc() {
        // With reversible cardinal moves every non-goal state can return to
        // every other, so the non-goal region is one big SCC and each
        // absorbing goal state is its own singleton component.
        let mdp = build_simple(&ActionConfig::cardinal_only());
        let c = mdp.condensation();
        let goal_states = mdp.state_indices().filter(|&i| mdp.is_goal(i)).count();
        assert_eq!(c.components(), goal_states + 1);
        assert_eq!(c.nontrivial(), 1);
        assert_eq!(c.largest(), mdp.len() - goal_states);
        for i in mdp.state_indices().filter(|&i| mdp.is_goal(i)) {
            assert_eq!(c.members_of(c.component[i] as usize), [i as u32]);
        }
    }

    #[test]
    fn condensation_of_a_corridor_is_near_acyclic_under_one_way_flow() {
        // A 1-wide corridor with cardinal moves is still reversible, but a
        // fully dead field collapses the model to the start state alone —
        // exactly one (trivially acyclic) component, self-loop ignored.
        let mdp = RoutingMdp::build(
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::new(0.0),
            &ActionConfig::cardinal_only(),
        )
        .unwrap();
        let c = mdp.condensation();
        assert_eq!(c.components(), 1);
        assert_eq!(c.nontrivial(), 0);
    }

    #[test]
    fn stats_count_choices_and_transitions() {
        let mdp = build_simple(&ActionConfig::cardinal_only());
        let stats = mdp.stats();
        assert_eq!(stats.states, 64);
        // Interior states have 4 actions with 2 branches each.
        assert!(stats.choices > 0 && stats.transitions >= stats.choices);
        let recount: usize = mdp.state_indices().map(|i| mdp.choices(i).len()).sum();
        assert_eq!(stats.choices, recount);
    }

    #[test]
    fn state_index_is_a_bijection_over_states() {
        let mdp = build_simple(&ActionConfig::default());
        for i in mdp.state_indices() {
            assert_eq!(mdp.state_index(mdp.state(i)), Some(i));
        }
        // Rectangles outside the bounds or never reached resolve to None.
        assert_eq!(mdp.state_index(Rect::new(0, 0, 2, 2)), None);
        assert_eq!(mdp.state_index(Rect::new(1, 1, 10, 10)), None);
    }
}
