//! Fixed-bucket log2 histograms.
//!
//! 65 buckets cover the full `u64` range: bucket 0 holds exactly the value
//! 0, and bucket `k ≥ 1` holds values `v` with `2^(k-1) ≤ v < 2^k` (so
//! bucket 64 tops out at `u64::MAX`). Bucketing is a single
//! `leading_zeros`, and all recording is lock-free atomics, so a histogram
//! can sit on a hot path shared between threads.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// A thread-safe log2 histogram over `u64` samples.
///
/// Tracks per-bucket counts plus exact `count`, `sum`, `min`, and `max`
/// aggregates. `sum` wraps on overflow (only reachable with ≫ 2^64 total
/// mass, acceptable for observability).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// The bucket index a value falls into: 0 for 0, else `64 - leading_zeros`.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The smallest value that lands in `bucket` (0 for bucket 0, else
/// `2^(bucket-1)`).
#[must_use]
pub fn bucket_floor(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples (wrapping).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot for export (individual fields are read
    /// atomically; cross-field skew is possible under concurrent writes and
    /// fine for observability).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i, n))
                })
                .collect(),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples (wrapping).
    pub sum: u64,
    /// Smallest sample, or 0 when empty.
    pub min: u64,
    /// Largest sample, or 0 when empty.
    pub max: u64,
    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub buckets: Vec<(usize, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lands_in_bucket_zero() {
        assert_eq!(bucket_of(0), 0);
        let h = Histogram::new();
        h.record(0);
        assert_eq!(h.snapshot().buckets, vec![(0, 1)]);
        assert_eq!(h.snapshot().min, 0);
        assert_eq!(h.snapshot().max, 0);
    }

    #[test]
    fn u64_max_lands_in_last_bucket() {
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().buckets, vec![(BUCKETS - 1, 1)]);
        assert_eq!(h.snapshot().max, u64::MAX);
    }

    #[test]
    fn powers_of_two_sit_on_bucket_boundaries() {
        // 2^k opens bucket k+1; 2^k - 1 closes bucket k.
        for k in 0..63usize {
            let v = 1u64 << k;
            assert_eq!(bucket_of(v), k + 1, "2^{k}");
            if v > 1 {
                assert_eq!(bucket_of(v - 1), k, "2^{k} - 1");
            }
            assert_eq!(bucket_floor(k + 1), v);
        }
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(bucket_floor(0), 0);
    }

    #[test]
    fn aggregates_track_min_max_sum() {
        let h = Histogram::new();
        for v in [5u64, 1, 9, 3] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 18);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
    }
}
