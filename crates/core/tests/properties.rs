//! Property-style tests for the droplet/actuation model: Table II frontier
//! invariants, Section V-B probability laws, guard soundness, and MDP
//! structure — replayed over a deterministic seeded input space.

use meda_core::{
    frontier_set, transitions, Action, ActionConfig, Dir, ForceProvider, RawField, RoutingMdp,
    UniformField,
};
use meda_grid::{ChipDims, Grid, Rect};
use meda_rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 256;

fn arb_droplet(rng: &mut StdRng) -> Rect {
    let (xa, ya) = (rng.gen_range(5..30), rng.gen_range(5..30));
    let (w, h) = (rng.gen_range(0..8), rng.gen_range(0..8));
    Rect::new(xa, ya, xa + w, ya + h)
}

fn arb_force(rng: &mut StdRng) -> f64 {
    rng.gen_range(0.0..=1.0)
}

fn arb_action(rng: &mut StdRng) -> Action {
    Action::ALL[rng.gen_range(0..Action::ALL.len())]
}

/// Table II size formulas: cardinal frontiers span the full facing
/// edge; ordinal frontiers the shifted edge; morphing frontiers one
/// cell less.
#[test]
fn frontier_sizes_match_table_ii() {
    let mut rng = StdRng::seed_from_u64(0xC0E0);
    for _ in 0..CASES {
        let delta = arb_droplet(&mut rng);
        let w = delta.width();
        let h = delta.height();
        for action in Action::ALL {
            for dir in Dir::ALL {
                let Some(fr) = frontier_set(delta, action, dir) else {
                    continue;
                };
                let expected = match action {
                    Action::Move(_) | Action::MoveDouble(_) | Action::MoveOrdinal(_) => {
                        if dir.is_vertical() {
                            w
                        } else {
                            h
                        }
                    }
                    Action::Widen(_) => h - 1,
                    Action::Heighten(_) => w - 1,
                };
                assert_eq!(fr.area(), expected, "{action} {dir}");
                // Frontiers are always a single row or column.
                assert!(fr.width() == 1 || fr.height() == 1);
                // And they never overlap the current droplet.
                assert!(!fr.intersects(delta), "{action} {dir}");
            }
        }
    }
}

/// The success outcome of an action always contains every frontier it
/// pulls with (the pulling MCs end up under the droplet) — except the
/// double step, whose first-step frontier lies under the intermediate.
#[test]
fn frontiers_end_up_under_the_droplet() {
    let mut rng = StdRng::seed_from_u64(0xC0E1);
    for _ in 0..CASES {
        let delta = arb_droplet(&mut rng);
        let action = arb_action(&mut rng);
        if !action.is_applicable(delta) {
            continue;
        }
        let target = match action {
            Action::MoveDouble(_) => action.intermediate(delta).unwrap(),
            _ => action.apply(delta),
        };
        for dir in Dir::ALL {
            if let Some(fr) = frontier_set(delta, action, dir) {
                assert!(target.contains_rect(fr), "{action} {dir}");
            }
        }
    }
}

/// Probabilities over outcomes always form a distribution, for any
/// force field value.
#[test]
fn outcome_probabilities_form_a_distribution() {
    let mut rng = StdRng::seed_from_u64(0xC0E2);
    for _ in 0..CASES {
        let delta = arb_droplet(&mut rng);
        let force = arb_force(&mut rng);
        let action = arb_action(&mut rng);
        let field = UniformField::new(force);
        let outcomes = transitions(delta, action, &field);
        let total: f64 = outcomes.iter().map(|o| o.probability).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for o in &outcomes {
            assert!(o.probability >= -1e-12 && o.probability <= 1.0 + 1e-12);
            // Every outcome preserves droplet area except morphing.
            match action {
                Action::Widen(_) | Action::Heighten(_) => {}
                _ => assert_eq!(o.droplet.area(), delta.area()),
            }
        }
    }
}

/// Monotonicity: more force never decreases the success probability.
#[test]
fn success_probability_is_monotone_in_force() {
    let mut rng = StdRng::seed_from_u64(0xC0E3);
    for _ in 0..CASES {
        let delta = arb_droplet(&mut rng);
        let action = arb_action(&mut rng);
        let f1 = arb_force(&mut rng);
        let f2 = arb_force(&mut rng);
        if !action.is_applicable(delta) {
            continue;
        }
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let p = |f: f64| {
            transitions(delta, action, &UniformField::new(f))
                .iter()
                .find(|o| o.droplet == action.apply(delta))
                .map_or(0.0, |o| o.probability)
        };
        assert!(p(lo) <= p(hi) + 1e-12);
    }
}

/// Guard soundness: an enabled action's successful outcome stays within
/// the bounds, and morphing preserves the half-perimeter and the aspect
/// limit.
#[test]
fn enabled_actions_respect_bounds_and_aspect() {
    let mut rng = StdRng::seed_from_u64(0xC0E4);
    for _ in 0..CASES {
        let delta = arb_droplet(&mut rng);
        let action = arb_action(&mut rng);
        let margin = rng.gen_range(0..6);
        let bounds = delta.expand(margin + 2);
        let config = ActionConfig::default();
        if action.is_enabled(delta, bounds, &config) {
            let out = action.apply(delta);
            assert!(bounds.contains_rect(out));
            match action {
                Action::Widen(_) | Action::Heighten(_) => {
                    assert_eq!(out.width() + out.height(), delta.width() + delta.height());
                    // The paper's guard is one-directional: it bounds the
                    // ratio in the direction the morph grows (so a morph
                    // may still *correct* an already-extreme droplet).
                    let grown = match action {
                        Action::Widen(_) => out.aspect_ratio(),
                        _ => 1.0 / out.aspect_ratio(),
                    };
                    assert!(grown <= config.aspect_ratio_max + 1e-9);
                }
                Action::MoveDouble(d) => {
                    let extent = if d.is_vertical() {
                        delta.height()
                    } else {
                        delta.width()
                    };
                    assert!(extent >= 4);
                }
                _ => {}
            }
        }
    }
}

/// The mean frontier force is the arithmetic mean of the per-cell
/// forces, with off-chip cells contributing zero.
#[test]
fn mean_force_is_clipped_average() {
    let mut rng = StdRng::seed_from_u64(0xC0E5);
    for _ in 0..CASES {
        let (xa, ya) = (rng.gen_range(1..12), rng.gen_range(1..12));
        let len = rng.gen_range(1..6u32);
        let dims = ChipDims::new(10, 10);
        let field = RawField::new(Grid::new(dims, 0.8));
        let fr = Rect::with_size(xa, ya, 1, len);
        let on_chip = fr.intersection(dims.bounds()).map_or(0, |c| c.area());
        let expected = 0.8 * f64::from(on_chip) / f64::from(fr.area());
        assert!((field.mean_force(fr) - expected).abs() < 1e-12);
    }
}

/// Routing MDPs are well-formed for arbitrary geometry: states within
/// bounds, distributions normalized, goal states absorbing.
#[test]
fn routing_mdp_is_well_formed() {
    let mut rng = StdRng::seed_from_u64(0xC0E6);
    for _ in 0..24 {
        let w = rng.gen_range(6..14u32);
        let h = rng.gen_range(6..14u32);
        let droplet = rng.gen_range(2..4u32);
        let force = rng.gen_range(0.05..1.0);
        let bounds = Rect::new(1, 1, w as i32, h as i32);
        let start = Rect::with_size(1, 1, droplet, droplet);
        let goal = Rect::with_size(
            w as i32 - droplet as i32 + 1,
            h as i32 - droplet as i32 + 1,
            droplet,
            droplet,
        );
        let mdp = RoutingMdp::build(
            start,
            goal,
            bounds,
            &UniformField::new(force),
            &ActionConfig::default(),
        )
        .unwrap();
        for i in mdp.state_indices() {
            assert!(bounds.contains_rect(mdp.state(i)));
            if mdp.is_goal(i) {
                assert!(mdp.choices(i).is_empty());
            }
            for (_, branch) in mdp.choices(i) {
                let total: f64 = branch.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
        }
        let stats = mdp.stats();
        assert!(stats.transitions >= stats.choices);
    }
}
