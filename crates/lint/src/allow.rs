//! Parser for `lint-allow.toml` — the repo's declared lint exceptions.
//!
//! The workspace is zero-dependency (DESIGN.md §6), so this is a
//! hand-rolled reader for the tiny TOML subset the allowlist uses:
//! comments, `[[allow]]` array-of-table headers, and `key = "string"`
//! pairs. Anything else is a hard error — an unparseable allowlist must
//! fail the lint run, not silently allow everything.

use crate::rules::Finding;

/// One declared exception: a finding matching `rule` + `file` (and
/// `pattern`, when given, as a substring of the offending line) is
/// suppressed. `reason` is mandatory — an exception nobody can justify is
/// not an exception.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule name the entry applies to (e.g. `no-unwrap`).
    pub rule: String,
    /// Workspace-relative file, forward slashes.
    pub file: String,
    /// Optional substring of the offending line; an entry without a
    /// pattern matches every finding of `rule` in `file`.
    pub pattern: Option<String>,
    /// Why this exception is sound.
    pub reason: String,
}

/// Parses the allowlist source. Line-based: `[[allow]]` opens an entry,
/// `key = "value"` fills it, `#` starts a comment.
pub fn parse_allowlist(source: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    for (n, raw) in source.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            entries.push(AllowEntry::default());
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "lint-allow.toml:{}: expected key = \"value\"",
                n + 1
            ));
        };
        let Some(entry) = entries.last_mut() else {
            return Err(format!(
                "lint-allow.toml:{}: key outside any [[allow]] entry",
                n + 1
            ));
        };
        let value = value.trim();
        let Some(value) = value.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
            return Err(format!(
                "lint-allow.toml:{}: value must be a double-quoted string",
                n + 1
            ));
        };
        match key.trim() {
            "rule" => entry.rule = value.to_string(),
            "file" => entry.file = value.to_string(),
            "pattern" => entry.pattern = Some(value.to_string()),
            "reason" => entry.reason = value.to_string(),
            other => {
                return Err(format!("lint-allow.toml:{}: unknown key `{other}`", n + 1));
            }
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if e.rule.is_empty() || e.file.is_empty() || e.reason.is_empty() {
            return Err(format!(
                "lint-allow.toml: entry {} must set rule, file, and reason",
                i + 1
            ));
        }
    }
    Ok(entries)
}

/// Splits findings into (kept, suppressed-count) and reports which entries
/// never matched anything — stale exceptions should be pruned.
pub fn apply_allowlist(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, usize, Vec<AllowEntry>) {
    let mut used = vec![false; entries.len()];
    let mut kept = Vec::new();
    let mut suppressed = 0_usize;
    for f in findings {
        let hit = entries.iter().position(|e| {
            e.rule == f.rule.name()
                && e.file == f.file
                && e.pattern.as_deref().is_none_or(|p| f.excerpt.contains(p))
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed += 1;
            }
            None => kept.push(f),
        }
    }
    let unused = entries
        .iter()
        .zip(&used)
        .filter(|(_, &u)| !u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, suppressed, unused)
}
