//! Extension: synthesis-service latency — cold synthesis vs warm canonical
//! cache hits through the `meda serve` engine (DESIGN.md §16).
//!
//! Three assay-style request families (a PCR shuttle, a dilution sweep, and
//! a Pmax mix transport) are each issued at several force variants (cold:
//! every variant is a distinct canonical orbit, so each one pays a full
//! synthesis) and then replayed at many translated geometries (warm: every
//! translation collapses onto an already-cached orbit, so each one is a
//! memory-tier lookup plus materialization). Latency is measured per
//! request around [`ServeEngine::handle`].
//!
//! Emitted metrics (meda-bench/1):
//!
//! - `serve.cold_p50_ns` / `serve.cold_p95_ns` — cold-path request latency
//!   (canonicalize + synthesize + persist + respond);
//! - `serve.warm_p50_ns` / `serve.warm_p95_ns` — warm-path request latency
//!   (canonicalize + cache hit + materialize + respond);
//! - `serve.warm_hit_speedup` — cold p50 / warm p50; `bench_compare` fails
//!   a same-mode run if it drops more than the threshold;
//! - `serve.hit_rate` — warm-phase cache hits per warm request;
//! - `serve.warm_hit_rate_dominance` — the same ratio in gating form:
//!   `bench_compare` fails the moment it falls below 1.0 (a translated
//!   repeat that misses the cache is a canonicalization regression, not a
//!   timing wobble);
//! - `serve.cold_requests` / `serve.warm_requests` — deterministic corpus
//!   sizes (any drift means the workload itself changed).
//!
//! In full (non-smoke) mode the bin also self-checks the headline claims —
//! every response is `ok`, the warm phase hits on every request, and the
//! warm hit is at least 10x faster than cold synthesis — and exits nonzero
//! on violation, so CI catches a cache regression even before
//! `bench_compare` diffs the committed baseline.
#![forbid(unsafe_code)]

use std::time::Instant;

use meda_bench::{banner, header, row, BenchReport};
use meda_synth::ServeEngine;

/// One request family: an assay-style routing job shape whose force
/// pattern is scaled per cold variant and whose geometry is translated per
/// warm repeat.
struct Family {
    name: &'static str,
    /// Bounds width/height (the job is anchored at (1, 1) and translated).
    dims: (i32, i32),
    /// Droplet size.
    droplet: (i32, i32),
    /// Start offset within bounds.
    start: (i32, i32),
    /// Goal offset within bounds.
    goal: (i32, i32),
    /// `"rmin"` or `"pmax"`.
    query: &'static str,
}

const FAMILIES: &[Family] = &[
    Family {
        name: "pcr_shuttle",
        dims: (24, 12),
        droplet: (2, 2),
        start: (0, 1),
        goal: (21, 9),
        query: "rmin",
    },
    Family {
        name: "dilution_sweep",
        dims: (20, 16),
        droplet: (3, 3),
        start: (1, 0),
        goal: (16, 12),
        query: "rmin",
    },
    Family {
        name: "mix_transport",
        dims: (16, 16),
        droplet: (1, 1),
        start: (0, 0),
        goal: (14, 14),
        query: "pmax",
    },
];

/// Deterministic per-cell force pattern in `[0.55, 0.95]`, scaled per cold
/// variant so each variant is its own canonical orbit. Row-major within
/// the family bounds, so every translation of the geometry carries the
/// *same* pattern and lands in the same orbit.
fn force_cells(family: &Family, scale: f64) -> Vec<f64> {
    let (w, h) = family.dims;
    let mut cells = Vec::with_capacity((w * h) as usize);
    for y in 0..h {
        for x in 0..w {
            let ripple = f64::from((x * 7 + y * 13) % 10) / 10.0;
            cells.push((0.55 + 0.4 * ripple) * scale);
        }
    }
    cells
}

fn request_line(family: &Family, scale: f64, dx: i32, dy: i32, id: &str) -> String {
    let (w, h) = family.dims;
    let (bw, bh) = (1 + dx, 1 + dy);
    let rect = |ox: i32, oy: i32, sw: i32, sh: i32| {
        format!(
            "[{},{},{},{}]",
            bw + ox,
            bh + oy,
            bw + ox + sw - 1,
            bh + oy + sh - 1
        )
    };
    let cells: Vec<String> = force_cells(family, scale)
        .iter()
        .map(|f| format!("{f:.6}"))
        .collect();
    format!(
        "{{\"id\":\"{id}\",\"bounds\":{},\"start\":{},\"goal\":{},\"query\":\"{}\",\"cells\":[{}]}}",
        rect(0, 0, w, h),
        rect(family.start.0, family.start.1, family.droplet.0, family.droplet.1),
        rect(family.goal.0, family.goal.1, family.droplet.0, family.droplet.1),
        family.query,
        cells.join(",")
    )
}

fn percentile(sorted_ns: &[u64], pct: usize) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    sorted_ns[(sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1)]
}

fn timed(engine: &mut ServeEngine, line: &str) -> (String, u64) {
    let t = Instant::now();
    let response = engine.handle(line);
    (response, t.elapsed().as_nanos() as u64)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bless = std::env::args().any(|a| a == "--bless");

    banner(
        "Extension — serve latency, cold synthesis vs warm canonical cache",
        "Three assay-style request families at several force variants (cold \
         misses) and many translated geometries (warm hits), timed per \
         request through the meda serve engine. Translation and D4 symmetry \
         collapse every repeat onto a cached canonical orbit, so the warm \
         path is a lookup plus frame mapping instead of value iteration.",
    );

    // Distinct force scales per family → cold corpus; translations of the
    // base geometry → warm corpus (every one hits the scale-1.0 orbit and
    // the variants keep the memory tier warm for it).
    let (scales, translations): (&[f64], i32) = if smoke {
        (&[1.0], 2)
    } else {
        (&[1.0, 0.95, 0.9, 0.85], 12)
    };

    let dir = std::path::Path::new("target")
        .join("bench-serve-cache")
        .join(std::process::id().to_string());
    let _ = std::fs::remove_dir_all(&dir);
    let mut engine = ServeEngine::open(&dir, 256).expect("open serve cache");

    let mut violations: Vec<String> = Vec::new();
    let check_ok = |response: &str, what: &str, violations: &mut Vec<String>| {
        if !response.contains("\"status\":\"ok\"") {
            violations.push(format!("{what} request failed: {response}"));
        }
    };

    let mut cold_ns: Vec<u64> = Vec::new();
    for family in FAMILIES {
        for (v, &scale) in scales.iter().enumerate() {
            let line = request_line(family, scale, 0, 0, &format!("{}-cold-{v}", family.name));
            let (response, ns) = timed(&mut engine, &line);
            check_ok(&response, family.name, &mut violations);
            cold_ns.push(ns);
        }
    }
    let cold_misses = engine.stats().misses;

    let mut warm_ns: Vec<u64> = Vec::new();
    for family in FAMILIES {
        for t in 1..=translations {
            let line = request_line(
                family,
                1.0,
                t * 3,
                t % 4,
                &format!("{}-warm-{t}", family.name),
            );
            let (response, ns) = timed(&mut engine, &line);
            check_ok(&response, family.name, &mut violations);
            warm_ns.push(ns);
        }
    }
    let stats = engine.stats();
    let warm_requests = warm_ns.len() as u64;
    // The cold phase is all misses (self-checked below), so the total hit
    // count after the warm phase is the warm-phase hit count.
    let warm_hits = stats.hits();
    let hit_rate = warm_hits as f64 / warm_requests as f64;

    cold_ns.sort_unstable();
    warm_ns.sort_unstable();
    let cold_p50 = percentile(&cold_ns, 50);
    let cold_p95 = percentile(&cold_ns, 95);
    let warm_p50 = percentile(&warm_ns, 50);
    let warm_p95 = percentile(&warm_ns, 95);
    let speedup = cold_p50 as f64 / (warm_p50.max(1)) as f64;

    let widths = [8, 12, 12, 12];
    header(&["phase", "requests", "p50_us", "p95_us"], &widths);
    row(
        &[
            "cold".to_string(),
            cold_ns.len().to_string(),
            format!("{:.1}", cold_p50 as f64 / 1e3),
            format!("{:.1}", cold_p95 as f64 / 1e3),
        ],
        &widths,
    );
    row(
        &[
            "warm".to_string(),
            warm_ns.len().to_string(),
            format!("{:.1}", warm_p50 as f64 / 1e3),
            format!("{:.1}", warm_p95 as f64 / 1e3),
        ],
        &widths,
    );
    println!();
    println!(
        "Warm hit rate {:.2} ({warm_hits}/{warm_requests}); warm hit is {speedup:.1}x \
         faster than cold synthesis at p50.",
        hit_rate
    );

    let mode = if smoke { "smoke" } else { "full" };
    let mut report = BenchReport::new("serve", mode);
    report.note = "per-request serve latency: cold = canonicalize + synthesize + \
                   persist, warm = canonicalize + cache hit + materialize; the \
                   warm corpus is translated geometry only, so hit rate below \
                   1.0 means canonicalization stopped collapsing the orbit"
        .to_string();
    report.push("serve.cold_p50_ns", cold_p50 as f64);
    report.push("serve.cold_p95_ns", cold_p95 as f64);
    report.push("serve.warm_p50_ns", warm_p50 as f64);
    report.push("serve.warm_p95_ns", warm_p95 as f64);
    report.push("serve.warm_hit_speedup", speedup);
    report.push("serve.hit_rate", hit_rate);
    report.push("serve.warm_hit_rate_dominance", hit_rate);
    report.push("serve.cold_requests", cold_ns.len() as f64);
    report.push("serve.warm_requests", warm_ns.len() as f64);

    if !smoke {
        if cold_misses != cold_ns.len() as u64 {
            violations.push(format!(
                "cold phase expected {} misses, cache saw {cold_misses}",
                cold_ns.len()
            ));
        }
        if warm_hits != warm_requests {
            violations.push(format!(
                "warm phase expected {warm_requests} hits, cache saw {warm_hits}"
            ));
        }
        if speedup < 10.0 {
            violations.push(format!(
                "warm hit is only {speedup:.1}x faster than cold synthesis (need >= 10x)"
            ));
        }
    }

    let written = report.write(bless).expect("write bench report");
    println!();
    for path in written {
        println!("Wrote {}", path.display());
    }
    if !bless {
        println!("(baseline BENCH_serve.json untouched — pass --bless to refresh it)");
    }
    let _ = std::fs::remove_dir_all(&dir);
    if !violations.is_empty() {
        eprintln!("\nserve self-check FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
