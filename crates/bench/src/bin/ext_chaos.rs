//! Extension: closed sensing loop under hard chaos — the degradation
//! curve (probability of success and mean completion vs fault severity)
//! per fault class per control stack.
//!
//! Every run closes the loop ([`RunConfig::sensed_feedback`]): the router
//! is driven by droplet positions reconstructed from the sensed **Y**
//! matrix. Each [`FaultClass`] maps a severity knob onto a concrete
//! [`FaultPlan`] — stuck sensor bits, clustered `2 × 2` electrode death,
//! whole-row loss, or a growing defect front. Five control stacks face
//! identical chips and fault plans:
//!
//!   1. baseline: degradation-unaware shortest path,
//!   2. recovery: reactive stall-triggered re-route,
//!   3. adaptive: the paper's formal-synthesis router,
//!   4. supervised-adaptive: adaptive under the [`Supervisor`]'s
//!      escalation ladder (re-sense → re-synthesize → detour → abort the
//!      operation and continue),
//!   5. supervised-reconfig: the ladder plus the reconfiguration planner
//!      that relocates swallowed target zones onto spare electrodes.
//!
//! The headline: the curves degrade monotonically with severity instead of
//! cliff-dropping, and under the electrode-killing classes the
//! reconfiguring stack sits strictly above supervised-only — detours
//! cannot save an operation whose *target* is dead, relocation can.
//!
//! In full (non-smoke) mode the bin also self-checks the blessed claims —
//! ≥ 2 strict reconfig wins on the clustered and row-loss curves, weakly
//! monotone supervised degradation on at least 3 classes — and exits
//! nonzero on violation, so the CI `chaos-full` stage enforces the curve
//! shape even before `bench_compare` diffs the baseline.
//!
//! [`RunConfig::sensed_feedback`]: meda_sim::RunConfig
//! [`FaultPlan`]: meda_sim::FaultPlan
//! [`FaultClass`]: meda_sim::experiment::FaultClass
//! [`Supervisor`]: meda_sim::Supervisor
#![forbid(unsafe_code)]

use meda_bench::{banner, header, row, BenchReport};
use meda_bioassay::{benchmarks, RjHelper};
use meda_grid::ChipDims;
use meda_sim::experiment::{chaos_sweep, ChaosVariant, FaultClass};
use meda_sim::DegradationConfig;

/// Severity grid for the sensing class (the per-MC stuck-bit rate:
/// {0, 1, 2, 4, 8}% — the classic sweep's grid).
const STUCK_SEVERITIES: [f64; 5] = [0.0, 0.01, 0.02, 0.04, 0.08];

/// Severity grid for the electrode-killing classes (the fraction of the
/// chip the damage reaches). Electrode death is survivable at rates where
/// stuck sensing already wrecks a run, so the grid reaches further to
/// where the curves actually separate.
const DEATH_SEVERITIES: [f64; 5] = [0.0, 0.02, 0.05, 0.10, 0.20];

/// The severity grid a class is swept over.
fn severities(class: FaultClass) -> &'static [f64; 5] {
    match class {
        FaultClass::StuckSensors => &STUCK_SEVERITIES,
        _ => &DEATH_SEVERITIES,
    }
}

/// Smoothing epsilon for the dominance ratios (severity points where both
/// stacks complete nothing must read as a tie, not 0/0).
const EPS: f64 = 1e-6;

/// Tolerance for the weak-monotonicity self-check: one extra completed
/// operation out of the 18-op multiplex assay across 2+ trials is sampling
/// texture, not a shape violation.
const MONO_TOLERANCE: f64 = 0.06;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let bless = std::env::args().any(|a| a == "--bless");
    let trials: u32 = if smoke { 2 } else { 6 };
    let classes: &[FaultClass] = if smoke {
        &[FaultClass::StuckSensors]
    } else {
        &FaultClass::ALL
    };

    banner(
        "Extension — hard-chaos degradation curves (reconfiguration rung)",
        "Sensed feedback on: routers see Y-matrix reconstructions, not \
         ground truth. Each fault class maps one severity knob onto a \
         concrete fault plan; every control stack faces identical chips \
         and plans. PoS counts fully-completed bioassays; 'compl' is the \
         mean fraction of microfluidic operations completed per trial.",
    );
    println!("trials per cell: {trials}\n");

    let dims = ChipDims::PAPER;
    let plan = RjHelper::new(dims)
        .plan(&benchmarks::multiplex_invitro((4, 4)))
        .expect("benchmark plans cleanly");
    let config = DegradationConfig::paper();

    let mode = if smoke { "smoke" } else { "full" };
    let mut report = BenchReport::new("chaos", mode);
    report.note = "hard-chaos degradation curves: PoS and mean completed-operation \
                   fraction per (fault class, severity, control stack), plus \
                   reconfig-vs-supervised dominance ratios and strict-win counts \
                   on the electrode-killing classes; all values are deterministic \
                   given the seeded RNG, so any drift means behaviour changed"
        .to_string();

    let widths = [14, 22, 6, 7, 30];
    let mut violations: Vec<String> = Vec::new();
    for &class in classes {
        println!("fault class: {}", class.name());
        header(
            &[
                "severity",
                "stack",
                "PoS",
                "compl",
                "ladder (rs/rsy/det/rec/abort)",
            ],
            &widths,
        );
        let sevs = severities(class);
        let points = chaos_sweep(
            &plan,
            dims,
            &config,
            &ChaosVariant::ALL,
            class,
            sevs,
            trials,
            2_000,
            616,
        );
        for &sev in sevs {
            for point in points
                .iter()
                .filter(|p| (p.severity - sev).abs() < f64::EPSILON)
            {
                let supervised = matches!(
                    point.variant,
                    ChaosVariant::SupervisedAdaptive | ChaosVariant::SupervisedReconfig
                );
                let ladder = if supervised {
                    format!(
                        "{}/{}/{}/{}/{}",
                        point.rungs.resense,
                        point.rungs.resynth,
                        point.rungs.detour,
                        point.rungs.reconfig,
                        point.rungs.aborted_ops
                    )
                } else {
                    "-".to_string()
                };
                row(
                    &[
                        format!("{:.0}%", sev * 100.0),
                        point.variant.name().to_string(),
                        format!("{:.2}", point.pos),
                        format!("{:.3}", point.mean_completion),
                        ladder,
                    ],
                    &widths,
                );
            }
            println!();
        }

        for point in &points {
            let prefix = format!(
                "{}{:.0}pct.{}",
                class.name(),
                point.severity * 100.0,
                point.variant.name().replace(['-', ' '], "_")
            );
            report.push(format!("{prefix}.pos"), point.pos);
            report.push(format!("{prefix}.mean_completion"), point.mean_completion);
        }

        let curve = |variant: ChaosVariant| -> Vec<f64> {
            sevs.iter()
                .map(|&sev| {
                    points
                        .iter()
                        .find(|p| p.variant == variant && (p.severity - sev).abs() < f64::EPSILON)
                        .map_or(0.0, |p| p.mean_completion)
                })
                .collect()
        };
        let supervised = curve(ChaosVariant::SupervisedAdaptive);
        let reconfig = curve(ChaosVariant::SupervisedReconfig);

        // Strict wins and the worst-case margin over the nonzero
        // severities — the electrode-killing classes gate both.
        let strict_wins = supervised
            .iter()
            .zip(&reconfig)
            .skip(1)
            .filter(|(s, r)| *r > *s)
            .count();
        let min_ratio = supervised
            .iter()
            .zip(&reconfig)
            .skip(1)
            .map(|(s, r)| (r + EPS) / (s + EPS))
            .fold(f64::INFINITY, f64::min);
        if class.gates_dominance() {
            report.push(
                format!("{}.reconfig_vs_supervised_dominance", class.name()),
                min_ratio,
            );
            report.push(
                format!("{}.reconfig_strict_wins_dominance", class.name()),
                strict_wins as f64,
            );
            if !smoke {
                if strict_wins < 2 {
                    violations.push(format!(
                        "{}: reconfig strictly above supervised at only {strict_wins} severity \
                         levels (need >= 2)",
                        class.name()
                    ));
                }
                if min_ratio < 1.0 {
                    violations.push(format!(
                        "{}: reconfig fell below supervised-only (min ratio {min_ratio:.4})",
                        class.name()
                    ));
                }
            }
        }

        // Weak monotonicity of the supervised curves: more severity must
        // not mean more completion (within sampling tolerance).
        let monotone = |c: &[f64]| c.windows(2).all(|w| w[1] <= w[0] + MONO_TOLERANCE);
        let class_monotone = monotone(&supervised) && monotone(&reconfig);
        report.push(
            format!("{}.curve_monotone", class.name()),
            f64::from(u8::from(class_monotone)),
        );
        if !class_monotone && !smoke {
            violations.push(format!(
                "{}: supervised degradation curve is not weakly monotone \
                 (supervised {supervised:?}, reconfig {reconfig:?})",
                class.name()
            ));
        }

        println!(
            "  {}: reconfig strict wins {strict_wins}/{}, min reconfig/supervised ratio {:.3}, \
             monotone {}",
            class.name(),
            sevs.len() - 1,
            min_ratio,
            class_monotone,
        );
        println!();
    }

    println!(
        "Reading: every curve degrades smoothly with severity instead of \
         cliff-dropping. Under clustered and row-loss electrode death the \
         reconfiguring stack dominates supervised-only — a detour cannot \
         save an operation whose target region is dead, relocating the \
         region onto spare electrodes can."
    );

    let written = report.write(bless).expect("write bench report");
    println!();
    for path in written {
        println!("Wrote {}", path.display());
    }
    if !bless {
        println!("(baseline BENCH_chaos.json untouched — pass --bless to refresh it)");
    }
    if !violations.is_empty() {
        eprintln!("\ndegradation-curve self-check FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

/// Which classes gate the reconfig-vs-supervised dominance claim. The
/// sensing-only and creeping-front classes are reported but not gated:
/// stuck sensors leave the electrodes healthy (nothing to relocate around)
/// and the front eventually swallows any spare region too.
trait GatesDominance {
    fn gates_dominance(self) -> bool;
}

impl GatesDominance for FaultClass {
    fn gates_dominance(self) -> bool {
        matches!(self, FaultClass::ClusterDeath | FaultClass::RowLoss)
    }
}
