//! Biochip geometry substrate for the MEDA workspace.
//!
//! A micro-electrode-dot-array (MEDA) biochip is a `W × H` array of
//! microelectrode cells (MCs). Everything else in this workspace — droplets,
//! actuation patterns, degradation matrices, health matrices — is expressed
//! over that array. This crate provides the shared vocabulary:
//!
//! * [`Cell`] — one microelectrode location `(x, y)`, 1-based like the paper;
//! * [`Interval`] — the discrete interval `[[a, b]]` of Section II-A;
//! * [`Rect`] — an axis-aligned rectangle `(xa, ya, xb, yb)`, the shape of
//!   both droplets and hazard bounds (Section V-A);
//! * [`ChipDims`] — the biochip dimensions `W × H`;
//! * [`Grid`] — a dense row-major `W × H` matrix used for the actuation
//!   matrix **U**, degradation matrix **D**, health matrix **H**, and the
//!   actuation-count matrix **N**.
//!
//! Coordinates are `i32` rather than `u32` so that off-chip locations such as
//! the dispensing start `(0, 0, 0, 0)` and frontier computations like
//! `x - 1` (Table II of the paper) never underflow.
//!
//! # Examples
//!
//! ```
//! use meda_grid::{Cell, ChipDims, Grid, Rect};
//!
//! let dims = ChipDims::new(60, 30);
//! let droplet = Rect::new(3, 2, 7, 5);
//! assert_eq!(droplet.width(), 5);
//! assert_eq!(droplet.height(), 4);
//! assert_eq!(droplet.area(), 20);
//! assert!(dims.contains_rect(droplet));
//!
//! let mut actuation = Grid::<bool>::new(dims, false);
//! actuation.fill_rect(droplet, true);
//! assert!(actuation[Cell::new(3, 2)]);
//! assert!(!actuation[Cell::new(2, 2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
mod cell;
mod dims;
mod grid;
mod interval;
mod rect;

pub use cell::Cell;
pub use dims::ChipDims;
pub use grid::{Grid, GridIndexError};
pub use interval::Interval;
pub use rect::{Rect, RectError};
