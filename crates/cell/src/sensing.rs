use std::fmt;

use meda_grid::{Cell, Grid};

use crate::{CellParams, RcWaveform};

/// The 2-bit health reading produced by the dual-DFF sensing circuit
/// (Section III-B).
///
/// The discriminant encodes the `(original, added)` DFF pair as
/// `original·2 + added`, matching the paper's "11" / "01" / "00" notation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum HealthReading {
    /// Both DFFs captured `0`: completely degraded microelectrode (`00`).
    Degraded = 0b00,
    /// Original DFF `0`, added DFF `1`: partially degraded (`01`).
    Partial = 0b01,
    /// Both DFFs captured `1`: healthy microelectrode (`11`).
    Healthy = 0b11,
}

impl HealthReading {
    /// The raw 2-bit value shifted out on the scan chain.
    #[must_use]
    pub const fn bits(self) -> u8 {
        self as u8
    }

    /// Decodes a 2-bit scan value. The pattern `10` (original `1`, added `0`)
    /// cannot be produced by a monotonically charging node and is reported
    /// as `None`.
    #[must_use]
    pub const fn from_bits(bits: u8) -> Option<Self> {
        match bits {
            0b00 => Some(Self::Degraded),
            0b01 => Some(Self::Partial),
            0b11 => Some(Self::Healthy),
            _ => None,
        }
    }
}

impl fmt::Display for HealthReading {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02b}", self.bits())
    }
}

/// The pair of D flip-flops added to the MC design (Fig. 1(b)).
///
/// The original DFF samples at `t_clk_original`; the added DFF samples
/// `dff_skew` (5 ns) later. Each captures whether the sensing node has
/// crossed the logic threshold by its clock edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualDff {
    /// Clock edge of the original DFF in seconds.
    pub t_original: f64,
    /// Clock edge of the added DFF in seconds.
    pub t_added: f64,
}

impl DualDff {
    /// Creates the DFF pair from the cell parameters.
    #[must_use]
    pub fn from_params(params: &CellParams) -> Self {
        Self {
            t_original: params.t_clk_original,
            t_added: params.t_clk_added(),
        }
    }

    /// Samples the waveform at both edges, returning `(original, added)`.
    #[must_use]
    pub fn sample(&self, waveform: &RcWaveform, v_threshold: f64) -> (bool, bool) {
        (
            waveform.crossed_by(v_threshold, self.t_original),
            waveform.crossed_by(v_threshold, self.t_added),
        )
    }
}

/// The complete capacitive sensing circuit of one microelectrode cell.
///
/// # Examples
///
/// Reproduces the Fig. 2 behaviour:
///
/// ```
/// use meda_cell::{CellParams, HealthReading, SensingCircuit};
///
/// let p = CellParams::paper();
/// let s = SensingCircuit::new(p);
/// assert_eq!(s.sense(p.cap_healthy), HealthReading::Healthy);   // "11"
/// assert_eq!(s.sense(p.cap_partial), HealthReading::Partial);   // "01"
/// assert_eq!(s.sense(p.cap_degraded), HealthReading::Degraded); // "00"
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensingCircuit {
    params: CellParams,
    dffs: DualDff,
}

impl SensingCircuit {
    /// Creates a sensing circuit with the given cell parameters.
    #[must_use]
    pub fn new(params: CellParams) -> Self {
        let dffs = DualDff::from_params(&params);
        Self { params, dffs }
    }

    /// The cell parameters in use.
    #[must_use]
    pub fn params(&self) -> &CellParams {
        &self.params
    }

    /// The charging waveform of the sensing node for a given electrode
    /// capacitance.
    #[must_use]
    pub fn waveform(&self, capacitance: f64) -> RcWaveform {
        RcWaveform::new(self.params.r_sense, capacitance, self.params.vdd)
    }

    /// Runs one sensing phase on an electrode with capacitance `capacitance`
    /// and decodes the dual-DFF samples into a 2-bit health reading.
    ///
    /// A node that crosses the threshold before both edges reads `11`
    /// (healthy); between the edges `01` (partial); after both `00`
    /// (degraded). The physically impossible `10` cannot occur because the
    /// added edge is strictly later and the waveform is monotone.
    #[must_use]
    pub fn sense(&self, capacitance: f64) -> HealthReading {
        let waveform = self.waveform(capacitance);
        let (original, added) = self.dffs.sample(&waveform, self.params.vth);
        match (original, added) {
            (true, true) => HealthReading::Healthy,
            (false, true) => HealthReading::Partial,
            (false, false) => HealthReading::Degraded,
            (true, false) => unreachable!("monotone waveform cannot uncross the threshold"),
        }
    }

    /// Whether a droplet is present, from the location-sensing phase: a
    /// droplet raises the MC capacitance by `droplet_cap_factor`, pushing the
    /// crossing far past both DFF edges.
    #[must_use]
    pub fn sense_droplet(&self, base_capacitance: f64, droplet_present: bool) -> bool {
        let cap = if droplet_present {
            base_capacitance * self.params.droplet_cap_factor
        } else {
            base_capacitance
        };
        // Droplet present ⇔ slow charging ⇔ threshold NOT crossed by the
        // original edge.
        !self
            .waveform(cap)
            .crossed_by(self.params.vth, self.dffs.t_added + self.params.dff_skew)
    }

    /// Threshold-crossing time for a given capacitance — the quantity Fig. 2
    /// plots for the three degradation levels.
    #[must_use]
    pub fn crossing_time(&self, capacitance: f64) -> f64 {
        self.waveform(capacitance)
            .crossing_time(self.params.vth)
            .expect("vth < vdd by construction")
    }
}

/// A location-sensing DFF stuck at a constant value.
///
/// The droplet-presence bit of one MC always scans out as `reads`,
/// regardless of the actual cover — the sensed location matrix **Y** is
/// corrupted while the degradation matrix **D** (and the health bits) stay
/// untouched. Stuck-at-1 bits fabricate phantom droplet cells; stuck-at-0
/// bits punch holes into real droplets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckBit {
    /// The affected microelectrode cell.
    pub cell: Cell,
    /// The constant value the location bit reads.
    pub reads: bool,
}

/// Applies stuck location bits to a sensed location matrix **Y** in place.
/// Faults whose cell lies off the grid are ignored (a scan-chain position
/// that does not exist cannot be read).
///
/// # Examples
///
/// ```
/// use meda_cell::{apply_stuck_bits, StuckBit};
/// use meda_grid::{Cell, ChipDims, Grid};
///
/// let mut y = Grid::new(ChipDims::new(4, 4), false);
/// apply_stuck_bits(
///     &mut y,
///     &[StuckBit { cell: Cell::new(2, 2), reads: true }],
/// );
/// assert!(y[Cell::new(2, 2)]);
/// ```
pub fn apply_stuck_bits(locations: &mut Grid<bool>, faults: &[StuckBit]) {
    for fault in faults {
        if let Some(bit) = locations.get_mut(fault.cell) {
            *bit = fault.reads;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn circuit() -> SensingCircuit {
        SensingCircuit::new(CellParams::paper())
    }

    #[test]
    fn fig2_crossings_are_5ns_apart() {
        let s = circuit();
        let p = *s.params();
        let t0 = s.crossing_time(p.cap_healthy);
        let t1 = s.crossing_time(p.cap_partial);
        let t2 = s.crossing_time(p.cap_degraded);
        assert!((t1 - t0 - 5e-9).abs() < 1e-11, "healthy→partial spacing");
        assert!((t2 - t1 - 5e-9).abs() < 1e-11, "partial→degraded spacing");
    }

    #[test]
    fn dff_edges_straddle_crossings() {
        let s = circuit();
        let p = *s.params();
        let d = DualDff::from_params(&p);
        assert!(s.crossing_time(p.cap_healthy) < d.t_original);
        assert!(s.crossing_time(p.cap_partial) > d.t_original);
        assert!(s.crossing_time(p.cap_partial) < d.t_added);
        assert!(s.crossing_time(p.cap_degraded) > d.t_added);
    }

    #[test]
    fn readings_match_paper_encoding() {
        let s = circuit();
        let p = *s.params();
        assert_eq!(s.sense(p.cap_healthy).bits(), 0b11);
        assert_eq!(s.sense(p.cap_partial).bits(), 0b01);
        assert_eq!(s.sense(p.cap_degraded).bits(), 0b00);
    }

    #[test]
    fn reading_roundtrip_and_invalid_pattern() {
        for r in [
            HealthReading::Healthy,
            HealthReading::Partial,
            HealthReading::Degraded,
        ] {
            assert_eq!(HealthReading::from_bits(r.bits()), Some(r));
        }
        assert_eq!(HealthReading::from_bits(0b10), None);
    }

    #[test]
    fn droplet_detection_independent_of_health() {
        let s = circuit();
        let p = *s.params();
        for cap in [p.cap_healthy, p.cap_partial, p.cap_degraded] {
            assert!(s.sense_droplet(cap, true));
            assert!(!s.sense_droplet(cap, false));
        }
    }

    #[test]
    fn reading_monotone_in_capacitance() {
        // More capacitance can only make the reading worse (lower), never
        // better.
        let s = circuit();
        let p = *s.params();
        let mut prev = HealthReading::Healthy;
        let c0 = p.cap_healthy;
        for i in 0..30 {
            let cap = c0 + i as f64 * 0.5e-18;
            let r = s.sense(cap);
            assert!(r <= prev, "reading worsened out of order at step {i}");
            prev = r;
        }
        assert_eq!(prev, HealthReading::Degraded);
    }

    #[test]
    fn display_is_two_bits() {
        assert_eq!(HealthReading::Healthy.to_string(), "11");
        assert_eq!(HealthReading::Partial.to_string(), "01");
        assert_eq!(HealthReading::Degraded.to_string(), "00");
    }

    #[test]
    fn stuck_bits_override_cover_both_ways() {
        use meda_grid::{Cell, ChipDims, Grid, Rect};

        let dims = ChipDims::new(6, 6);
        let mut y = Grid::new(dims, false);
        y.fill_rect(Rect::new(2, 2, 4, 4), true);
        apply_stuck_bits(
            &mut y,
            &[
                StuckBit {
                    cell: Cell::new(3, 3),
                    reads: false,
                },
                StuckBit {
                    cell: Cell::new(1, 1),
                    reads: true,
                },
                // Off-grid faults are ignored, not a panic.
                StuckBit {
                    cell: Cell::new(40, 40),
                    reads: true,
                },
            ],
        );
        assert!(!y[Cell::new(3, 3)], "stuck-at-0 punches a hole");
        assert!(y[Cell::new(1, 1)], "stuck-at-1 fabricates a phantom");
        assert!(y[Cell::new(2, 2)], "other cover cells are untouched");
    }
}
