//! Formal synthesis of adaptive droplet-routing strategies — the
//! model-checking back end of Section VI of the paper.
//!
//! The paper feeds the per-routing-job MDP ([`meda_core::RoutingMdp`]) and a
//! reach-avoid query into PRISM-games. Both query types are supported here
//! by an explicit-state Gauss–Seidel value-iteration engine (see `DESIGN.md`
//! §3 for the substitution rationale):
//!
//! * `φ_p : Pmax=? [ □¬hazard ∧ ◇goal ]` — [`Query::MaxReachProbability`];
//! * `φ_r : Rmin=? [ □¬hazard ∧ ◇goal ]` — [`Query::MinExpectedCycles`]
//!   (the per-cycle reward `r_k` of Section VI-C).
//!
//! Because actions that could leave the hazard bounds are disabled in the
//! MDP itself, `□¬hazard` holds along every path and the queries reduce to
//! reachability. For this fragment memoryless deterministic strategies are
//! optimal, and [`synthesize`] (Algorithm 2) returns the optimal
//! [`RoutingStrategy`] `π` together with its value at the initial state
//! (the probability, or the expected number of cycles `k`).
//!
//! [`StrategyLibrary`] implements the offline/online *hybrid* scheduling
//! store of Section VI-D, keyed by the routing job and a digest of the
//! health matrix within its hazard bounds.
//!
//! # Examples
//!
//! ```
//! use meda_core::{ActionConfig, RoutingMdp, UniformField};
//! use meda_grid::Rect;
//! use meda_synth::{synthesize, Query};
//!
//! let mdp = RoutingMdp::build(
//!     Rect::new(1, 1, 3, 3),
//!     Rect::new(8, 8, 10, 10),
//!     Rect::new(1, 1, 10, 10),
//!     &UniformField::pristine(),
//!     &ActionConfig::cardinal_only(),
//! )?;
//! let strategy = synthesize(&mdp, Query::MinExpectedCycles)?;
//! // On a pristine chip the optimal route takes Manhattan-distance cycles.
//! assert_eq!(strategy.value_at_init().round() as u32, 14);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod canonical;
mod export;
mod game;
mod horizon;
mod library;
mod perf;
mod query;
mod reservations;
mod serve;
mod solver;
mod strategy;

pub use cache::{CacheStats, PersistentCache, CACHE_SCHEMA};
pub use canonical::{
    canonicalize, canonicalize_strategy, materialize, CanonicalJob, CanonicalJobKey, JobTransform,
    D4,
};
pub use export::{to_prism_explicit, PrismModel};
pub use game::{RobustGame, RobustValues};
pub use horizon::{bounded_reach_probability, HorizonValues};
pub use library::{LibraryKey, StrategyLibrary};
pub use perf::{measure_synthesis, PerfRecord};
pub use query::Query;
pub use reservations::CorridorReservations;
pub use serve::{
    parse_request, run_batch, run_stream, BatchOutcome, ServeEngine, ServeOp, ServeRequest,
};
pub use solver::{
    max_reach_probability, min_expected_cycles, min_expected_cycles_with_reach, SolverMethod,
    SolverOptions, SolverResult,
};
pub use strategy::{synthesize, synthesize_with, RoutingStrategy, SynthesisError};
