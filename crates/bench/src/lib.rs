//! Shared formatting helpers for the figure/table regeneration binaries
//! (`crates/bench/src/bin/*`). Each binary reproduces one table or figure
//! of the paper and prints the same rows/series the paper reports; see
//! `DESIGN.md` §2 for the experiment index and `EXPERIMENTS.md` for
//! paper-versus-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod report;

pub use compare::{compare, render, Comparison, DeltaRow, Verdict};
pub use report::BenchReport;

/// Prints a figure/table banner.
pub fn banner(title: &str, caption: &str) {
    println!("\n=== {title} ===");
    println!("{caption}\n");
}

/// Prints a header row followed by an underline.
pub fn header(cols: &[&str], widths: &[usize]) {
    let line: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    let text = line.join("  ");
    println!("{text}");
    println!("{}", "-".repeat(text.len()));
}

/// Formats one row of right-aligned cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect();
    println!("{}", line.join("  "));
}

/// Renders a unit-interval value as a crude inline bar for trend scanning.
#[must_use]
pub fn bar(value: f64, width: usize) -> String {
    let filled = (value.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(width - filled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps_and_scales() {
        assert_eq!(bar(0.0, 10), "..........");
        assert_eq!(bar(1.0, 10), "##########");
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(7.0, 4), "####");
    }
}
