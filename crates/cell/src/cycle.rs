use meda_grid::{ChipDims, Grid};

use crate::{CellParams, HealthReading, ScanChain, SensingCircuit};

/// One MEDA *operational cycle* (Section III-A): shift an actuation
/// bitstream into the array, actuate the MCs, sense droplet locations and
/// health, and shift the sensing results out.
///
/// The cycle model is the hardware-facing seam between the controller (which
/// produces actuation matrices **U** and consumes location matrix **Y** and
/// health matrix **H**) and the physical chip, which in this workspace is
/// simulated by `meda-sim`.
///
/// # Examples
///
/// ```
/// use meda_cell::{CellParams, OperationalCycle};
/// use meda_grid::{Cell, ChipDims, Grid, Rect};
///
/// let dims = ChipDims::new(8, 4);
/// let cycle = OperationalCycle::new(dims, CellParams::paper());
///
/// // Electrode capacitances: all healthy.
/// let caps = Grid::new(dims, CellParams::paper().cap_healthy);
/// // A droplet covers (2,2)-(3,3).
/// let mut droplet = Grid::new(dims, false);
/// droplet.fill_rect(Rect::new(2, 2, 3, 3), true);
///
/// let mut actuation = Grid::new(dims, false);
/// actuation.fill_rect(Rect::new(3, 2, 4, 3), true);
///
/// let report = cycle.run(&actuation, &caps, &droplet);
/// assert_eq!(report.actuated_count, 4);
/// assert!(report.locations[Cell::new(2, 2)]);
/// assert!(!report.locations[Cell::new(5, 2)]);
/// ```
#[derive(Debug, Clone)]
pub struct OperationalCycle {
    dims: ChipDims,
    chain: ScanChain,
    circuit: SensingCircuit,
}

/// The outputs of one operational cycle.
#[derive(Debug, Clone)]
pub struct CycleReport {
    /// Droplet-location matrix **Y** sensed this cycle.
    pub locations: Grid<bool>,
    /// 2-bit health reading per MC from the dual-DFF sensing.
    pub health: Grid<HealthReading>,
    /// Number of MCs actuated this cycle.
    pub actuated_count: usize,
    /// Length in bits of the scan-out stream (location + 2-bit health).
    pub scan_bits: usize,
}

impl OperationalCycle {
    /// Creates an operational-cycle model for a `W × H` array.
    #[must_use]
    pub fn new(dims: ChipDims, params: CellParams) -> Self {
        Self {
            dims,
            chain: ScanChain::new(dims),
            circuit: SensingCircuit::new(params),
        }
    }

    /// The chip dimensions.
    #[must_use]
    pub fn dims(&self) -> ChipDims {
        self.dims
    }

    /// The per-cell sensing circuit.
    #[must_use]
    pub fn circuit(&self) -> &SensingCircuit {
        &self.circuit
    }

    /// Runs one cycle: `actuation` is the scanned-in pattern **U**,
    /// `capacitances` the present per-electrode capacitance (reflecting
    /// degradation), and `droplet_cover` which MCs a droplet currently
    /// covers.
    ///
    /// # Panics
    ///
    /// Panics if any grid's dimensions differ from the cycle's.
    #[must_use]
    pub fn run(
        &self,
        actuation: &Grid<bool>,
        capacitances: &Grid<f64>,
        droplet_cover: &Grid<bool>,
    ) -> CycleReport {
        assert_eq!(actuation.dims(), self.dims, "actuation dims mismatch");
        assert_eq!(capacitances.dims(), self.dims, "capacitance dims mismatch");
        assert_eq!(droplet_cover.dims(), self.dims, "droplet dims mismatch");

        // Scan in + actuate.
        let scan_in = self.chain.serialize(actuation);
        let actuated_count = scan_in.iter().filter(|b| **b).count();

        // Sense locations and health per MC.
        let locations = Grid::from_fn(self.dims, |c| {
            self.circuit
                .sense_droplet(capacitances[c], droplet_cover[c])
        });
        let health = Grid::from_fn(self.dims, |c| self.circuit.sense(capacitances[c]));

        // Scan out: 1 location bit + 2 health bits per MC.
        let health_bits = self.chain.serialize_health(&health.map(|_, r| r.bits()));
        let location_bits = self.chain.serialize(&locations);
        let scan_bits = location_bits.len() + health_bits.len();

        CycleReport {
            locations,
            health,
            actuated_count,
            scan_bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_grid::{Cell, Rect};

    fn setup(dims: ChipDims) -> (OperationalCycle, Grid<f64>, Grid<bool>) {
        let params = CellParams::paper();
        let cycle = OperationalCycle::new(dims, params);
        let caps = Grid::new(dims, params.cap_healthy);
        let cover = Grid::new(dims, false);
        (cycle, caps, cover)
    }

    #[test]
    fn healthy_chip_reads_all_healthy() {
        let dims = ChipDims::new(5, 5);
        let (cycle, caps, cover) = setup(dims);
        let report = cycle.run(&Grid::new(dims, false), &caps, &cover);
        assert!(report
            .health
            .iter()
            .all(|(_, r)| *r == HealthReading::Healthy));
        assert_eq!(report.actuated_count, 0);
    }

    #[test]
    fn degraded_cells_read_degraded() {
        let dims = ChipDims::new(4, 4);
        let params = CellParams::paper();
        let (cycle, mut caps, cover) = setup(dims);
        caps[Cell::new(2, 2)] = params.cap_partial;
        caps[Cell::new(3, 3)] = params.cap_degraded;
        let report = cycle.run(&Grid::new(dims, false), &caps, &cover);
        assert_eq!(report.health[Cell::new(2, 2)], HealthReading::Partial);
        assert_eq!(report.health[Cell::new(3, 3)], HealthReading::Degraded);
        assert_eq!(report.health[Cell::new(1, 1)], HealthReading::Healthy);
    }

    #[test]
    fn droplet_location_sensed_exactly() {
        let dims = ChipDims::new(6, 6);
        let (cycle, caps, mut cover) = setup(dims);
        let droplet = Rect::new(2, 3, 4, 5);
        cover.fill_rect(droplet, true);
        let report = cycle.run(&Grid::new(dims, false), &caps, &cover);
        for (cell, sensed) in report.locations.iter() {
            assert_eq!(*sensed, droplet.contains_cell(cell), "at {cell}");
        }
    }

    #[test]
    fn scan_stream_is_three_bits_per_cell() {
        let dims = ChipDims::new(3, 3);
        let (cycle, caps, cover) = setup(dims);
        let report = cycle.run(&Grid::new(dims, false), &caps, &cover);
        assert_eq!(report.scan_bits, 3 * dims.cell_count());
    }

    #[test]
    fn actuated_count_matches_pattern() {
        let dims = ChipDims::new(6, 6);
        let (cycle, caps, cover) = setup(dims);
        let mut pattern = Grid::new(dims, false);
        pattern.fill_rect(Rect::new(1, 1, 3, 2), true);
        let report = cycle.run(&pattern, &caps, &cover);
        assert_eq!(report.actuated_count, 6);
    }
}
