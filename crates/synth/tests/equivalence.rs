//! Equivalence of the CSR/dense-index model builder against a reference
//! implementation of the original hash-map-based construction, and of the
//! flat-array solver sweeps against per-state reference iteration.
//!
//! The CSR rewrite (DESIGN.md §7) must be a pure representation change:
//! identical state sets in identical BFS order, identical `MdpStats`, and
//! solver values equal to the reference within 1e-9 — including the
//! `AbsorbingSink` sentinel path and the blocked/detour cases that
//! exercise ∞ values.

use std::collections::HashMap;

use meda_core::{
    transitions, Action, ActionConfig, ForceProvider, HazardHandling, RawField, RoutingMdp,
    UniformField,
};
use meda_grid::{Cell, ChipDims, Grid, Rect};
use meda_synth::{max_reach_probability, min_expected_cycles, SolverOptions};

/// One state's choices in the pre-CSR nested-`Vec` layout.
type ChoiceRow = Vec<(Action, Vec<(usize, f64)>)>;

/// The pre-CSR model layout: per-state nested vectors plus a hash-map
/// state index — the representation the dense/CSR builder replaced.
struct RefMdp {
    states: Vec<Rect>,
    choices: Vec<ChoiceRow>,
    goal_flags: Vec<bool>,
    sink: Option<usize>,
}

/// Faithful reimplementation of the original hash-map BFS construction.
fn build_reference(
    start: Rect,
    goal: Rect,
    bounds: Rect,
    field: &dyn ForceProvider,
    config: &ActionConfig,
    hazard: HazardHandling,
) -> RefMdp {
    let mut states = vec![start];
    let mut index: HashMap<Rect, usize> = HashMap::new();
    index.insert(start, 0);
    let mut choices: Vec<ChoiceRow> = Vec::new();
    let mut goal_flags = vec![goal.contains_rect(start)];
    let mut sink: Option<usize> = None;

    let mut frontier = 0;
    while frontier < states.len() {
        let delta = states[frontier];
        let mut row = Vec::new();
        let is_sink = Some(frontier) == sink;
        if !goal_flags[frontier] && !is_sink {
            for action in Action::ALL {
                let enabled = match hazard {
                    HazardHandling::GuardDisable => action.is_enabled(delta, bounds, config),
                    HazardHandling::AbsorbingSink => {
                        action.is_applicable(delta)
                            && action.is_enabled(delta, bounds.expand(4), config)
                    }
                };
                if !enabled {
                    continue;
                }
                let mut branch = Vec::new();
                for outcome in transitions(delta, action, field) {
                    if outcome.probability <= 0.0 {
                        continue;
                    }
                    let next = if bounds.contains_rect(outcome.droplet) {
                        *index.entry(outcome.droplet).or_insert_with(|| {
                            states.push(outcome.droplet);
                            goal_flags.push(goal.contains_rect(outcome.droplet));
                            states.len() - 1
                        })
                    } else {
                        *sink.get_or_insert_with(|| {
                            let sentinel = bounds.translate(2 * (bounds.xb - bounds.xa + 10), 0);
                            states.push(sentinel);
                            goal_flags.push(false);
                            index.insert(sentinel, states.len() - 1);
                            states.len() - 1
                        })
                    };
                    branch.push((next, outcome.probability));
                }
                if !branch.is_empty() {
                    row.push((action, branch));
                }
            }
        }
        choices.push(row);
        frontier += 1;
    }

    RefMdp {
        states,
        choices,
        goal_flags,
        sink,
    }
}

/// Reference Gauss–Seidel Pmax over the nested-vector layout.
fn ref_pmax(mdp: &RefMdp) -> Vec<f64> {
    let n = mdp.states.len();
    let mut values: Vec<f64> = (0..n)
        .map(|i| if mdp.goal_flags[i] { 1.0 } else { 0.0 })
        .collect();
    for _ in 0..100_000 {
        let mut delta = 0.0f64;
        for i in 0..n {
            if mdp.goal_flags[i] {
                continue;
            }
            let mut best = 0.0f64;
            for (_, branch) in &mdp.choices[i] {
                let v: f64 = branch.iter().map(|&(j, p)| p * values[j]).sum();
                best = best.max(v);
            }
            delta = delta.max((best - values[i]).abs());
            values[i] = best;
        }
        if delta < 1e-12 {
            break;
        }
    }
    values
}

/// Reference Gauss–Seidel Rmin with self-loop factoring and ∞-seeding.
fn ref_rmin(mdp: &RefMdp) -> Vec<f64> {
    let reach = ref_pmax(mdp);
    let n = mdp.states.len();
    let mut values: Vec<f64> = (0..n)
        .map(|i| {
            if mdp.goal_flags[i] {
                0.0
            } else if reach[i] < 1.0 - 1e-6 {
                f64::INFINITY
            } else {
                0.0
            }
        })
        .collect();
    for _ in 0..100_000 {
        let mut delta = 0.0f64;
        for i in 0..n {
            if mdp.goal_flags[i] || values[i].is_infinite() {
                continue;
            }
            let mut best = f64::INFINITY;
            'choices: for (_, branch) in &mdp.choices[i] {
                let mut p_self = 0.0;
                let mut rest = 0.0;
                for &(j, p) in branch {
                    if j == i {
                        p_self += p;
                    } else if values[j].is_infinite() {
                        continue 'choices;
                    } else {
                        rest += p * values[j];
                    }
                }
                if p_self < 1.0 - 1e-12 {
                    best = best.min((1.0 + rest) / (1.0 - p_self));
                }
            }
            if best.is_finite() {
                delta = delta.max((best - values[i]).abs());
                values[i] = best;
            }
        }
        if delta < 1e-12 {
            break;
        }
    }
    values
}

/// Asserts the CSR model is bit-identical to the reference construction:
/// same states in the same order, same per-state actions and branch
/// distributions, same sink, same stats.
fn assert_models_equal(mdp: &RoutingMdp, reference: &RefMdp) {
    assert_eq!(mdp.len(), reference.states.len(), "state count");
    for i in 0..mdp.len() {
        assert_eq!(mdp.state(i), reference.states[i], "state {i}");
        assert_eq!(mdp.is_goal(i), reference.goal_flags[i], "goal flag {i}");
        assert_eq!(mdp.state_index(reference.states[i]), Some(i));
        let got: Vec<(Action, Vec<(usize, f64)>)> = mdp
            .choices(i)
            .iter()
            .map(|(a, b)| (a, b.to_vec()))
            .collect();
        assert_eq!(got, reference.choices[i], "choices of state {i}");
    }
    assert_eq!(mdp.hazard_sink(), reference.sink, "sink index");
    let stats = mdp.stats();
    assert_eq!(stats.states, reference.states.len());
    assert_eq!(
        stats.choices,
        reference.choices.iter().map(Vec::len).sum::<usize>()
    );
    assert_eq!(
        stats.transitions,
        reference
            .choices
            .iter()
            .flatten()
            .map(|(_, b)| b.len())
            .sum::<usize>()
    );
}

/// Asserts solver values agree with the reference within 1e-9 (∞ matches
/// exactly).
fn assert_values_equal(got: &[f64], want: &[f64]) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if w.is_infinite() {
            assert!(g.is_infinite(), "state {i}: {g} vs ∞");
        } else {
            assert!((g - w).abs() < 1e-9, "state {i}: {g} vs {w}");
        }
    }
}

fn check_case(
    start: Rect,
    goal: Rect,
    bounds: Rect,
    field: &dyn ForceProvider,
    config: &ActionConfig,
    hazard: HazardHandling,
) {
    let mdp = RoutingMdp::build_with(start, goal, bounds, field, config, hazard).unwrap();
    let reference = build_reference(start, goal, bounds, field, config, hazard);
    assert_models_equal(&mdp, &reference);
    // Converge both sides to 1e-12 so the 1e-9 comparison measures the
    // representations, not residual iteration error.
    let opts = SolverOptions {
        epsilon: 1e-12,
        ..SolverOptions::default()
    };
    assert_values_equal(
        &max_reach_probability(&mdp, opts.clone()).values,
        &ref_pmax(&reference),
    );
    assert_values_equal(
        &min_expected_cycles(&mdp, opts).values,
        &ref_rmin(&reference),
    );
}

#[test]
fn hand_enumerated_corridor() {
    // 1×1 droplet, 3-cell corridor at force 0.5: exactly the states
    // (1,1), (2,1), (3,1) in BFS order; the interior state has E and W,
    // the start only E, the goal nothing; every move branches into
    // {success 0.5, stay 0.5}.
    let mdp = RoutingMdp::build(
        Rect::new(1, 1, 1, 1),
        Rect::new(3, 1, 3, 1),
        Rect::new(1, 1, 3, 1),
        &UniformField::new(0.5),
        &ActionConfig::cardinal_only(),
    )
    .unwrap();
    assert_eq!(mdp.len(), 3);
    assert_eq!(mdp.state(0), Rect::new(1, 1, 1, 1));
    let s1 = mdp.state_index(Rect::new(2, 1, 2, 1)).unwrap();
    let s2 = mdp.state_index(Rect::new(3, 1, 3, 1)).unwrap();
    assert_eq!((s1, s2), (1, 2), "BFS discovers left-to-right");
    assert!(mdp.is_goal(2) && !mdp.is_goal(0) && !mdp.is_goal(1));

    let stats = mdp.stats();
    assert_eq!(stats.states, 3);
    assert_eq!(stats.choices, 3, "E at s0; E and W at s1");
    assert_eq!(stats.transitions, 6, "each move: success + stay");
    assert!(mdp.choices(2).is_empty());

    for i in [0usize, 1] {
        for (_, branch) in mdp.choices(i) {
            assert_eq!(branch.len(), 2);
            let total: f64 = branch.iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(branch.iter().any(|(j, _)| j == i), "stay branch");
        }
    }
    // Expected cycles: distance 2 at success probability 0.5 each step.
    let r = min_expected_cycles(&mdp, SolverOptions::default());
    assert!((r.values[0] - 4.0).abs() < 1e-9);

    check_case(
        Rect::new(1, 1, 1, 1),
        Rect::new(3, 1, 3, 1),
        Rect::new(1, 1, 3, 1),
        &UniformField::new(0.5),
        &ActionConfig::cardinal_only(),
        HazardHandling::GuardDisable,
    );
}

#[test]
fn uniform_area_matches_reference() {
    for config in [ActionConfig::cardinal_only(), ActionConfig::default()] {
        check_case(
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::new(0.8),
            &config,
            HazardHandling::GuardDisable,
        );
    }
}

#[test]
fn absorbing_sink_sentinel_matches_reference() {
    for config in [ActionConfig::cardinal_only(), ActionConfig::default()] {
        check_case(
            Rect::new(1, 1, 3, 3),
            Rect::new(8, 8, 10, 10),
            Rect::new(1, 1, 10, 10),
            &UniformField::new(0.9),
            &config,
            HazardHandling::AbsorbingSink,
        );
    }
}

#[test]
fn blocked_corridor_matches_reference() {
    // Dead middle cell ⇒ Pmax 0 / Rmin ∞ at the init state; the ∞
    // plumbing must agree exactly between layouts.
    let dims = ChipDims::new(5, 1);
    let mut f = Grid::new(dims, 1.0);
    f[Cell::new(3, 1)] = 0.0;
    check_case(
        Rect::new(1, 1, 1, 1),
        Rect::new(5, 1, 5, 1),
        Rect::new(1, 1, 5, 1),
        &RawField::new(f),
        &ActionConfig::cardinal_only(),
        HazardHandling::GuardDisable,
    );
}

#[test]
fn detour_field_matches_reference() {
    let dims = ChipDims::new(7, 5);
    let mut f = Grid::new(dims, 1.0);
    for y in 1..=4 {
        f[Cell::new(4, y)] = 0.05;
    }
    let field = RawField::new(f);
    for hazard in [HazardHandling::GuardDisable, HazardHandling::AbsorbingSink] {
        check_case(
            Rect::new(1, 1, 1, 1),
            Rect::new(7, 1, 7, 1),
            Rect::new(1, 1, 7, 5),
            &field,
            &ActionConfig::cardinal_only(),
            hazard,
        );
    }
}

#[test]
fn nonuniform_field_with_morphing_matches_reference() {
    let dims = ChipDims::new(9, 9);
    let f = Grid::from_fn(dims, |c: Cell| {
        0.3 + 0.6 * f64::from((c.x * 7 + c.y * 13) % 10) / 10.0
    });
    let field = RawField::new(f);
    check_case(
        Rect::new(1, 1, 2, 3),
        Rect::new(7, 7, 9, 9),
        Rect::new(1, 1, 9, 9),
        &field,
        &ActionConfig::default(),
        HazardHandling::GuardDisable,
    );
}
