//! Property-style tests for droplet sizing, hazard zones, and the RJ
//! helper's structural invariants, replayed over a deterministic seeded
//! input space.

use meda_bioassay::{fit_droplet_size, zone, MoType, RjHelper, SequencingGraph};
use meda_grid::{ChipDims, Rect};
use meda_rng::{Rng, SeedableRng, StdRng};

const CASES: usize = 128;

fn arb_on_chip_rect(dims: ChipDims, rng: &mut StdRng) -> Rect {
    let (w, h) = (dims.width as i32, dims.height as i32);
    loop {
        let (xa, ya) = (rng.gen_range(1..=w), rng.gen_range(1..=h));
        let (dw, dh) = (rng.gen_range(0..6), rng.gen_range(0..6));
        let r = Rect::new(xa, ya, xa + dw, ya + dh);
        if dims.contains_rect(r) {
            return r;
        }
    }
}

#[test]
fn droplet_sizing_is_near_square_and_optimal() {
    let mut rng = StdRng::seed_from_u64(0xB10A);
    for _ in 0..CASES {
        let area = rng.gen_range(1..500u32);
        let (w, h, err) = fit_droplet_size(area);
        assert!(w.abs_diff(h) <= 1);
        assert!((err - f64::from((w * h).abs_diff(area)) / f64::from(area)).abs() < 1e-12);
        // No candidate of the same constraint class does better.
        let side = (area as f64).sqrt().ceil() as u32 + 1;
        for cw in 1..=side {
            for ch in cw.saturating_sub(1)..=cw + 1 {
                if ch == 0 || cw.abs_diff(ch) > 1 {
                    continue;
                }
                assert!((cw * ch).abs_diff(area) >= (w * h).abs_diff(area));
            }
        }
    }
}

#[test]
fn zone_contains_margined_endpoints_clipped_to_chip() {
    let dims = ChipDims::PAPER;
    let mut rng = StdRng::seed_from_u64(0xB10B);
    for _ in 0..CASES {
        let s = arb_on_chip_rect(dims, &mut rng);
        let g = arb_on_chip_rect(dims, &mut rng);
        let z = zone(s, g, dims);
        assert!(dims.contains_rect(z));
        assert!(z.contains_rect(s));
        assert!(z.contains_rect(g));
        // The 3-cell margin is honoured wherever the chip allows it.
        let ideal = s.union(g).expand(3);
        assert_eq!(z, ideal.intersection(dims.bounds()).unwrap());
    }
}

/// For any two-dispense-mix-route chain placed randomly (but legally),
/// the plan obeys the structural rules of Algorithm 1.
#[test]
fn random_mix_chains_plan_consistently() {
    let dims = ChipDims::PAPER;
    let mut rng = StdRng::seed_from_u64(0xB10C);
    for _ in 0..32 {
        let x1 = rng.gen_range(6.0..25.0);
        let x2 = rng.gen_range(30.0..54.0);
        let y = rng.gen_range(6.0..24.0);
        let mix_x = rng.gen_range(10.0..50.0);
        let mut sg = SequencingGraph::new("prop");
        let a = sg.dispense((x1, 5.5), (4, 4));
        let b = sg.dispense((x2, 5.5), (4, 4));
        let m = sg.mix(&[a, b], (mix_x, y));
        sg.magnetic(m, (mix_x, y));

        let plan = RjHelper::new(dims).plan(&sg).unwrap();
        for planned in plan.operations() {
            // Table III arities.
            assert_eq!(planned.inputs.len(), planned.op.inputs());
            assert_eq!(planned.outputs.len(), planned.op.outputs());
            for job in &planned.jobs {
                assert!(job.bounds.contains_rect(job.goal));
                assert!(job.start.is_off_chip_origin() || job.bounds.contains_rect(job.start));
                assert!(dims.contains_rect(job.goal));
            }
            for output in &planned.outputs {
                assert!(dims.contains_rect(*output));
            }
        }
        // Mix conserves area up to the |w−h| ≤ 1 refit.
        let mix_out = plan.operations()[m].outputs[0];
        let (w, h, _) = fit_droplet_size(32);
        assert_eq!((mix_out.width(), mix_out.height()), (w, h));
    }
}

/// Splitting then re-mixing halves conserves the refit area.
#[test]
fn split_halves_cover_the_input_area() {
    let dims = ChipDims::PAPER;
    let mut rng = StdRng::seed_from_u64(0xB10D);
    for _ in 0..CASES {
        let size = rng.gen_range(4..8u32);
        let mut sg = SequencingGraph::new("prop-split");
        let a = sg.dispense((15.5, 15.5), (size, size));
        let s = sg.split(a, (30.5, 9.5), (30.5, 21.5));
        sg.discard(s, (55.5, 9.5));
        sg.discard(s, (55.5, 21.5));
        let plan = RjHelper::new(dims).plan(&sg).unwrap();
        let (hw, hh, _) = fit_droplet_size(size * size / 2);
        for out in &plan.operations()[s].outputs {
            assert_eq!((out.width(), out.height()), (hw, hh));
        }
    }
}

#[test]
fn mo_arity_table_is_internally_consistent() {
    for op in [
        MoType::Dispense,
        MoType::Output,
        MoType::Discard,
        MoType::Mix,
        MoType::Split,
        MoType::Dilute,
        MoType::Magnetic,
    ] {
        // Droplet conservation: at most two droplets in or out, and
        // locations cover the outputs that need distinct placement.
        assert!(op.inputs() <= 2 && op.outputs() <= 2);
        assert!(op.locations() >= 1);
        assert!(op.locations() <= op.outputs().max(1));
    }
}
