//! Chaos interplay for the concurrent fleet engine: under the hard-chaos
//! fault classes (clustered electrode deaths, whole-row loss over an
//! operation's goal band), the supervised fleet (`continue_on_failure`)
//! must dominate the plain fleet on completed operations, and the
//! fluidic-separation audit must stay green even while droplets detour
//! around freshly dead regions.
//!
//! Why dominance is unconditional here: plain and supervised runs are
//! configured identically except for the failure policy, so they are
//! bit-identical up to the moment of the first mover failure. The plain
//! run freezes its completed count there; the supervised run carries that
//! same prefix forward and the count only grows. The documented carve-out
//! (a chaos-stranded droplet squatting on a peer's only detour corridor)
//! therefore affects *which* extra operations the supervised run salvages
//! — the give-up ladder ([`FleetConfig::stall_abort`]) eventually fails
//! the blocked peer too — but never pushes it below the plain run.

use meda_bioassay::{benchmarks, BioassayPlan, RjHelper};
use meda_grid::{Cell, ChipDims};
use meda_rng::{Rng, SeedableRng, StdRng};
use meda_sim::{
    dependency_exemption, AdaptiveConfig, AdaptivePool, Biochip, DegradationConfig, FaultPlan,
    FifoScheduler, FleetConfig, FleetOutcome, FleetRunner, RunConfig, SuddenDeath,
};

fn plan() -> BioassayPlan {
    RjHelper::new(ChipDims::PAPER)
        .plan(&benchmarks::multiplex_invitro((4, 4)))
        .unwrap()
}

/// Hard chaos aimed where it hurts: a whole-row loss across one random
/// operation's goal band (the shared-driver failure of Section VII-C —
/// droplets cannot creep across a multi-row dead band) plus clustered
/// `2 × 2` deaths as background noise.
fn hard_chaos(seed: u64, p: &BioassayPlan) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let victim = rng.gen_range(0..p.operations().len());
    let goal = p.operations()[victim]
        .jobs
        .last()
        .expect("planned MOs have jobs")
        .goal;
    let at_cycle = rng.gen_range(3..30);
    let mut chaos = FaultPlan::none().with_cluster_deaths(ChipDims::PAPER, 2, (3, 60), &mut rng);
    for y in goal.ya..=goal.yb {
        for x in 1..=ChipDims::PAPER.width as i32 {
            chaos.sudden_deaths.push(SuddenDeath {
                cell: Cell::new(x, y),
                at_cycle,
            });
        }
    }
    chaos
}

fn run_fleet(supervised: bool, seed: u64, chaos: &FaultPlan) -> FleetOutcome {
    let run = RunConfig {
        k_max: 1_200,
        ..RunConfig::default()
    };
    let cfg = FleetConfig {
        continue_on_failure: supervised,
        record_movers: true,
        stall_abort: 24,
        ..FleetConfig::concurrent(4, run)
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut chip = Biochip::generate(ChipDims::PAPER, &DegradationConfig::paper(), &mut rng);
    let mut pool = AdaptivePool::new(AdaptiveConfig::paper());
    FleetRunner::new(cfg).run(
        &plan(),
        &mut chip,
        &mut pool,
        &mut FifoScheduler::new(),
        chaos,
        &mut rng,
    )
}

/// Seeded sweep over the hard-chaos classes: the supervised fleet never
/// completes fewer operations than the plain fleet, succeeds whenever the
/// plain fleet succeeds, salvages strictly more on at least one
/// failure-path seed, and its movers log passes the separation audit
/// (with the producer→consumer handoff exemption) on every seed.
#[test]
fn supervised_fleet_dominates_plain_fleet_under_hard_chaos() {
    let p = plan();
    let exempt = dependency_exemption(&p);
    let mut failures = 0usize;
    let mut strict = 0usize;
    for seed in 0..12u64 {
        let chaos = hard_chaos(0xC4A0 + seed, &p);
        let plain = run_fleet(false, seed, &chaos);
        let supervised = run_fleet(true, seed, &chaos);

        // Separation must hold on the supervised run even while the
        // survivors thread around dead regions and failed peers.
        let log = supervised.movers.as_ref().expect("recording enabled");
        let v = FleetConfig::default()
            .constraints
            .audit_exempting(log, &exempt);
        assert!(v.is_none(), "seed {seed}: separation violated: {v:?}");

        assert!(
            supervised.completed_ops >= plain.completed_ops,
            "seed {seed}: supervised completed {}/{} but plain completed {}/{} ({:?} vs {:?})",
            supervised.completed_ops,
            supervised.total_ops,
            plain.completed_ops,
            plain.total_ops,
            supervised.status,
            plain.status,
        );
        if plain.is_success() {
            // No operation ever failed, so supervision had nothing to do:
            // the runs are identical and the supervised one succeeds too.
            assert!(
                supervised.is_success(),
                "seed {seed}: plain succeeded but supervised ended {:?}",
                supervised.status
            );
        } else {
            failures += 1;
            if supervised.completed_ops > plain.completed_ops {
                strict += 1;
            }
        }
    }
    assert!(
        failures > 0,
        "chaos sweep never provoked a plain-fleet failure: the dominance \
         property was only tested on its trivial branch"
    );
    assert!(
        strict > 0,
        "supervision never salvaged extra operations across {failures} \
         failure-path seeds"
    );
}

/// A surgically lethal fault — every row of one chain's mix goal dies at
/// cycle 3 — aborts that operation via the give-up ladder. The plain fleet
/// gives up wholesale; the supervised fleet records the failure, skips the
/// dependents transitively, and still completes the untouched chain.
#[test]
fn supervised_fleet_completes_surviving_branches_after_a_lethal_row_loss() {
    let p = plan();
    // Kill the rows under the *last* operation's goal: its chain dies, the
    // other chain (disjoint rows on the paper chip) survives.
    let victim = p.operations().last().expect("non-empty plan");
    let goal = victim.jobs.last().expect("has jobs").goal;
    let mut chaos = FaultPlan::none();
    for y in goal.ya..=goal.yb {
        for x in 1..=ChipDims::PAPER.width as i32 {
            chaos.sudden_deaths.push(SuddenDeath {
                cell: Cell::new(x, y),
                at_cycle: 3,
            });
        }
    }

    let plain = run_fleet(false, 21, &chaos);
    let supervised = run_fleet(true, 21, &chaos);

    assert!(
        !plain.is_success(),
        "row loss over {goal:?} should sink the plain fleet, got {:?}",
        plain.status
    );
    assert!(
        supervised.completed_ops > plain.completed_ops,
        "supervised fleet should finish surviving branches: {}/{} vs plain {}/{}",
        supervised.completed_ops,
        supervised.total_ops,
        plain.completed_ops,
        plain.total_ops,
    );
    assert!(
        !supervised.failed.is_empty(),
        "the lethal fault must surface in the failure report"
    );
    assert!(
        !supervised.skipped.is_empty(),
        "downstream dependents of the failed operation must be skipped"
    );
    // Partial completion is still fluidically sound.
    let log = supervised.movers.as_ref().expect("recording enabled");
    let v = FleetConfig::default()
        .constraints
        .audit_exempting(log, dependency_exemption(&p));
    assert!(v.is_none(), "separation violated: {v:?}");
}
