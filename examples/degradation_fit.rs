//! Degradation-model fitting: regenerate the Section IV pipeline — stress
//! a synthetic PCB electrode, measure its relative EWOD force, fit the
//! exponential model, and project electrode lifetime.
//!
//! ```sh
//! cargo run --release --example degradation_fit
//! ```

use meda::degradation::{ActuationMode, ExponentialFit, PcbExperiment};
use meda_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = meda_rng::StdRng::seed_from_u64(12);

    for (label, experiment) in [
        (
            "2 mm",
            PcbExperiment::paper_2mm(ActuationMode::ChargeTrapping),
        ),
        (
            "3 mm",
            PcbExperiment::paper_3mm(ActuationMode::ChargeTrapping),
        ),
        (
            "4 mm",
            PcbExperiment::paper_4mm(ActuationMode::ChargeTrapping),
        ),
    ] {
        // 1. Stress & measure (the Fig. 4 testbed, synthesized).
        let force = experiment.force_measurements(&mut rng, 9, 100);

        // 2. Fit F̄ = τ^(2n/c) in log domain (Fig. 6).
        let fit = ExponentialFit::fit_force(&force)?;
        let params = fit.params_for_tau(experiment.params.tau);

        // 3. Project lifetime: actuations until the MC quantizes to dead
        //    (D < 0.25 at b = 2) and until half force.
        let dead_at = params.actuations_to_reach(0.25).unwrap_or(u64::MAX);
        let half_force_at = params
            .actuations_to_reach(0.5_f64.sqrt())
            .unwrap_or(u64::MAX);

        println!(
            "{label}: fitted (tau, c) = ({:.3}, {:.1}), R2_adj = {:.4} \
             | half force after {half_force_at} actuations, observably dead after {dead_at}",
            params.tau, params.c, fit.r2_adjusted
        );
        println!(
            "       force samples: {}",
            force
                .iter()
                .map(|(n, f)| format!("({n}, {f:.2})"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }

    println!(
        "\nThese are the constants the MEDA simulator samples around \
         (c ~ U(200, 500), τ ~ U(0.5, 0.9)) when evaluating routing \
         strategies in Figs 15/16."
    );
    Ok(())
}
