//! Bellman-residual certificates and strategy audits.
//!
//! A value-iteration result can be *checked* independently of how it was
//! produced: the certificate applies one exact backup of the claimed
//! Bellman operator `T` and reports `max_i |T(v)_i − v_i|` — a
//! warm-started or parallel-Jacobi solve that took a completely different
//! trajectory through value space gets the same residual as a cold serial
//! one.
//!
//! **Scope of the claim.** A small residual proves `v` is an
//! ε-*fixed-point* of `T`; it does **not** bound the distance to the true
//! value. The `Pmax` operator has one fixed point per end component the
//! process can linger in, so a vector can have residual exactly 0 and
//! still be arbitrarily wrong (Haddad–Monmège; see the `ec_trap` fixture
//! in `bounds.rs`). The residual certificate is a cheap consistency gate
//! — it catches corrupted vectors, mismatched operators, and divergent
//! solves. For a sound statement about the *value*, use
//! [`crate::compute_bounds`] / [`crate::BoundsCertificate`], whose
//! interval-iteration bounds certify `lo ≤ v* ≤ hi`.

use crate::{ModelArtifact, Violation};

/// Which Bellman operator a value vector claims to be a fixed point of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// `Pmax[◇goal]` — maximal goal-reachability probability. Values lie
    /// in `[0, 1]`; goals are 1; the operator maximizes `Σ p·v` over
    /// choices (0 for states with none).
    Reachability,
    /// `Rmin[◇goal]` — minimum expected cycles to the goal. Goals are 0;
    /// states that cannot reach the goal almost surely are `∞`; the
    /// operator minimizes the self-loop-factored one-step equation
    /// `(1 + Σ_{j≠i} p_j·v_j) / (1 − p_self)` over choices whose
    /// successors are all finite.
    ExpectedCycles,
}

/// The outcome of a certificate check — see [`bellman_certificate`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Certificate {
    /// `max_i |T(v)_i − v_i|` over states where both sides are finite.
    pub max_residual: f64,
    /// State attaining [`Certificate::max_residual`], if any.
    pub worst_state: Option<usize>,
    /// States where exactly one of `v_i`, `T(v)_i` is infinite — a
    /// finite/infinite disagreement no residual can quantify.
    pub inconsistent: Vec<usize>,
    /// States whose value is NaN, or (for [`ValueKind::Reachability`])
    /// outside `[0, 1]` beyond tolerance.
    pub out_of_range: Vec<usize>,
}

impl Certificate {
    /// Whether the vector is an `epsilon`-fixed-point of the operator: the
    /// residual is within `epsilon` and there are no finite/infinite or
    /// range disagreements.
    ///
    /// This is a *consistency* property, **not** a value guarantee — an
    /// end-component fixed point passes with residual 0 while being far
    /// from the true value. Callers that need `|v − v*| ≤ ε` must check
    /// the [`crate::BoundsCertificate`] from [`crate::compute_bounds`]
    /// instead.
    #[must_use]
    pub fn certifies(&self, epsilon: f64) -> bool {
        self.max_residual <= epsilon && self.inconsistent.is_empty() && self.out_of_range.is_empty()
    }
}

/// Applies one exact Bellman backup of `kind` to `values` and reports the
/// residual. The artifact must have passed [`crate::audit_model`] — the
/// backup indexes the CSR arrays directly.
///
/// # Panics
///
/// Panics if `values.len()` differs from the artifact's state count; use
/// [`crate::audit_values`] for a non-panicking length check.
#[must_use]
pub fn bellman_certificate(art: &ModelArtifact, values: &[f64], kind: ValueKind) -> Certificate {
    assert_eq!(
        values.len(),
        art.states,
        "value vector does not match the artifact"
    );
    let mut cert = Certificate::default();
    let range_tol = 1e-9;
    for (i, &v) in values.iter().enumerate() {
        if v.is_nan() {
            cert.out_of_range.push(i);
            continue;
        }
        if kind == ValueKind::Reachability && !(-range_tol..=1.0 + range_tol).contains(&v) {
            cert.out_of_range.push(i);
            continue;
        }
        let t = backup(art, values, kind, i);
        match (v.is_infinite(), t.is_infinite()) {
            (false, false) => {
                let r = (t - v).abs();
                if r > cert.max_residual {
                    cert.max_residual = r;
                    cert.worst_state = Some(i);
                }
            }
            (true, true) => {}
            _ => cert.inconsistent.push(i),
        }
    }
    cert
}

/// Widens a single-precision value vector and certifies it against the
/// exact `f64` Bellman operator — the acceptance gate of the solver's `f32`
/// fast path. Returns the widened vector alongside its certificate so an
/// accepted result can be used without a second conversion.
///
/// # Panics
///
/// Panics if `values.len()` differs from the artifact's state count (see
/// [`bellman_certificate`]).
#[must_use]
pub fn certify_f32(
    art: &ModelArtifact,
    values: &[f32],
    kind: ValueKind,
) -> (Vec<f64>, Certificate) {
    let wide: Vec<f64> = values.iter().map(|&v| f64::from(v)).collect();
    let cert = bellman_certificate(art, &wide, kind);
    (wide, cert)
}

/// One exact backup `T(v)_i` of the given operator. Also used by the
/// bounds pass as the plain (un-quotiented) operator for its pre-fixed
/// point check.
pub(crate) fn backup(art: &ModelArtifact, values: &[f64], kind: ValueKind, i: usize) -> f64 {
    if art.goal_flags[i] {
        return match kind {
            ValueKind::Reachability => 1.0,
            ValueKind::ExpectedCycles => 0.0,
        };
    }
    match kind {
        ValueKind::Reachability => {
            let mut best = 0.0_f64;
            for c in art.choice_range(i) {
                let mut sum = 0.0;
                for b in art.branch_range(c) {
                    sum += art.branch_prob[b] * values[art.branch_target[b] as usize];
                }
                best = best.max(sum);
            }
            best
        }
        ValueKind::ExpectedCycles => {
            let mut best = f64::INFINITY;
            'choices: for c in art.choice_range(i) {
                let mut p_self = 0.0;
                let mut rest = 0.0;
                for b in art.branch_range(c) {
                    let j = art.branch_target[b] as usize;
                    let p = art.branch_prob[b];
                    if j == i {
                        p_self += p;
                    } else if values[j].is_infinite() {
                        continue 'choices;
                    } else {
                        rest += p * values[j];
                    }
                }
                if p_self >= 1.0 - 1e-12 {
                    continue;
                }
                best = best.min((1.0 + rest) / (1.0 - p_self));
            }
            best
        }
    }
}

/// Length-checked wrapper around [`bellman_certificate`]: returns the
/// violations a value vector exhibits against the artifact, empty when the
/// vector is certified within `epsilon`.
#[must_use]
pub fn audit_values(
    art: &ModelArtifact,
    values: &[f64],
    kind: ValueKind,
    epsilon: f64,
) -> (Vec<Violation>, Certificate) {
    if values.len() != art.states {
        return (
            vec![Violation::ValueLength {
                expected: art.states,
                found: values.len(),
            }],
            Certificate::default(),
        );
    }
    let cert = bellman_certificate(art, values, kind);
    let mut violations = Vec::new();
    if !cert.certifies(epsilon) {
        violations.push(Violation::UncertifiedValues {
            max_residual: cert.max_residual,
            epsilon,
            worst_state: cert.worst_state,
            inconsistent: cert.inconsistent.len(),
            out_of_range: cert.out_of_range.len(),
        });
    }
    (violations, cert)
}
