use meda_rng::StdRng;
use meda_rng::{Rng, SeedableRng};

use meda_bioassay::BioassayPlan;
use meda_grid::ChipDims;

use crate::{
    AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip, DegradationConfig,
    FaultPlan, FifoScheduler, RecoveryRouter, RunConfig, RungCounts, Supervisor, SupervisorConfig,
};

/// One control stack evaluated by the chaos sweep. The first three run
/// unsupervised (the first routing failure aborts the bioassay); the
/// supervised variant wraps the adaptive router in the [`Supervisor`]'s
/// escalation ladder and degrades gracefully instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVariant {
    /// Degradation-unaware shortest-path routing.
    Baseline,
    /// Reactive error recovery (re-route on stall).
    Recovery,
    /// The paper's formal-synthesis adaptive router.
    Adaptive,
    /// Adaptive routing under the supervisor's retry ladder.
    SupervisedAdaptive,
}

impl ChaosVariant {
    /// All four variants, in presentation order.
    pub const ALL: [ChaosVariant; 4] = [
        ChaosVariant::Baseline,
        ChaosVariant::Recovery,
        ChaosVariant::Adaptive,
        ChaosVariant::SupervisedAdaptive,
    ];

    /// Human-readable variant name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosVariant::Baseline => "baseline",
            ChaosVariant::Recovery => "recovery",
            ChaosVariant::Adaptive => "adaptive",
            ChaosVariant::SupervisedAdaptive => "supervised-adaptive",
        }
    }

    /// Runs one trial with sensed feedback closed over the chaos plan.
    /// Returns `(full success, completion fraction, ladder counts)` —
    /// unsupervised variants report zero ladder activity.
    fn run_one(
        self,
        plan: &BioassayPlan,
        chip: &mut Biochip,
        chaos: &FaultPlan,
        k_max: u64,
        detour_patience: u32,
        rng: &mut impl Rng,
    ) -> (bool, f64, RungCounts) {
        let run = RunConfig {
            k_max,
            record_actuation: false,
            sensed_feedback: true,
        };
        match self {
            ChaosVariant::Baseline => {
                let mut router = BaselineRouter::new();
                let outcome = BioassayRunner::new(run).run_with_chaos(
                    plan,
                    chip,
                    &mut router,
                    &mut FifoScheduler::new(),
                    chaos,
                    rng,
                );
                (
                    outcome.is_success(),
                    outcome.completion_fraction(),
                    RungCounts::default(),
                )
            }
            ChaosVariant::Recovery => {
                let mut router = RecoveryRouter::new(detour_patience);
                let outcome = BioassayRunner::new(run).run_with_chaos(
                    plan,
                    chip,
                    &mut router,
                    &mut FifoScheduler::new(),
                    chaos,
                    rng,
                );
                (
                    outcome.is_success(),
                    outcome.completion_fraction(),
                    RungCounts::default(),
                )
            }
            ChaosVariant::Adaptive => {
                let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
                let outcome = BioassayRunner::new(run).run_with_chaos(
                    plan,
                    chip,
                    &mut router,
                    &mut FifoScheduler::new(),
                    chaos,
                    rng,
                );
                (
                    outcome.is_success(),
                    outcome.completion_fraction(),
                    RungCounts::default(),
                )
            }
            ChaosVariant::SupervisedAdaptive => {
                let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
                let report = Supervisor::new(SupervisorConfig {
                    run,
                    detour_patience,
                    ..SupervisorConfig::default()
                })
                .run(plan, chip, &mut router, chaos, rng);
                (
                    report.is_success(),
                    report.completion_fraction(),
                    report.rungs,
                )
            }
        }
    }
}

/// One `(variant, rate index, trial)` sweep cell.
type ChaosCell = (ChaosVariant, usize, u32);
/// One trial's outcome: `(full success, completion fraction, ladder counts)`.
type ChaosOutcome = (bool, f64, RungCounts);

/// One aggregated point of the chaos sweep: a control stack at one stuck
/// sensor-bit rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// The control stack.
    pub variant: ChaosVariant,
    /// Per-MC probability of a stuck sensor bit.
    pub stuck_rate: f64,
    /// Fraction of trials that completed the whole bioassay.
    pub pos: f64,
    /// Mean fraction of microfluidic operations completed per trial —
    /// the graceful-degradation headline number.
    pub mean_completion: f64,
    /// Ladder activity summed over all trials (supervised variants only).
    pub rungs: RungCounts,
}

/// The `ext_chaos` experiment: probability of success and mean completion
/// fraction under sensor faults, for each `(variant, stuck rate)` pair.
///
/// Every trial draws a fresh chip and a fresh [`FaultPlan`] whose stuck
/// sensor bits corrupt the **Y** matrix behind
/// [`RunConfig::sensed_feedback`] — the run itself is otherwise the
/// Section VII-B reuse setup. Cells are independent and deterministically
/// seeded, so the sweep parallelizes across cores with results identical
/// to a serial loop.
///
/// # Panics
///
/// Panics if `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn chaos_sweep(
    plan: &BioassayPlan,
    dims: ChipDims,
    degradation: &DegradationConfig,
    variants: &[ChaosVariant],
    stuck_rates: &[f64],
    trials: u32,
    k_max: u64,
    seed: u64,
) -> Vec<ChaosPoint> {
    assert!(trials > 0, "need at least one trial");
    let detour_patience = SupervisorConfig::default().detour_patience;

    let run_cell = |(variant, rate_idx, trial): ChaosCell| {
        let rate = stuck_rates[rate_idx];
        // The variant does not enter the seed: every stack faces the same
        // chip and the same fault plan at a given (rate, trial) cell.
        let mut rng =
            StdRng::seed_from_u64(seed ^ ((rate_idx as u64) << 40) ^ (u64::from(trial) << 8));
        let mut chip = Biochip::generate(dims, degradation, &mut rng);
        let chaos = FaultPlan::none().with_stuck_sensors(dims, rate, &mut rng);
        variant.run_one(plan, &mut chip, &chaos, k_max, detour_patience, &mut rng)
    };

    let cells: Vec<ChaosCell> = variants
        .iter()
        .flat_map(|&v| {
            (0..stuck_rates.len()).flat_map(move |r| (0..trials).map(move |t| (v, r, t)))
        })
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let chunk = cells.len().div_ceil(threads).max(1);
    let per_cell: Vec<(ChaosCell, ChaosOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .chunks(chunk)
            .map(|batch| {
                let run_cell = &run_cell;
                scope.spawn(move || {
                    batch
                        .iter()
                        .map(|&cell| (cell, run_cell(cell)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chaos sweep thread panicked"))
            .collect()
    });

    variants
        .iter()
        .flat_map(|&variant| {
            let per_cell = &per_cell;
            stuck_rates
                .iter()
                .enumerate()
                .map(move |(rate_idx, &rate)| {
                    let mut successes = 0u32;
                    let mut completion = 0.0f64;
                    let mut rungs = RungCounts::default();
                    for ((v, r, _), (ok, frac, counts)) in per_cell {
                        if *v == variant && *r == rate_idx {
                            successes += u32::from(*ok);
                            completion += frac;
                            rungs.resense += counts.resense;
                            rungs.resynth += counts.resynth;
                            rungs.detour += counts.detour;
                            rungs.aborted_ops += counts.aborted_ops;
                        }
                    }
                    ChaosPoint {
                        variant,
                        stuck_rate: rate,
                        pos: f64::from(successes) / f64::from(trials),
                        mean_completion: completion / f64::from(trials),
                        rungs,
                    }
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_bioassay::{benchmarks, RjHelper};

    fn plan() -> BioassayPlan {
        RjHelper::new(ChipDims::PAPER)
            .plan(&benchmarks::master_mix())
            .unwrap()
    }

    #[test]
    fn clean_sensors_complete_for_every_variant() {
        let points = chaos_sweep(
            &plan(),
            ChipDims::PAPER,
            &DegradationConfig::pristine(),
            &ChaosVariant::ALL,
            &[0.0],
            2,
            2_000,
            11,
        );
        for p in &points {
            assert_eq!(p.pos, 1.0, "{} failed with clean sensors", p.variant.name());
            assert_eq!(p.mean_completion, 1.0);
        }
    }

    #[test]
    fn supervised_adaptive_beats_unsupervised_under_sensor_faults() {
        // The acceptance bar: at >= 1% stuck sensor bits the supervised
        // stack completes strictly more operations than the unsupervised
        // adaptive stack facing the identical chips and fault plans. The
        // two-lane multiplex assay gives abort-and-continue something to
        // salvage: losing one lane must not cost the other.
        let p = RjHelper::new(ChipDims::PAPER)
            .plan(&benchmarks::multiplex_invitro((4, 4)))
            .unwrap();
        let points = chaos_sweep(
            &p,
            ChipDims::PAPER,
            &DegradationConfig::paper(),
            &[ChaosVariant::Adaptive, ChaosVariant::SupervisedAdaptive],
            &[0.02],
            6,
            2_000,
            23,
        );
        let completion = |v: ChaosVariant| {
            points
                .iter()
                .find(|p| p.variant == v)
                .map(|p| p.mean_completion)
                .unwrap()
        };
        assert!(
            completion(ChaosVariant::SupervisedAdaptive) > completion(ChaosVariant::Adaptive),
            "supervised {} vs unsupervised {}",
            completion(ChaosVariant::SupervisedAdaptive),
            completion(ChaosVariant::Adaptive),
        );
    }
}
