//! Robust strategy synthesis on the two-player game — the SMG side of the
//! paper's formalism (Section V-C) beyond the fixed-health MDP reduction.
//!
//! The paper reduces the MEDA stochastic game to an MDP by freezing the
//! health matrix during one routing job (Section VI-C), arguing health
//! changes within a job are small. This module quantifies that argument:
//! it solves the *game* where, each cycle, the degradation player may spend
//! one unit of a bounded interference budget to knock out (zero, for that
//! cycle) any single microelectrode in the controller's frontier sets.
//! Alternating min/max value iteration over the product
//! `(droplet, remaining budget)` yields worst-case guarantees:
//!
//! * [`RobustGame::min_expected_cycles`] — the worst-case expected
//!   completion time the controller can still guarantee;
//! * [`RobustGame::max_reach_probability`] — the guaranteed reachability
//!   probability.
//!
//! With budget 0 the game collapses to the paper's MDP, which is asserted
//! by tests; small budgets give a principled margin for the health drift
//! the partial-order reduction ignores.

use meda_core::{frontier_set, Action, ActionConfig, BuildError, Dir, ForceProvider, RoutingMdp};
use meda_grid::{Cell, Rect};

use crate::SolverOptions;

/// One adversary variant of a controller action: whether it spends budget,
/// and the outcome distribution it induces.
type Variant = (bool, Vec<(usize, f64)>);

/// The budget-bounded robust routing game (see module docs).
#[derive(Debug, Clone)]
pub struct RobustGame {
    base: RoutingMdp,
    budget: u32,
    /// Per base state, per enabled action: the adversary's variants
    /// (variant 0 is always "no interference").
    variants: Vec<Vec<(Action, Vec<Variant>)>>,
}

/// Worst-case values over the product state space.
#[derive(Debug, Clone)]
pub struct RobustValues {
    values: Vec<f64>,
    choice: Vec<Option<Action>>,
    states: usize,
    budget: u32,
    /// Whether value iteration converged.
    pub converged: bool,
}

impl RobustValues {
    /// The value at `(state, remaining_budget)`.
    ///
    /// # Panics
    ///
    /// Panics if the state index or budget is out of range.
    #[must_use]
    pub fn at(&self, state: usize, budget: u32) -> f64 {
        assert!(state < self.states && budget <= self.budget);
        self.values[state * (self.budget as usize + 1) + budget as usize]
    }

    /// The worst-case optimal action at `(state, remaining_budget)`.
    ///
    /// # Panics
    ///
    /// Panics if the state index or budget is out of range.
    #[must_use]
    pub fn action_at(&self, state: usize, budget: u32) -> Option<Action> {
        assert!(state < self.states && budget <= self.budget);
        self.choice[state * (self.budget as usize + 1) + budget as usize]
    }
}

/// A force field with one microelectrode transiently knocked out.
struct Knockout<'a> {
    inner: &'a dyn ForceProvider,
    dead: Cell,
}

impl ForceProvider for Knockout<'_> {
    fn cell_force(&self, cell: Cell) -> f64 {
        if cell == self.dead {
            0.0
        } else {
            self.inner.cell_force(cell)
        }
    }
}

impl RobustGame {
    /// Builds the robust game over the same geometry as
    /// [`RoutingMdp::build`], with the given adversary budget.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from the underlying MDP construction.
    pub fn build(
        start: Rect,
        goal: Rect,
        bounds: Rect,
        field: &dyn ForceProvider,
        config: &ActionConfig,
        budget: u32,
    ) -> Result<Self, BuildError> {
        let base = RoutingMdp::build(start, goal, bounds, field, config)?;
        let mut variants = Vec::with_capacity(base.len());
        for i in base.state_indices() {
            let delta = base.state(i);
            let mut per_action = Vec::new();
            for (action, base_branch) in base.choices(i) {
                let mut list: Vec<Variant> = vec![(false, base_branch.to_vec())];
                for cell in interference_targets(delta, action) {
                    let knocked = Knockout {
                        inner: field,
                        dead: cell,
                    };
                    let branch: Vec<(usize, f64)> = meda_core::transitions(delta, action, &knocked)
                        .into_iter()
                        .filter(|o| o.probability > 0.0)
                        .map(|o| {
                            let j = base
                                .state_index(o.droplet)
                                .expect("knockout cannot create new outcomes");
                            (j, o.probability)
                        })
                        .collect();
                    list.push((true, branch));
                }
                per_action.push((action, list));
            }
            variants.push(per_action);
        }
        Ok(Self {
            base,
            budget,
            variants,
        })
    }

    /// The underlying (budget-0) routing MDP.
    #[must_use]
    pub fn base(&self) -> &RoutingMdp {
        &self.base
    }

    /// The adversary's total interference budget.
    #[must_use]
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Worst-case minimum expected cycles to the goal: the controller
    /// minimizes, the interference adversary maximizes.
    #[must_use]
    pub fn min_expected_cycles(&self, options: SolverOptions) -> RobustValues {
        self.solve(options, true)
    }

    /// Guaranteed (worst-case) probability of reaching the goal.
    #[must_use]
    pub fn max_reach_probability(&self, options: SolverOptions) -> RobustValues {
        self.solve(options, false)
    }

    fn solve(&self, options: SolverOptions, cycles: bool) -> RobustValues {
        let n = self.base.len();
        let width = self.budget as usize + 1;
        let mut values = vec![0.0f64; n * width];
        let mut choice: Vec<Option<Action>> = vec![None; n * width];
        if !cycles {
            for i in 0..n {
                if self.base.is_goal(i) {
                    for b in 0..width {
                        values[i * width + b] = 1.0;
                    }
                }
            }
        }

        // For Rmin, seed hopeless states with ∞ via the budget-0 (plain
        // MDP) reachability: interference is transient, so a state that
        // reaches the goal a.s. without interference still does under a
        // finite budget (the adversary runs out).
        if cycles {
            let reach = crate::max_reach_probability(&self.base, options.clone());
            for i in 0..n {
                if !self.base.is_goal(i) && reach.values[i] < 1.0 - 1e-6 {
                    for b in 0..width {
                        values[i * width + b] = f64::INFINITY;
                    }
                }
            }
        }

        let mut iterations = 0;
        let mut converged = false;
        while iterations < options.max_iterations {
            iterations += 1;
            let mut delta_max = 0.0f64;
            for i in 0..n {
                if self.base.is_goal(i) {
                    continue;
                }
                for b in 0..width {
                    let idx = i * width + b;
                    if values[idx].is_infinite() {
                        continue;
                    }
                    let mut best = if cycles { f64::INFINITY } else { 0.0 };
                    let mut best_action = None;
                    for (action, variants) in &self.variants[i] {
                        // Adversary: worst variant for the controller.
                        let mut worst = if cycles { 0.0f64 } else { 1.0f64 };
                        let mut any = false;
                        for (spends, branch) in variants {
                            if *spends && b == 0 {
                                continue;
                            }
                            let succ_b = if *spends { b - 1 } else { b };
                            let v = self.eval(branch, &values, idx, i, succ_b, width, cycles);
                            any = true;
                            if cycles {
                                worst = worst.max(v);
                            } else {
                                worst = worst.min(v);
                            }
                        }
                        if !any {
                            continue;
                        }
                        let better = if cycles { worst < best } else { worst > best };
                        if better {
                            best = worst;
                            best_action = Some(*action);
                        }
                    }
                    if best.is_finite() && (best_action.is_some() || !cycles) {
                        delta_max = delta_max.max((best - values[idx]).abs());
                        values[idx] = best;
                        choice[idx] = best_action;
                    }
                }
            }
            if delta_max < options.epsilon {
                converged = true;
                break;
            }
        }

        RobustValues {
            values,
            choice,
            states: n,
            budget: self.budget,
            converged,
        }
    }

    /// Evaluates one (action, variant) pair: expected 1 + Σ p·v for Rmin
    /// (self-loop factored out), or Σ p·v for Pmax.
    #[allow(clippy::too_many_arguments)]
    fn eval(
        &self,
        branch: &[(usize, f64)],
        values: &[f64],
        self_idx: usize,
        state: usize,
        succ_budget: usize,
        width: usize,
        cycles: bool,
    ) -> f64 {
        if cycles {
            let mut p_self = 0.0;
            let mut rest = 0.0;
            for &(j, p) in branch {
                let jdx = j * width + succ_budget;
                if j == state && jdx == self_idx {
                    p_self += p;
                } else if values[jdx].is_infinite() {
                    return f64::INFINITY;
                } else {
                    rest += p * values[jdx];
                }
            }
            if p_self >= 1.0 - 1e-12 {
                f64::INFINITY
            } else {
                (1.0 + rest) / (1.0 - p_self)
            }
        } else {
            branch
                .iter()
                .map(|&(j, p)| p * values[j * width + succ_budget])
                .sum()
        }
    }
}

/// The microelectrodes the adversary may knock out while `action` executes
/// on `delta`: every cell of its frontier sets (for double steps, both the
/// first- and second-step frontiers).
fn interference_targets(delta: Rect, action: Action) -> Vec<Cell> {
    let mut cells = Vec::new();
    for dir in Dir::ALL {
        if let Some(fr) = frontier_set(delta, action, dir) {
            cells.extend(fr.cells());
        }
        if let Some(mid) = action.intermediate(delta) {
            if let Some(fr) = frontier_set(mid, action, dir) {
                cells.extend(fr.cells());
            }
        }
    }
    cells.sort_unstable();
    cells.dedup();
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_expected_cycles;
    use meda_core::UniformField;

    fn game(budget: u32) -> RobustGame {
        RobustGame::build(
            Rect::new(1, 1, 2, 2),
            Rect::new(6, 1, 7, 2),
            Rect::new(1, 1, 8, 4),
            &UniformField::new(0.9),
            &ActionConfig::cardinal_only(),
            budget,
        )
        .unwrap()
    }

    #[test]
    fn budget_zero_matches_the_mdp() {
        let g = game(0);
        let robust = g.min_expected_cycles(SolverOptions::default());
        let plain = min_expected_cycles(g.base(), SolverOptions::default());
        for i in g.base().state_indices() {
            assert!(
                (robust.at(i, 0) - plain.values[i]).abs() < 1e-6,
                "state {i}: {} vs {}",
                robust.at(i, 0),
                plain.values[i]
            );
        }
    }

    #[test]
    fn worst_case_cost_is_monotone_in_budget() {
        let opts = SolverOptions::default();
        let mut prev = 0.0;
        for budget in 0..=3 {
            let g = game(budget);
            let v = g
                .min_expected_cycles(opts.clone())
                .at(g.base().init(), budget);
            assert!(
                v >= prev - 1e-9,
                "budget {budget}: worst-case cost fell from {prev} to {v}"
            );
            assert!(v.is_finite(), "transient interference cannot block forever");
            prev = v;
        }
    }

    #[test]
    fn guaranteed_probability_is_antitone_in_budget() {
        let opts = SolverOptions::default();
        let mut prev = 1.0;
        for budget in 0..=3 {
            let g = game(budget);
            let p = g
                .max_reach_probability(opts.clone())
                .at(g.base().init(), budget);
            assert!(p <= prev + 1e-9, "budget {budget}: {p} > {prev}");
            assert!(p > 0.0);
            prev = p;
        }
    }

    #[test]
    fn interference_is_transient_so_goal_stays_reachable() {
        let g = game(5);
        let v = g.min_expected_cycles(SolverOptions::default());
        assert!(v.converged);
        assert!(v.at(g.base().init(), 5).is_finite());
        // Spending the whole budget costs at most budget extra expected
        // cycles per knockout... loosely: bounded by the no-interference
        // value plus budget / (worst residual probability).
        let base = v.at(g.base().init(), 0);
        let worst = v.at(g.base().init(), 5);
        assert!(
            worst <= base + 5.0 / 0.45 + 1e-6,
            "worst {worst} vs base {base}"
        );
    }

    #[test]
    fn robust_strategy_exists_at_every_live_state() {
        let g = game(2);
        let v = g.min_expected_cycles(SolverOptions::default());
        for i in g.base().state_indices() {
            if g.base().is_goal(i) {
                continue;
            }
            for b in 0..=2 {
                assert!(
                    v.action_at(i, b).is_some(),
                    "no robust action at state {i}, budget {b}"
                );
            }
        }
    }

    #[test]
    fn interference_targets_cover_frontiers() {
        let delta = Rect::new(3, 2, 7, 5);
        let targets = interference_targets(delta, Action::Move(Dir::N));
        assert_eq!(targets.len(), 5); // the 5-cell north frontier
        let targets = interference_targets(delta, Action::MoveDouble(Dir::N));
        assert_eq!(targets.len(), 10); // both steps' frontiers
    }
}
