use std::time::{Duration, Instant};

use meda_core::{ActionConfig, BuildError, ForceProvider, MdpStats, RoutingMdp};
use meda_grid::Rect;

use crate::{synthesize_with, Query, SolverOptions};

/// One row of the Table V measurement: model size plus the wall-clock split
/// between model construction and strategy synthesis.
#[derive(Debug, Clone, Copy)]
pub struct PerfRecord {
    /// RJ-area edge lengths `(w_h, h_h)`.
    pub rj_area: (u32, u32),
    /// Droplet size `(w, h)`.
    pub droplet: (u32, u32),
    /// Model-size statistics (#states, #transitions, #choices).
    pub stats: MdpStats,
    /// Time to construct the MDP.
    pub construction: Duration,
    /// Time to run value iteration and extract the strategy.
    pub synthesis: Duration,
}

impl PerfRecord {
    /// Total time (construction + synthesis).
    #[must_use]
    pub fn total(&self) -> Duration {
        self.construction + self.synthesis
    }
}

/// Measures model construction and synthesis time for a routing job — the
/// harness behind the Table V reproduction.
///
/// The droplet starts in the south-west corner of the hazard area and must
/// reach the north-east corner, the worst case for state-space coverage.
///
/// # Errors
///
/// Propagates [`BuildError`] for inconsistent geometry.
pub fn measure_synthesis(
    area: (u32, u32),
    droplet: (u32, u32),
    field: &dyn ForceProvider,
    config: &ActionConfig,
    query: Query,
) -> Result<PerfRecord, BuildError> {
    let (aw, ah) = area;
    let (dw, dh) = droplet;
    let bounds = Rect::new(1, 1, aw as i32, ah as i32);
    let start = Rect::with_size(1, 1, dw, dh);
    let goal = Rect::with_size(aw as i32 - dw as i32 + 1, ah as i32 - dh as i32 + 1, dw, dh);

    let t0 = Instant::now();
    let mdp = RoutingMdp::build(start, goal, bounds, field, config)?;
    let construction = t0.elapsed();

    let t1 = Instant::now();
    // The timing target is the solve itself; infeasibility is a valid,
    // timed outcome (Algorithm 2's (∅, ∞)).
    let _ = synthesize_with(&mdp, query, SolverOptions::default());
    let synthesis = t1.elapsed();

    Ok(PerfRecord {
        rj_area: area,
        droplet,
        stats: mdp.stats(),
        construction,
        synthesis,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_core::UniformField;

    #[test]
    fn measures_a_table_v_cell() {
        let rec = measure_synthesis(
            (10, 10),
            (3, 3),
            &UniformField::new(0.9),
            &ActionConfig::cardinal_only(),
            Query::MinExpectedCycles,
        )
        .unwrap();
        assert_eq!(rec.stats.states, 64);
        assert!(rec.total() >= rec.construction);
    }

    #[test]
    fn smaller_droplet_bigger_model() {
        let field = UniformField::new(0.9);
        let config = ActionConfig::cardinal_only();
        let small =
            measure_synthesis((20, 20), (3, 3), &field, &config, Query::MinExpectedCycles).unwrap();
        let large =
            measure_synthesis((20, 20), (6, 6), &field, &config, Query::MinExpectedCycles).unwrap();
        assert!(small.stats.states > large.stats.states);
        assert!(small.stats.transitions > large.stats.transitions);
    }

    #[test]
    fn bad_geometry_propagates() {
        let field = UniformField::new(0.9);
        let config = ActionConfig::cardinal_only();
        // Droplet larger than the area.
        assert!(
            measure_synthesis((5, 5), (6, 6), &field, &config, Query::MinExpectedCycles).is_err()
        );
    }
}
