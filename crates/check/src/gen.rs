//! Generator combinators over [`meda_rng`].
//!
//! A [`Gen<T>`] is a function from a seeded [`StdRng`] to a shrink
//! [`Tree<T>`]: generation and shrinking are one pipeline, so every
//! combinator — [`Gen::map`], [`Gen::flat_map`], [`choose`], [`vec_of`],
//! [`weighted`] — transports invariants onto shrunk candidates for free.
//!
//! Determinism: a generator consumes randomness only from the `StdRng` it
//! is handed, and [`Gen::flat_map`] freezes an inner seed drawn from the
//! outer stream, so the same seed always yields the same tree — the
//! foundation of the corpus replay in [`crate::runner`].

use std::rc::Rc;

use meda_rng::{Rng, SeedableRng, StdRng};

use crate::tree::{bind, int_tree, Tree};

/// How many regeneration attempts [`Gen::filter`] makes before giving up
/// and yielding the last candidate unfiltered (the property then sees a
/// value violating the predicate and should treat it as a skip).
const FILTER_RETRIES: usize = 100;

/// The boxed generation function inside a [`Gen`].
type RunFn<T> = Rc<dyn Fn(&mut StdRng) -> Tree<T>>;

/// A random generator of shrinkable `T` values.
pub struct Gen<T> {
    run: RunFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Self {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// Wraps a raw tree-producing function.
    pub fn new(run: impl Fn(&mut StdRng) -> Tree<T> + 'static) -> Self {
        Self { run: Rc::new(run) }
    }

    /// A generator that always yields `value` (no shrinking).
    pub fn constant(value: T) -> Self {
        Self::new(move |_| Tree::leaf(value.clone()))
    }

    /// Generates one shrink tree from `rng`.
    #[must_use]
    pub fn generate(&self, rng: &mut StdRng) -> Tree<T> {
        (self.run)(rng)
    }

    /// Applies `f` to the generated value and to every shrink candidate.
    #[must_use]
    pub fn map<U: Clone + 'static>(self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::new(move |rng| self.generate(rng).map(Rc::clone(&f)))
    }

    /// Monadic bind with integrated shrinking: the outer value shrinks
    /// first, regenerating the inner value from a frozen seed so the
    /// dependent structure stays consistent; then the inner value shrinks.
    #[must_use]
    pub fn flat_map<U: Clone + 'static>(self, k: impl Fn(&T) -> Gen<U> + 'static) -> Gen<U> {
        type Kleisli<T, U> = Rc<dyn Fn(&T) -> Gen<U>>;
        let k: Kleisli<T, U> = Rc::new(k);
        Gen::new(move |rng| {
            let outer = self.generate(rng);
            let inner_seed: u64 = rng.gen();
            let k = Rc::clone(&k);
            bind(
                &outer,
                Rc::new(move |v: &T| {
                    let mut inner_rng = StdRng::seed_from_u64(inner_seed);
                    k(v).generate(&mut inner_rng)
                }),
            )
        })
    }

    /// Pairs this generator with another; both components shrink.
    #[must_use]
    pub fn zip<U: Clone + 'static>(self, other: Gen<U>) -> Gen<(T, U)> {
        self.flat_map(move |a| {
            let a = a.clone();
            other.clone().map(move |b| (a.clone(), b.clone()))
        })
    }

    /// Keeps only values satisfying `keep`, regenerating up to
    /// [`FILTER_RETRIES`] times; shrink candidates violating `keep` are
    /// pruned so shrinking cannot escape the predicate.
    #[must_use]
    pub fn filter(self, keep: impl Fn(&T) -> bool + 'static) -> Gen<T> {
        let keep: Rc<dyn Fn(&T) -> bool> = Rc::new(keep);
        Gen::new(move |rng| {
            let mut tree = self.generate(rng);
            for _ in 0..FILTER_RETRIES {
                if keep(tree.value()) {
                    break;
                }
                tree = self.generate(rng);
            }
            tree.prune(Rc::clone(&keep))
        })
    }
}

/// Uniform integer in `lo..=hi`, shrinking toward `lo` by binary halving.
///
/// # Panics
///
/// Panics if `lo > hi`.
#[must_use]
pub fn choose(lo: i64, hi: i64) -> Gen<i64> {
    assert!(lo <= hi, "choose: empty range {lo}..={hi}");
    Gen::new(move |rng| {
        let v = rng.gen_range(lo..=hi);
        int_tree(v, lo)
    })
}

/// [`choose`] cast to `u32` (for widths, sizes, counts).
#[must_use]
pub fn choose_u32(lo: u32, hi: u32) -> Gen<u32> {
    choose(i64::from(lo), i64::from(hi)).map(|&v| {
        debug_assert!(v >= 0);
        v.unsigned_abs() as u32
    })
}

/// [`choose`] cast to `i32` (for coordinates).
#[must_use]
pub fn choose_i32(lo: i32, hi: i32) -> Gen<i32> {
    choose(i64::from(lo), i64::from(hi)).map(|&v| v as i32)
}

/// [`choose`] cast to `usize` (for lengths and indices).
#[must_use]
pub fn choose_usize(lo: usize, hi: usize) -> Gen<usize> {
    choose(lo as i64, hi as i64).map(|&v| v.unsigned_abs() as usize)
}

/// Uniform `f64` in `[lo, hi)`, shrinking toward `lo` by halving the
/// distance (with a relative cutoff so float shrinking terminates).
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is not finite.
#[must_use]
pub fn f64_range(lo: f64, hi: f64) -> Gen<f64> {
    assert!(
        lo < hi && lo.is_finite() && hi.is_finite(),
        "f64_range: bad range"
    );
    let cutoff = (hi - lo) * 1e-3;
    Gen::new(move |rng| {
        let v = rng.gen_range(lo..hi);
        f64_tree(v, lo, cutoff)
    })
}

fn f64_tree(value: f64, origin: f64, cutoff: f64) -> Tree<f64> {
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        let mut step = value - origin;
        while step > cutoff {
            out.push(f64_tree(value - step, origin, cutoff));
            step /= 2.0;
        }
        out
    })
}

/// Uniform boolean; `true` shrinks to `false`.
#[must_use]
pub fn boolean() -> Gen<bool> {
    Gen::new(|rng| {
        let v = rng.gen_bool(0.5);
        if v {
            Tree::with_children(true, || vec![Tree::leaf(false)])
        } else {
            Tree::leaf(false)
        }
    })
}

/// Picks one of `items` uniformly, shrinking toward the first element.
///
/// # Panics
///
/// Panics if `items` is empty.
#[must_use]
pub fn element<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "element: empty choice list");
    choose_usize(0, items.len() - 1).map(move |&i| items[i].clone())
}

/// Runs one of `alternatives` uniformly at random; the *choice index*
/// shrinks toward 0, regenerating from the earlier alternative with the
/// same frozen seed, and the chosen value then shrinks normally.
///
/// # Panics
///
/// Panics if `alternatives` is empty.
#[must_use]
pub fn one_of<T: Clone + 'static>(alternatives: Vec<Gen<T>>) -> Gen<T> {
    assert!(!alternatives.is_empty(), "one_of: empty alternative list");
    choose_usize(0, alternatives.len() - 1).flat_map(move |&i| alternatives[i].clone())
}

/// Like [`one_of`] with non-negative integer weights; weight-0 entries are
/// never generated (but remain shrink targets if listed earlier).
///
/// # Panics
///
/// Panics if the total weight is zero.
#[must_use]
pub fn weighted<T: Clone + 'static>(entries: Vec<(u32, Gen<T>)>) -> Gen<T> {
    let total: u64 = entries.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "weighted: zero total weight");
    let gens: Vec<Gen<T>> = entries.iter().map(|(_, g)| g.clone()).collect();
    let weights: Vec<u64> = entries.iter().map(|(w, _)| u64::from(*w)).collect();
    Gen::new(move |rng| {
        let mut roll = rng.gen_range(0..total);
        let mut pick = 0usize;
        for (i, w) in weights.iter().enumerate() {
            if roll < *w {
                pick = i;
                break;
            }
            roll -= *w;
        }
        // Freeze a seed and delegate to the index-shrinking path so the
        // chosen alternative can fall back to earlier (lighter) entries.
        let seed: u64 = rng.gen();
        let tree = int_tree(pick as i64, 0);
        let gens = gens.clone();
        bind(
            &tree,
            Rc::new(move |&i: &i64| {
                let mut inner = StdRng::seed_from_u64(seed);
                gens[i.unsigned_abs() as usize].generate(&mut inner)
            }),
        )
    })
}

/// A vector of `lo..=hi` elements from `elem`. Shrinks by dropping
/// elements (never below `lo`) and by shrinking individual elements.
#[must_use]
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, lo: usize, hi: usize) -> Gen<Vec<T>> {
    assert!(lo <= hi, "vec_of: empty length range");
    Gen::new(move |rng| {
        let n = rng.gen_range(lo..=hi);
        let elems: Vec<Tree<T>> = (0..n).map(|_| elem.generate(rng)).collect();
        vec_tree(elems, lo)
    })
}

/// Shrink tree over a vector of element trees: candidate order is
/// element-removal (front to back), then per-element shrinks.
fn vec_tree<T: Clone + 'static>(elems: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|t| t.value().clone()).collect();
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        if elems.len() > min_len {
            for skip in 0..elems.len() {
                let shorter: Vec<Tree<T>> = elems
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, t)| t.clone())
                    .collect();
                out.push(vec_tree(shorter, min_len));
            }
        }
        for (i, t) in elems.iter().enumerate() {
            for candidate in t.children() {
                let mut next = elems.clone();
                next[i] = candidate;
                out.push(vec_tree(next, min_len));
            }
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn choose_stays_in_range_and_shrinks_to_lo() {
        let g = choose(3, 17);
        for _ in 0..200 {
            let t = g.generate(&mut rng());
            assert!((3..=17).contains(t.value()));
            if let Some(first) = t.children().first() {
                assert_eq!(*first.value(), 3);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = vec_of(choose(0, 100), 0, 10);
        let a = g.generate(&mut rng());
        let b = g.generate(&mut rng());
        assert_eq!(a.value(), b.value());
    }

    #[test]
    fn flat_map_preserves_dependency_under_shrinking() {
        // Pairs (n, v) with v < n must keep the invariant on every
        // candidate the shrinker can ever visit.
        let g = choose(1, 50).flat_map(|&n| choose(0, n - 1).map(move |&v| (n, v)));
        let mut r = rng();
        for _ in 0..50 {
            let t = g.generate(&mut r);
            let mut stack = vec![t];
            let mut visited = 0;
            while let Some(node) = stack.pop() {
                let (n, v) = *node.value();
                assert!(v < n, "invariant broken: ({n}, {v})");
                visited += 1;
                if visited > 200 {
                    break;
                }
                stack.extend(node.children());
            }
        }
    }

    #[test]
    fn filter_prunes_shrink_candidates() {
        let g = choose(0, 100).filter(|&v| v % 2 == 1);
        let mut r = rng();
        for _ in 0..50 {
            let t = g.generate(&mut r);
            assert!(*t.value() % 2 == 1);
            for c in t.children() {
                assert!(*c.value() % 2 == 1);
            }
        }
    }

    #[test]
    fn vec_shrinks_by_removal_and_respects_min_len() {
        let g = vec_of(choose(0, 9), 2, 6);
        let mut r = rng();
        for _ in 0..50 {
            let t = g.generate(&mut r);
            assert!((2..=6).contains(&t.value().len()));
            for c in t.children() {
                assert!(c.value().len() >= 2);
            }
        }
    }

    #[test]
    fn weighted_zero_weight_is_never_generated() {
        let g = weighted(vec![(0, Gen::constant(1u32)), (5, Gen::constant(2u32))]);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(*g.generate(&mut r).value(), 2);
        }
    }
}
