//! Electrode-degradation physics and the microelectrode health model
//! (Section IV of the paper).
//!
//! Repeated actuation traps charge in the dielectric layer of an electrode,
//! raising its capacitance and weakening the electro-wetting (EWOD) force it
//! can exert. The paper validates this on fabricated PCB prototypes
//! (Fig. 5), fits an exponential model to the measured relative force
//! (Fig. 6), and derives the quantized health level a MEDA microelectrode
//! reports through the dual-DFF sensing design (Fig. 7):
//!
//! * relative EWOD force   `F̄(n) ≈ τ^(2n/c)`           (Eq. 2)
//! * degradation level     `D(n) = V(n)/Va ≈ τ^(n/c)`   (Eq. 3)
//! * observed health level `H(n) = ⌊2^b · D(n)⌋`        (b = 2 on the chip)
//!
//! This crate provides:
//!
//! * [`DegradationParams`] — the `(τ, c)` pair with the force/degradation/
//!   health laws and the paper's fitted constants for the three PCB
//!   electrode sizes;
//! * [`HealthLevel`] / [`quantize_health`] — b-bit health quantization;
//! * [`PcbExperiment`] — a synthetic stand-in for the fabricated PCB testbed
//!   (charge-trapping and residual-charge modes, Fig. 5) — see `DESIGN.md`
//!   §3 for the substitution rationale;
//! * [`ExponentialFit`] — the log-domain least-squares fit that recovers the
//!   degradation constants from force measurements (Fig. 6), with adjusted
//!   R²;
//! * [`ParamDistribution`] — the per-MC uniform sampling
//!   `c ~ U(c₁, c₂)`, `τ ~ U(τ₁, τ₂)` used by the simulator (Section VII).
//!
//! # Examples
//!
//! ```
//! use meda_degradation::DegradationParams;
//!
//! // The paper's fitted constants for the 3 mm electrode.
//! let p = DegradationParams::PAPER_3MM;
//! assert!((p.relative_force(0) - 1.0).abs() < 1e-12);
//! // Degradation decays exponentially with actuation count.
//! assert!(p.degradation(1000) < p.degradation(100));
//! // With b = 2 bits, a fresh electrode reads health 3 (binary 11).
//! assert_eq!(p.health(0, 2).level(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod health;
mod params;
mod pcb;
mod sampler;

pub use fit::{ExponentialFit, FitError};
pub use health::{quantize_health, HealthLevel};
pub use params::DegradationParams;
pub use pcb::{ActuationMode, PcbExperiment, PcbMeasurement};
pub use sampler::ParamDistribution;
