use meda_rng::StdRng;
use meda_rng::{Rng, SeedableRng};

use meda_bioassay::BioassayPlan;
use meda_grid::{ChipDims, Rect};

use crate::{
    AdaptiveConfig, AdaptiveRouter, BaselineRouter, BioassayRunner, Biochip, DegradationConfig,
    FaultPlan, FifoScheduler, RecoveryRouter, RunConfig, RungCounts, SuddenDeath, Supervisor,
    SupervisorConfig,
};

/// One control stack evaluated by the chaos sweep. The first three run
/// unsupervised (the first routing failure aborts the bioassay); the
/// supervised variants wrap the adaptive router in the [`Supervisor`]'s
/// escalation ladder and degrade gracefully instead — with or without the
/// reconfiguration rung armed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosVariant {
    /// Degradation-unaware shortest-path routing.
    Baseline,
    /// Reactive error recovery (re-route on stall).
    Recovery,
    /// The paper's formal-synthesis adaptive router.
    Adaptive,
    /// Adaptive routing under the supervisor's retry ladder.
    SupervisedAdaptive,
    /// The full stack: the retry ladder plus the reconfiguration planner
    /// that relocates swallowed target zones onto spare electrodes.
    SupervisedReconfig,
}

impl ChaosVariant {
    /// All five variants, in presentation order.
    pub const ALL: [ChaosVariant; 5] = [
        ChaosVariant::Baseline,
        ChaosVariant::Recovery,
        ChaosVariant::Adaptive,
        ChaosVariant::SupervisedAdaptive,
        ChaosVariant::SupervisedReconfig,
    ];

    /// Human-readable variant name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosVariant::Baseline => "baseline",
            ChaosVariant::Recovery => "recovery",
            ChaosVariant::Adaptive => "adaptive",
            ChaosVariant::SupervisedAdaptive => "supervised-adaptive",
            ChaosVariant::SupervisedReconfig => "supervised-reconfig",
        }
    }

    /// Runs one trial with sensed feedback closed over the chaos plan.
    /// Returns `(full success, completion fraction, ladder counts)` —
    /// unsupervised variants report zero ladder activity.
    fn run_one(
        self,
        plan: &BioassayPlan,
        chip: &mut Biochip,
        chaos: &FaultPlan,
        k_max: u64,
        detour_patience: u32,
        rng: &mut impl Rng,
    ) -> (bool, f64, RungCounts) {
        let run = RunConfig {
            k_max,
            record_actuation: false,
            sensed_feedback: true,
        };
        match self {
            ChaosVariant::Baseline => {
                let mut router = BaselineRouter::new();
                let outcome = BioassayRunner::new(run).run_with_chaos(
                    plan,
                    chip,
                    &mut router,
                    &mut FifoScheduler::new(),
                    chaos,
                    rng,
                );
                (
                    outcome.is_success(),
                    outcome.completion_fraction(),
                    RungCounts::default(),
                )
            }
            ChaosVariant::Recovery => {
                let mut router = RecoveryRouter::new(detour_patience);
                let outcome = BioassayRunner::new(run).run_with_chaos(
                    plan,
                    chip,
                    &mut router,
                    &mut FifoScheduler::new(),
                    chaos,
                    rng,
                );
                (
                    outcome.is_success(),
                    outcome.completion_fraction(),
                    RungCounts::default(),
                )
            }
            ChaosVariant::Adaptive => {
                let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
                let outcome = BioassayRunner::new(run).run_with_chaos(
                    plan,
                    chip,
                    &mut router,
                    &mut FifoScheduler::new(),
                    chaos,
                    rng,
                );
                (
                    outcome.is_success(),
                    outcome.completion_fraction(),
                    RungCounts::default(),
                )
            }
            ChaosVariant::SupervisedAdaptive => {
                let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
                let report = Supervisor::new(SupervisorConfig {
                    run,
                    detour_patience,
                    ..SupervisorConfig::default()
                })
                .run(plan, chip, &mut router, chaos, rng);
                (
                    report.is_success(),
                    report.completion_fraction(),
                    report.rungs,
                )
            }
            ChaosVariant::SupervisedReconfig => {
                let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
                let report = Supervisor::new(SupervisorConfig {
                    run,
                    detour_patience,
                    reconfig_budget: 2,
                    ..SupervisorConfig::default()
                })
                .run(plan, chip, &mut router, chaos, rng);
                (
                    report.is_success(),
                    report.completion_fraction(),
                    report.rungs,
                )
            }
        }
    }
}

/// A hard-chaos fault class for the degradation-curve matrix. Each class
/// maps one *severity* knob in `[0, 1]` — roughly the fraction of the chip
/// the faults reach — onto a concrete [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Stuck location-sensor bits at per-MC rate `severity` (the classic
    /// sweep; corrupts sensing only).
    StuckSensors,
    /// Clustered electrode death: `8 × 8` dead patches (clumped `2 × 2`
    /// clusters) covering `severity` of the chip.
    ClusterDeath,
    /// Whole-row electrode losses covering `severity` of the rows
    /// (rounded up — any positive severity kills at least one row).
    RowLoss,
    /// One growing defect front paced to reach a dead ball of `severity`
    /// of the chip area within roughly a third of the cycle budget.
    DefectFront,
}

impl FaultClass {
    /// All four classes, in presentation order.
    pub const ALL: [FaultClass; 4] = [
        FaultClass::StuckSensors,
        FaultClass::ClusterDeath,
        FaultClass::RowLoss,
        FaultClass::DefectFront,
    ];

    /// Short metric-key name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::StuckSensors => "stuck",
            FaultClass::ClusterDeath => "cluster",
            FaultClass::RowLoss => "rowloss",
            FaultClass::DefectFront => "front",
        }
    }

    /// Inverse of [`FaultClass::name`] — parses a CLI/metric-key name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<FaultClass> {
        FaultClass::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Builds the fault plan for one trial at the given severity. Severity
    /// 0 is the shared fault-free point of every class's curve.
    #[must_use]
    pub fn plan(self, dims: ChipDims, severity: f64, k_max: u64, rng: &mut impl Rng) -> FaultPlan {
        let severity = severity.clamp(0.0, 1.0);
        if severity == 0.0 {
            return FaultPlan::none();
        }
        let cells = dims.cell_count() as f64;
        // Deaths land early — within the first sixteenth of the budget,
        // well inside any assay's makespan — so the curve measures
        // recovery from damage, not luck about whether the assay finished
        // before the chip fell apart.
        let window = (1, (k_max / 16).max(1));
        match self {
            FaultClass::StuckSensors => FaultPlan::none().with_stuck_sensors(dims, severity, rng),
            FaultClass::ClusterDeath => {
                // Each site clumps the channel's 2 × 2 clusters into one
                // 8 × 8 dead patch — two droplet-widths on a side.
                // Scattered 2 × 2 blocks merely thin a 4 × 4 droplet's
                // frontier (the EWOD move still succeeds at reduced mean
                // force), and even a single droplet-sized 4 × 4 block
                // almost never lands *exactly* on a 4 × 4 landing zone —
                // the supervised ladder detours around anything smaller.
                // An 8 × 8 patch can swallow a target zone whole from any
                // interior alignment, the failure only relocation fixes.
                let sites = ((severity * cells / 64.0).round() as usize).max(1);
                let mut plan = FaultPlan::none();
                let max_x = (dims.width as i32 - 7).max(1);
                let max_y = (dims.height as i32 - 7).max(1);
                for _ in 0..sites {
                    let x = rng.gen_range(1..=max_x);
                    let y = rng.gen_range(1..=max_y);
                    let at_cycle = rng.gen_range(window.0..=window.1);
                    let block = Rect::new(
                        x,
                        y,
                        (x + 7).min(dims.width as i32),
                        (y + 7).min(dims.height as i32),
                    );
                    for cell in block.cells() {
                        plan.sudden_deaths.push(SuddenDeath { cell, at_cycle });
                    }
                }
                plan
            }
            FaultClass::RowLoss => {
                let rows = (severity * f64::from(dims.height)).ceil() as usize;
                FaultPlan::none().with_row_loss(dims, rows, window, rng)
            }
            FaultClass::DefectFront => {
                let radius = (severity * cells / 2.0).sqrt().max(1.0);
                let start = 32.min(k_max.max(1));
                let horizon = (k_max / 8).max(1) as f64;
                let period = ((horizon / radius).floor() as u64).max(1);
                FaultPlan::none().with_defect_fronts(dims, 1, (start, start), period, rng)
            }
        }
    }
}

/// One `(variant, severity index, trial)` sweep cell.
type ChaosCell = (ChaosVariant, usize, u32);
/// One trial's outcome: `(full success, completion fraction, ladder counts)`.
type ChaosOutcome = (bool, f64, RungCounts);

/// One aggregated point of the chaos sweep: a control stack facing one
/// fault class at one severity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosPoint {
    /// The control stack.
    pub variant: ChaosVariant,
    /// The fault class the trials faced.
    pub class: FaultClass,
    /// The class's severity knob (for [`FaultClass::StuckSensors`], the
    /// per-MC probability of a stuck sensor bit).
    pub severity: f64,
    /// Fraction of trials that completed the whole bioassay.
    pub pos: f64,
    /// Mean fraction of microfluidic operations completed per trial —
    /// the graceful-degradation headline number.
    pub mean_completion: f64,
    /// Ladder activity summed over all trials (supervised variants only).
    pub rungs: RungCounts,
}

/// The `ext_chaos` experiment: probability of success and mean completion
/// fraction under one fault class, for each `(variant, severity)` pair.
///
/// Every trial draws a fresh chip and a [`FaultPlan`] from the class's
/// severity knob; stuck bits corrupt the **Y** matrix behind
/// [`RunConfig::sensed_feedback`], electrode-death classes attack the
/// ground-truth chip itself — the run is otherwise the Section VII-B
/// reuse setup. Cells are independent and deterministically seeded, and
/// the severity axis is *coupled*: neither the variant nor the severity
/// enters the seed, so at a given trial every stack faces the identical
/// chip at every severity, and the fault plan is drawn from a dedicated
/// RNG stream whose draws nest across severities (the 2%-severity fault
/// set is a subset of the 8% one for every channel) — the degradation
/// curve measures the response to strictly growing damage, not
/// chip-to-chip luck. The sweep parallelizes across cores with results
/// identical to a serial loop.
///
/// # Panics
///
/// Panics if `trials == 0`.
#[allow(clippy::too_many_arguments)]
pub fn chaos_sweep(
    plan: &BioassayPlan,
    dims: ChipDims,
    degradation: &DegradationConfig,
    variants: &[ChaosVariant],
    class: FaultClass,
    severities: &[f64],
    trials: u32,
    k_max: u64,
    seed: u64,
) -> Vec<ChaosPoint> {
    assert!(trials > 0, "need at least one trial");
    let detour_patience = SupervisorConfig::default().detour_patience;

    let run_cell = |(variant, sev_idx, trial): ChaosCell| {
        let severity = severities[sev_idx];
        // Neither the variant nor the severity enters a seed: per trial,
        // every stack faces the same chip at every severity, with the
        // fault plan drawn from its own stream so the run randomness stays
        // aligned across severities and the fault sets nest.
        let trial_seed = seed ^ (u64::from(trial) << 8);
        let mut rng = StdRng::seed_from_u64(trial_seed);
        let mut chip = Biochip::generate(dims, degradation, &mut rng);
        let mut chaos_rng = StdRng::seed_from_u64(trial_seed ^ 0x9E37_79B9_7F4A_7C15);
        let chaos = class.plan(dims, severity, k_max, &mut chaos_rng);
        variant.run_one(plan, &mut chip, &chaos, k_max, detour_patience, &mut rng)
    };

    let cells: Vec<ChaosCell> = variants
        .iter()
        .flat_map(|&v| (0..severities.len()).flat_map(move |r| (0..trials).map(move |t| (v, r, t))))
        .collect();
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let chunk = cells.len().div_ceil(threads).max(1);
    let per_cell: Vec<(ChaosCell, ChaosOutcome)> = std::thread::scope(|scope| {
        let handles: Vec<_> = cells
            .chunks(chunk)
            .map(|batch| {
                let run_cell = &run_cell;
                scope.spawn(move || {
                    batch
                        .iter()
                        .map(|&cell| (cell, run_cell(cell)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("chaos sweep thread panicked"))
            .collect()
    });

    variants
        .iter()
        .flat_map(|&variant| {
            let per_cell = &per_cell;
            severities.iter().enumerate().map(move |(sev_idx, &sev)| {
                let mut successes = 0u32;
                let mut completion = 0.0f64;
                let mut rungs = RungCounts::default();
                for ((v, r, _), (ok, frac, counts)) in per_cell {
                    if *v == variant && *r == sev_idx {
                        successes += u32::from(*ok);
                        completion += frac;
                        rungs.resense += counts.resense;
                        rungs.resynth += counts.resynth;
                        rungs.detour += counts.detour;
                        rungs.reconfig += counts.reconfig;
                        rungs.aborted_ops += counts.aborted_ops;
                    }
                }
                ChaosPoint {
                    variant,
                    class,
                    severity: sev,
                    pos: f64::from(successes) / f64::from(trials),
                    mean_completion: completion / f64::from(trials),
                    rungs,
                }
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use meda_bioassay::{benchmarks, RjHelper};

    fn plan() -> BioassayPlan {
        RjHelper::new(ChipDims::PAPER)
            .plan(&benchmarks::master_mix())
            .unwrap()
    }

    #[test]
    fn clean_sensors_complete_for_every_variant() {
        let points = chaos_sweep(
            &plan(),
            ChipDims::PAPER,
            &DegradationConfig::pristine(),
            &ChaosVariant::ALL,
            FaultClass::StuckSensors,
            &[0.0],
            2,
            2_000,
            11,
        );
        for p in &points {
            assert_eq!(p.pos, 1.0, "{} failed with clean sensors", p.variant.name());
            assert_eq!(p.mean_completion, 1.0);
        }
    }

    #[test]
    fn fault_class_severity_zero_is_the_shared_clean_point() {
        let mut rng = StdRng::seed_from_u64(3);
        for class in FaultClass::ALL {
            assert!(class.plan(ChipDims::PAPER, 0.0, 2_000, &mut rng).is_none());
        }
    }

    #[test]
    fn fault_class_plans_are_on_chip_and_grow_with_severity() {
        let dims = ChipDims::PAPER;
        for class in FaultClass::ALL {
            let mut lo_rng = StdRng::seed_from_u64(17);
            let mut hi_rng = StdRng::seed_from_u64(17);
            let lo = class.plan(dims, 0.02, 2_000, &mut lo_rng);
            let hi = class.plan(dims, 0.08, 2_000, &mut hi_rng);
            for plan in [&lo, &hi] {
                assert!(plan.sudden_deaths.iter().all(|d| dims.contains(d.cell)));
                assert!(plan.stuck_sensors.iter().all(|s| dims.contains(s.cell)));
                assert!(plan.defect_fronts.iter().all(|f| dims.contains(f.seed)));
            }
            // More severity means more scheduled damage (for the front, a
            // faster spread — smaller period — instead of more seeds).
            match class {
                FaultClass::StuckSensors => {
                    assert!(hi.stuck_sensors.len() > lo.stuck_sensors.len());
                }
                FaultClass::ClusterDeath | FaultClass::RowLoss => {
                    assert!(hi.sudden_deaths.len() > lo.sudden_deaths.len());
                }
                FaultClass::DefectFront => {
                    assert_eq!(lo.defect_fronts.len(), 1);
                    assert_eq!(hi.defect_fronts.len(), 1);
                    assert!(hi.defect_fronts[0].period < lo.defect_fronts[0].period);
                }
            }
        }
    }

    #[test]
    fn supervised_adaptive_beats_unsupervised_under_sensor_faults() {
        // The acceptance bar: at >= 1% stuck sensor bits the supervised
        // stack completes strictly more operations than the unsupervised
        // adaptive stack facing the identical chips and fault plans. The
        // two-lane multiplex assay gives abort-and-continue something to
        // salvage: losing one lane must not cost the other.
        let p = RjHelper::new(ChipDims::PAPER)
            .plan(&benchmarks::multiplex_invitro((4, 4)))
            .unwrap();
        let points = chaos_sweep(
            &p,
            ChipDims::PAPER,
            &DegradationConfig::paper(),
            &[ChaosVariant::Adaptive, ChaosVariant::SupervisedAdaptive],
            FaultClass::StuckSensors,
            &[0.02],
            6,
            2_000,
            23,
        );
        let completion = |v: ChaosVariant| {
            points
                .iter()
                .find(|p| p.variant == v)
                .map(|p| p.mean_completion)
                .unwrap()
        };
        assert!(
            completion(ChaosVariant::SupervisedAdaptive) > completion(ChaosVariant::Adaptive),
            "supervised {} vs unsupervised {}",
            completion(ChaosVariant::SupervisedAdaptive),
            completion(ChaosVariant::Adaptive),
        );
    }
}
