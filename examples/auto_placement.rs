//! The complete synthesis flow from an abstract protocol: describe a
//! bioassay with no coordinates, let the placer assign reservoir ports and
//! module slots, plan it into routing jobs, and execute it with the
//! health-aware runtime scheduler.
//!
//! ```sh
//! cargo run --release --example auto_placement
//! ```

use meda::bioassay::{AssaySpec, Placer, RjHelper};
use meda::grid::ChipDims;
use meda::sim::{
    AdaptiveConfig, AdaptiveRouter, BioassayRunner, Biochip, DegradationConfig, FaultMode,
    HealthAwareScheduler, RunConfig,
};
use meda_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the protocol abstractly: a two-sample comparative assay.
    let mut spec = AssaySpec::new("comparative-assay");
    let sample_a = spec.dispense((4, 4));
    let sample_b = spec.dispense((4, 4));
    let reagent_a = spec.dispense((4, 4));
    let reagent_b = spec.dispense((4, 4));
    let mix_a = spec.mix(&[sample_a, reagent_a]);
    let mix_b = spec.mix(&[sample_b, reagent_b]);
    let read_a = spec.magnetic(mix_a);
    let read_b = spec.magnetic(mix_b);
    spec.output(read_a);
    spec.output(read_b);

    // 2. Place it on the paper's 60×30 chip.
    let dims = ChipDims::PAPER;
    let sg = Placer::new(dims).place(&spec)?;
    println!("placed '{}' ({} operations):", sg.name(), sg.len());
    for (id, op) in sg.iter() {
        println!(
            "  M{:<2} {:4} at ({:>4.1}, {:>4.1})",
            id + 1,
            op.op.to_string(),
            op.loc().0,
            op.loc().1
        );
    }

    // 3. Decompose into routing jobs.
    let plan = RjHelper::new(dims).plan(&sg)?;
    println!(
        "\nplan: {} routing jobs, {:.0} cells of transport (lower bound)",
        plan.total_jobs(),
        plan.total_transport()
    );

    // 4. Execute with clustered fault injection and the health-aware
    //    runtime scheduler (the independent A/B lanes can reorder).
    let mut rng = meda_rng::StdRng::seed_from_u64(31);
    let mut chip = Biochip::generate(
        dims,
        &DegradationConfig::paper_with_faults(FaultMode::Clustered, 0.05),
        &mut rng,
    );
    let mut router = AdaptiveRouter::new(AdaptiveConfig::paper());
    let mut scheduler = HealthAwareScheduler::new();
    let runner = BioassayRunner::new(RunConfig {
        k_max: 2_000,
        record_actuation: false,
        sensed_feedback: false,
    });
    for run in 1..=3 {
        let outcome =
            runner.run_with_scheduler(&plan, &mut chip, &mut router, &mut scheduler, &mut rng);
        println!(
            "run {run}: {:?} in {} cycles ({} re-syntheses so far, library {} hits / {} misses)",
            outcome.status,
            outcome.cycles,
            router.resynth_count(),
            router.library().hits(),
            router.library().misses()
        );
    }

    Ok(())
}
